"""Setup shim for environments without the ``wheel`` package.

Enables ``pip install -e . --no-use-pep517`` on offline machines whose
setuptools cannot build PEP 660 editable wheels. The version is parsed
textually from ``src/repro/_version.py`` — the same file
``repro.__version__`` imports — so the package and its metadata cannot
drift apart, and building never imports the package itself.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def _read_version() -> str:
    text = Path(__file__).parent.joinpath(
        "src", "repro", "_version.py"
    ).read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"$', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/_version.py")
    return match.group(1)


setup(
    name="repro",
    version=_read_version(),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
