"""Setup shim for environments without the ``wheel`` package.

The project is configured in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on offline machines whose
setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
