"""Text-mode reporting: tables and charts.

The paper's figures are all chart renderings of tabular data; in an
offline, dependency-free repo we render the same data as aligned text
tables, horizontal bar charts, stacked bars, and character scatters.
Every experiment driver uses these renderers for its ``render()``
output.
"""

from .tables import render_table
from .charts import bar_chart, stacked_bar_chart, scatter_chart, line_chart

__all__ = [
    "render_table",
    "bar_chart",
    "stacked_bar_chart",
    "scatter_chart",
    "line_chart",
]
