"""Table rendering helpers."""

from __future__ import annotations

from ..tabular import Table

__all__ = ["render_table"]


def render_table(
    table: Table, title: str | None = None, float_format: str = "{:.3f}"
) -> str:
    """Render a table with an optional underlined title."""
    body = table.to_text(float_format=float_format)
    if title is None:
        return body
    rule = "=" * len(title)
    return f"{title}\n{rule}\n{body}"
