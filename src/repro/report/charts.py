"""Character-cell charts: bars, stacked bars, lines, scatters, bands."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import SimulationError

__all__ = [
    "bar_chart",
    "stacked_bar_chart",
    "line_chart",
    "scatter_chart",
    "sparkline",
    "band_chart",
]

_BLOCK = "#"

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """A one-line shape summary of a series (trace listings).

    Values are bucketed to ``width`` columns (mean per bucket) and
    mapped onto a ten-level character ramp; flat series render flat.
    """
    if not len(values):
        raise SimulationError("a sparkline needs at least one value")
    if width <= 0:
        raise SimulationError("sparkline width must be positive")
    series = [float(value) for value in values]
    buckets: list[float] = []
    count = min(width, len(series))
    for index in range(count):
        lo = index * len(series) // count
        hi = max(lo + 1, (index + 1) * len(series) // count)
        chunk = series[lo:hi]
        buckets.append(sum(chunk) / len(chunk))
    low, high = min(buckets), max(buckets)
    span = high - low or 1.0
    levels = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int(round((value - low) / span * levels))]
        for value in buckets
    )


def _label_width(labels: Sequence[str]) -> int:
    return max(len(label) for label in labels)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise SimulationError("labels and values must have equal length")
    if not labels:
        raise SimulationError("a chart needs at least one bar")
    if width <= 0:
        raise SimulationError("chart width must be positive")
    peak = max(values)
    if peak < 0.0 or any(value < 0.0 for value in values):
        raise SimulationError("bar values must be non-negative")
    label_width = _label_width(labels)
    lines = []
    for label, value in zip(labels, values):
        length = 0 if peak == 0 else int(round(width * value / peak))
        lines.append(
            f"{label.ljust(label_width)} |{_BLOCK * length:<{width}}| "
            + value_format.format(value)
        )
    return "\n".join(lines)


def stacked_bar_chart(
    labels: Sequence[str],
    stacks: Sequence[Mapping[str, float]],
    width: int = 60,
) -> str:
    """Horizontal stacked bars with a legend.

    Each stack maps component name -> value; components are drawn with
    successive letters and the legend ties letters back to names.
    """
    if len(labels) != len(stacks):
        raise SimulationError("labels and stacks must have equal length")
    if not labels:
        raise SimulationError("a chart needs at least one bar")
    components: list[str] = []
    for stack in stacks:
        for name in stack:
            if name not in components:
                components.append(name)
    symbols = {
        name: chr(ord("A") + index) for index, name in enumerate(components)
    }
    if len(components) > 26:
        raise SimulationError("too many components to letter")
    peak = max(sum(stack.values()) for stack in stacks)
    if peak <= 0.0:
        raise SimulationError("stacked bars need a positive total")
    label_width = _label_width(labels)
    lines = []
    for label, stack in zip(labels, stacks):
        cells: list[str] = []
        for name in components:
            value = stack.get(name, 0.0)
            if value < 0.0:
                raise SimulationError(f"component {name!r} is negative")
            cells.append(symbols[name] * int(round(width * value / peak)))
        bar = "".join(cells)
        total = sum(stack.values())
        lines.append(f"{label.ljust(label_width)} |{bar:<{width}}| {total:.2f}")
    legend = "  ".join(f"{symbols[name]}={name}" for name in components)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
) -> str:
    """Multi-series character line chart (each series gets a letter)."""
    if not series:
        raise SimulationError("a line chart needs at least one series")
    if height <= 1 or width <= 1:
        raise SimulationError("chart dimensions must exceed one cell")
    for name, values in series.items():
        if len(values) != len(xs):
            raise SimulationError(f"series {name!r} length mismatch")
    all_values = [value for values in series.values() for value in values]
    low, high = min(all_values), max(all_values)
    span = high - low or 1.0
    x_low, x_high = min(xs), max(xs)
    x_span = x_high - x_low or 1.0
    grid = [[" "] * width for _ in range(height)]
    symbols = {
        name: chr(ord("A") + index) for index, name in enumerate(series)
    }
    for name, values in series.items():
        for x, value in zip(xs, values):
            col = int(round((x - x_low) / x_span * (width - 1)))
            row = int(round((value - low) / span * (height - 1)))
            grid[height - 1 - row][col] = symbols[name]
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    legend = "  ".join(f"{symbols[name]}={name}" for name in series)
    lines.append(
        f"y: [{low:.3g}, {high:.3g}]  x: [{x_low:.3g}, {x_high:.3g}]  {legend}"
    )
    return "\n".join(lines)


def band_chart(
    xs: Sequence[float],
    low: Sequence[float],
    median: Sequence[float],
    high: Sequence[float],
    height: int = 12,
    width: int = 64,
    label: str = "value",
) -> str:
    """A quantile band: ``:`` fills low..high, ``#`` marks the median.

    The uncertainty companion to :func:`line_chart` — renders one
    metric's p5-p95 corridor across scenarios or time, the shape an
    :class:`repro.uncertainty.UncertainResult` band produces.
    """
    series = [list(map(float, values)) for values in (low, median, high)]
    if not xs:
        raise SimulationError("a band chart needs at least one point")
    if any(len(values) != len(xs) for values in series):
        raise SimulationError("xs, low, median, and high must share a length")
    if height <= 1 or width <= 1:
        raise SimulationError("chart dimensions must exceed one cell")
    lows, medians, highs = series
    for index, (lo, mid, hi) in enumerate(zip(lows, medians, highs)):
        if not lo <= mid <= hi:
            raise SimulationError(
                f"band needs low <= median <= high at every point; point "
                f"{index} has ({lo}, {mid}, {hi})"
            )
    floor, ceiling = min(lows), max(highs)
    span = ceiling - floor or 1.0
    x_low, x_high = min(xs), max(xs)
    x_span = x_high - x_low or 1.0

    def row_of(value: float) -> int:
        return int(round((value - floor) / span * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    for x, lo, mid, hi in zip(xs, lows, medians, highs):
        column = int(round((float(x) - x_low) / x_span * (width - 1)))
        for row in range(row_of(lo), row_of(hi) + 1):
            grid[height - 1 - row][column] = ":"
        grid[height - 1 - row_of(mid)][column] = _BLOCK
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(
        f"y: [{floor:.3g}, {ceiling:.3g}]  x: [{x_low:.3g}, {x_high:.3g}]  "
        f"{_BLOCK}={label} median  :=band"
    )
    return "\n".join(lines)


def scatter_chart(
    points: Sequence[tuple[float, float, str]],
    height: int = 14,
    width: int = 60,
) -> str:
    """Character scatter; each point is (x, y, single-char marker)."""
    if not points:
        raise SimulationError("a scatter needs at least one point")
    if height <= 1 or width <= 1:
        raise SimulationError("chart dimensions must exceed one cell")
    xs = [point[0] for point in points]
    ys = [point[1] for point in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int(round((x - x_low) / x_span * (width - 1)))
        row = int(round((y - y_low) / y_span * (height - 1)))
        grid[height - 1 - row][col] = (marker or "*")[0]
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"x: [{x_low:.3g}, {x_high:.3g}]  y: [{y_low:.3g}, {y_high:.3g}]")
    return "\n".join(lines)
