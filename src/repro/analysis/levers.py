"""Reduction-lever comparison: Section VI, quantified.

The paper closes by listing levers across the computing stack —
renewable energy, carbon-aware scheduling, hardware scale-down, longer
lifetimes, leaner provisioning. This module makes them comparable: a
:class:`ReductionLever` transforms a footprint scenario, and
:func:`compare_levers` ranks levers by absolute carbon saved on a
common baseline, a marginal-abatement-style analysis.

The scenario is deliberately minimal — annual operational energy,
its grid, and annual amortized embodied carbon — because that is the
opex/capex decomposition the whole paper runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..errors import SimulationError
from ..tabular import Table
from ..units import Carbon, CarbonIntensity, Energy

__all__ = [
    "FootprintScenario",
    "ReductionLever",
    "renewable_energy_lever",
    "lifetime_extension_lever",
    "scale_down_lever",
    "carbon_aware_scheduling_lever",
    "compare_levers",
]


@dataclass(frozen=True, slots=True)
class FootprintScenario:
    """Annualized footprint of a system under study.

    ``embodied_per_year`` is the manufacturing footprint amortized over
    the current service lifetime; ``lifetime_years`` carries the
    lifetime so levers can re-amortize.
    """

    name: str
    annual_energy: Energy
    grid: CarbonIntensity
    embodied_total: Carbon
    lifetime_years: float

    def __post_init__(self) -> None:
        if self.lifetime_years <= 0.0:
            raise SimulationError(f"{self.name}: lifetime must be positive")
        if self.annual_energy.joules < 0.0:
            raise SimulationError(f"{self.name}: energy must be non-negative")

    @property
    def opex_per_year(self) -> Carbon:
        return self.grid.carbon_for(self.annual_energy)

    @property
    def embodied_per_year(self) -> Carbon:
        return self.embodied_total * (1.0 / self.lifetime_years)

    @property
    def total_per_year(self) -> Carbon:
        return self.opex_per_year + self.embodied_per_year


@dataclass(frozen=True)
class ReductionLever:
    """A named intervention on a scenario."""

    name: str
    stack_layer: str
    apply: Callable[[FootprintScenario], FootprintScenario]

    def savings(self, baseline: FootprintScenario) -> Carbon:
        improved = self.apply(baseline)
        return baseline.total_per_year - improved.total_per_year


def renewable_energy_lever(
    contracted: CarbonIntensity, coverage: float = 1.0
) -> ReductionLever:
    """Buy renewable energy for ``coverage`` of consumption."""
    if not 0.0 <= coverage <= 1.0:
        raise SimulationError("coverage must be in [0, 1]")

    def apply(scenario: FootprintScenario) -> FootprintScenario:
        blended = CarbonIntensity.g_per_kwh(
            scenario.grid.grams_per_kwh * (1.0 - coverage)
            + contracted.grams_per_kwh * coverage
        )
        return replace(scenario, grid=blended)

    return ReductionLever("renewable_energy", "infrastructure", apply)


def lifetime_extension_lever(extra_years: float) -> ReductionLever:
    """Keep hardware in service longer, re-amortizing embodied carbon."""
    if extra_years <= 0.0:
        raise SimulationError("extension must be positive")

    def apply(scenario: FootprintScenario) -> FootprintScenario:
        return replace(
            scenario, lifetime_years=scenario.lifetime_years + extra_years
        )

    return ReductionLever("lifetime_extension", "devices", apply)


def scale_down_lever(
    embodied_reduction: float, energy_penalty: float = 0.0
) -> ReductionLever:
    """Provision leaner hardware: less embodied carbon, maybe slower.

    ``embodied_reduction`` is the fraction of embodied carbon removed;
    ``energy_penalty`` is the fractional energy increase paid for the
    smaller system (jobs run longer on leaner machines).
    """
    if not 0.0 <= embodied_reduction <= 1.0:
        raise SimulationError("embodied reduction must be in [0, 1]")
    if energy_penalty < 0.0:
        raise SimulationError("energy penalty must be non-negative")

    def apply(scenario: FootprintScenario) -> FootprintScenario:
        return replace(
            scenario,
            embodied_total=scenario.embodied_total * (1.0 - embodied_reduction),
            annual_energy=scenario.annual_energy * (1.0 + energy_penalty),
        )

    return ReductionLever("scale_down_hardware", "architecture", apply)


def carbon_aware_scheduling_lever(intensity_reduction: float) -> ReductionLever:
    """Shift flexible load into cleaner hours.

    ``intensity_reduction`` is the achieved drop in *average* consumed
    intensity — measure it with :mod:`repro.datacenter.scheduler` and
    feed it here.
    """
    if not 0.0 <= intensity_reduction <= 1.0:
        raise SimulationError("intensity reduction must be in [0, 1]")

    def apply(scenario: FootprintScenario) -> FootprintScenario:
        return replace(
            scenario,
            grid=CarbonIntensity.g_per_kwh(
                scenario.grid.grams_per_kwh * (1.0 - intensity_reduction)
            ),
        )

    return ReductionLever("carbon_aware_scheduling", "runtime_systems", apply)


def compare_levers(
    baseline: FootprintScenario, levers: Sequence[ReductionLever]
) -> Table:
    """Rank levers by annual carbon saved on a common baseline.

    Also reports each improved scenario's opex/capex split — the point
    of the exercise is that opex levers stop mattering once the grid is
    clean, while capex levers keep working.
    """
    if not levers:
        raise SimulationError("need at least one lever to compare")
    records = []
    for lever in levers:
        improved = lever.apply(baseline)
        saved = baseline.total_per_year - improved.total_per_year
        records.append(
            {
                "lever": lever.name,
                "stack_layer": lever.stack_layer,
                "saved_t_per_year": saved.tonnes_value,
                "saved_fraction": saved.grams / baseline.total_per_year.grams,
                "remaining_opex_t": improved.opex_per_year.tonnes_value,
                "remaining_capex_t": improved.embodied_per_year.tonnes_value,
            }
        )
    return Table.from_records(records).sort_by("saved_t_per_year", reverse=True)
