"""Monte Carlo uncertainty propagation for carbon models.

The paper's "better accounting practices" direction (Section VII) asks
for footprint estimates that carry their uncertainty. Carbon models
stack estimated coefficients (per-GB DRAM carbon, fab grid intensity,
device lifetimes); this module propagates coefficient distributions
through any scalar model with a seeded Monte Carlo and summarizes the
output distribution.

>>> spec = {"a": Normal(10.0, 1.0), "b": Uniform(0.0, 2.0)}
>>> result = monte_carlo(lambda p: p["a"] + p["b"], spec, samples=2000)
>>> 10.5 < result.mean < 11.5
True

Batched evaluation: ``monte_carlo(..., vectorized=True)`` calls the
model *once* with the full draw arrays (a mapping of parameter name to
a ``float64`` vector of all samples) instead of once per draw. Models
built from plain arithmetic or from the array-friendly quantity types
in :mod:`repro.units` (e.g. :func:`repro.core.amortization.break_even_days`)
evaluate in a handful of numpy operations; models that only handle
scalars fall back to the per-sample loop automatically, so the flag is
always safe to pass. Both paths produce bit-identical outputs for
models whose arithmetic is elementwise.

Non-finite model outputs (NaN/inf) raise :class:`SimulationError`
naming the offending parameter draw rather than silently polluting the
summary statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..errors import SimulationError
from ..tabular import Table

__all__ = [
    "Normal",
    "Uniform",
    "Triangular",
    "LogNormal",
    "Mixture",
    "Fixed",
    "is_distribution",
    "UncertaintyResult",
    "monte_carlo",
]


@dataclass(frozen=True, slots=True)
class Normal:
    """A Gaussian coefficient, truncated at zero for physicality."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.std < 0.0:
            raise SimulationError("standard deviation must be non-negative")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.clip(rng.normal(self.mean, self.std, size=count), 0.0, None)


@dataclass(frozen=True, slots=True)
class Uniform:
    """A uniform coefficient on [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise SimulationError(f"uniform low {self.low} exceeds high {self.high}")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=count)


@dataclass(frozen=True, slots=True)
class Triangular:
    """A triangular coefficient: (low, mode, high).

    The natural shape for expert estimates ("around 0.45, could be
    0.3-0.6"), which is what most embodied-carbon coefficients are.
    """

    low: float
    mode: float
    high: float

    def __post_init__(self) -> None:
        if not self.low <= self.mode <= self.high:
            raise SimulationError(
                f"triangular needs low <= mode <= high, got "
                f"({self.low}, {self.mode}, {self.high})"
            )

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if self.low == self.high:
            return np.full(count, self.low)
        return rng.triangular(self.low, self.mode, self.high, size=count)


@dataclass(frozen=True, slots=True)
class LogNormal:
    """A log-normal coefficient: ``exp(Normal(mu, sigma))``.

    The natural shape for strictly positive multiplicative factors
    (demand scales, abatement effectiveness, cost ratios) whose
    uncertainty is "within a factor of x" rather than "plus or minus
    y". ``mu``/``sigma`` parameterize the underlying normal; use
    :meth:`from_median` to think in output space instead.
    """

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise SimulationError("log-space sigma must be non-negative")

    @classmethod
    def from_median(cls, median: float, sigma: float) -> "LogNormal":
        """A log-normal with the given median and log-space sigma."""
        if median <= 0.0:
            raise SimulationError("log-normal median must be positive")
        return cls(mu=math.log(median), sigma=sigma)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=count)


@dataclass(frozen=True, slots=True)
class Fixed:
    """A point value — lets fixed and uncertain parameters mix freely."""

    value: float

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.full(count, self.value)


@dataclass(frozen=True, slots=True)
class Mixture:
    """A weighted mixture of component distributions.

    Covers discrete "either/or" assumptions (a server lives 3 *or* 5
    years; a fab abates *or* does not) that no single parametric shape
    expresses. Components may be any distribution, including
    :class:`Fixed` for purely discrete mixtures — see
    :meth:`discrete`. Weights need not sum to one; they are
    normalized.

    Sampling draws one uniform selector per sample plus a full draw
    vector from *every* component, so the generator's consumption is
    independent of which components get selected — reseeding is
    reproducible regardless of weights.
    """

    components: "tuple[Distribution, ...]"
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise SimulationError("a mixture needs at least one component")
        if len(self.components) != len(self.weights):
            raise SimulationError(
                f"{len(self.components)} components but "
                f"{len(self.weights)} weights"
            )
        if any(weight < 0.0 for weight in self.weights):
            raise SimulationError("mixture weights must be non-negative")
        if sum(self.weights) <= 0.0:
            raise SimulationError("mixture weights must sum to a positive value")

    @classmethod
    def discrete(cls, values: Mapping[float, float]) -> "Mixture":
        """A discrete mixture: {value: weight}."""
        if not values:
            raise SimulationError("a discrete mixture needs at least one value")
        return cls(
            components=tuple(Fixed(value) for value in values),
            weights=tuple(values.values()),
        )

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        weights = np.asarray(self.weights, dtype=np.float64)
        cumulative = np.cumsum(weights / np.sum(weights))
        cumulative[-1] = 1.0  # guard the top bin against rounding
        choices = np.searchsorted(cumulative, rng.random(count), side="right")
        result = np.empty(count)
        for index, component in enumerate(self.components):
            draws = component.sample(rng, count)
            selected = choices == index
            result[selected] = draws[selected]
        return result


Distribution = Normal | Uniform | Triangular | LogNormal | Mixture | Fixed

_DISTRIBUTION_TYPES = (Normal, Uniform, Triangular, LogNormal, Mixture, Fixed)


def is_distribution(value: object) -> bool:
    """True when ``value`` is one of this module's distribution tags.

    The scenario engine uses this to tell uncertain axis values apart
    from plain scalars when building a draw matrix.
    """
    return isinstance(value, _DISTRIBUTION_TYPES)


@dataclass(frozen=True)
class UncertaintyResult:
    """Summary of a propagated output distribution."""

    samples: np.ndarray

    def __post_init__(self) -> None:
        array = np.asarray(self.samples, dtype=float)
        if array.ndim != 1 or array.size == 0:
            raise SimulationError("result needs a non-empty 1-D sample vector")
        object.__setattr__(self, "samples", array)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples, ddof=1)) if self.samples.size > 1 else 0.0

    def percentile(self, q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise SimulationError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.samples, q))

    def interval(self, confidence: float = 0.90) -> tuple[float, float]:
        """Central credible interval at the given confidence level."""
        if not 0.0 < confidence < 1.0:
            raise SimulationError("confidence must be in (0, 1)")
        tail = (1.0 - confidence) / 2.0 * 100.0
        return self.percentile(tail), self.percentile(100.0 - tail)

    def probability_above(self, threshold: float) -> float:
        return float(np.mean(self.samples > threshold))

    def summary_table(self) -> Table:
        low, high = self.interval(0.90)
        return Table.from_records(
            [
                {
                    "mean": self.mean,
                    "std": self.std,
                    "p05": low,
                    "p50": self.percentile(50.0),
                    "p95": high,
                }
            ]
        )


def monte_carlo(
    model: Callable[[Mapping[str, float]], float],
    parameters: Mapping[str, Distribution],
    samples: int = 1000,
    seed: int = 0,
    vectorized: bool = False,
) -> UncertaintyResult:
    """Propagate parameter distributions through ``model``.

    By default the model is called once per draw with a plain dict of
    floats, so any existing scalar model (embodied totals, break-even
    days, fleet capex) plugs in unchanged. With ``vectorized=True`` the
    model is instead called once with the full draw arrays; a model
    that cannot handle arrays (raises, or returns a scalar/misshapen
    result) falls back to the per-sample loop.
    """
    if samples <= 0:
        raise SimulationError("sample count must be positive")
    if not parameters:
        raise SimulationError("need at least one uncertain parameter")
    rng = np.random.default_rng(seed)
    draws = {
        name: distribution.sample(rng, samples)
        for name, distribution in parameters.items()
    }
    outputs: np.ndarray | None = None
    if vectorized:
        outputs = _evaluate_batched(model, draws, samples)
    if outputs is None:
        outputs = np.empty(samples)
        for index in range(samples):
            point = {name: float(values[index]) for name, values in draws.items()}
            outputs[index] = model(point)
    _require_finite_outputs(outputs, draws)
    return UncertaintyResult(outputs)


def _evaluate_batched(
    model: Callable[[Mapping[str, float]], float],
    draws: Mapping[str, np.ndarray],
    samples: int,
) -> np.ndarray | None:
    """Call ``model`` once with the full draw arrays.

    Returns ``None`` when the model is scalar-only — it raised on array
    input or did not return one output per sample — so the caller can
    fall back to the per-sample loop.
    """
    try:
        # The model gets copies: if it mutates a draw array in place
        # before failing, the fallback loop must still see pristine
        # draws (and error messages must report the real values).
        batched = model({name: values.copy() for name, values in draws.items()})
    except Exception:
        return None
    outputs = np.asarray(batched, dtype=float)
    if outputs.shape != (samples,):
        return None
    return outputs


def _require_finite_outputs(
    outputs: np.ndarray, draws: Mapping[str, np.ndarray]
) -> None:
    """Reject NaN/inf model outputs, naming the draw that caused one."""
    bad = np.flatnonzero(~np.isfinite(outputs))
    if bad.size == 0:
        return
    index = int(bad[0])
    draw = {name: float(values[index]) for name, values in draws.items()}
    raise SimulationError(
        f"model returned non-finite output {float(outputs[index])!r} for sample "
        f"{index} with parameter draw {draw} "
        f"({bad.size} of {outputs.size} samples non-finite)"
    )
