"""ICT energy projections (Figure 1).

Interpolates the Andrae & Edler anchor points geometrically (energy
demand grows multiplicatively, so log-linear interpolation between
anchors is the natural choice) and assembles per-scenario tables of
segment energy and share of global electricity demand.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..data.ict import GLOBAL_DEMAND_ANCHORS, ICT_ANCHORS, SCENARIOS, SEGMENTS
from ..errors import SimulationError
from ..tabular import Table

__all__ = ["interpolate_anchor_series", "ict_projection"]


def interpolate_anchor_series(
    anchors: Mapping[int, float], years: list[int]
) -> dict[int, float]:
    """Geometric interpolation between anchor years.

    Years outside the anchor span are rejected: extrapolating an
    exponential silently is how projection charts go wrong.
    """
    if len(anchors) < 2:
        raise SimulationError("interpolation needs at least two anchors")
    for value in anchors.values():
        if value <= 0.0:
            raise SimulationError("anchor values must be positive")
    known = sorted(anchors.items())
    first_year, last_year = known[0][0], known[-1][0]
    result: dict[int, float] = {}
    for year in years:
        if year < first_year or year > last_year:
            raise SimulationError(
                f"year {year} outside anchor span [{first_year}, {last_year}]"
            )
        for (y0, v0), (y1, v1) in zip(known, known[1:]):
            if y0 <= year <= y1:
                if year == y0:
                    result[year] = v0
                elif year == y1:
                    result[year] = v1
                else:
                    alpha = (year - y0) / (y1 - y0)
                    result[year] = math.exp(
                        (1.0 - alpha) * math.log(v0) + alpha * math.log(v1)
                    )
                break
    return result


def ict_projection(scenario: str, years: list[int] | None = None) -> Table:
    """Figure 1 panel: per-year segment energy and share of demand."""
    if scenario not in SCENARIOS:
        raise SimulationError(f"unknown scenario {scenario!r}; have {SCENARIOS}")
    if years is None:
        years = list(range(2010, 2031))
    demand = interpolate_anchor_series(GLOBAL_DEMAND_ANCHORS, years)
    segment_series = {
        segment: interpolate_anchor_series(ICT_ANCHORS[scenario][segment], years)
        for segment in SEGMENTS
    }
    records = []
    for year in years:
        total = sum(segment_series[segment][year] for segment in SEGMENTS)
        record: dict[str, object] = {"year": year}
        for segment in SEGMENTS:
            record[f"{segment}_twh"] = segment_series[segment][year]
        record["ict_total_twh"] = total
        record["global_demand_twh"] = demand[year]
        record["ict_share"] = total / demand[year]
        records.append(record)
    return Table.from_records(records)
