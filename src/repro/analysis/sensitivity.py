"""One-at-a-time sensitivity analysis.

Carbon models stack estimated coefficients; a responsible reproduction
shows which ones matter. :func:`one_at_a_time` perturbs each parameter
across its range while holding the rest at baseline and reports the
output swing, ready for a tornado ordering.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..errors import SimulationError
from ..tabular import Table

__all__ = ["one_at_a_time", "tornado_order"]

Model = Callable[[Mapping[str, float]], float]


def one_at_a_time(
    model: Model,
    baseline: Mapping[str, float],
    ranges: Mapping[str, tuple[float, float]],
) -> Table:
    """Sweep each parameter over (low, high), others at baseline.

    Returns one row per parameter with the model output at the low and
    high ends and the absolute swing.
    """
    if not ranges:
        raise SimulationError("sensitivity needs at least one parameter range")
    unknown = set(ranges) - set(baseline)
    if unknown:
        raise SimulationError(f"ranges reference unknown parameters {sorted(unknown)}")
    base_output = model(baseline)
    records = []
    for name, (low, high) in ranges.items():
        if low > high:
            raise SimulationError(f"{name}: range low {low} exceeds high {high}")
        low_params = dict(baseline)
        low_params[name] = low
        high_params = dict(baseline)
        high_params[name] = high
        low_output = model(low_params)
        high_output = model(high_params)
        records.append(
            {
                "parameter": name,
                "low": low,
                "high": high,
                "output_low": low_output,
                "output_base": base_output,
                "output_high": high_output,
                "swing": abs(high_output - low_output),
            }
        )
    return Table.from_records(records)


def tornado_order(sensitivity: Table) -> Table:
    """Sort a sensitivity table by swing, largest first."""
    return sensitivity.sort_by("swing", reverse=True)
