"""Fleet growth vs efficiency: the race the paper's intro describes.

Facebook's AI hardware grew 4x (training) and 3.5x (inference) in
under two years while per-unit efficiency also improved. This module
models that race: a fleet whose size compounds annually while each
hardware generation gets more energy-efficient, producing the paper's
structural outcome — operational carbon per unit of work falls, but
total (and especially embodied) carbon keeps climbing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..tabular import Table
from ..units import Carbon, CarbonIntensity, Energy

__all__ = ["GrowthScenario", "growth_trajectory"]

#: Paper anchors: Facebook AI hardware growth in under two years.
FACEBOOK_TRAINING_GROWTH_2YR = 4.0
FACEBOOK_INFERENCE_GROWTH_2YR = 3.5


@dataclass(frozen=True, slots=True)
class GrowthScenario:
    """Inputs for a compounding fleet.

    ``fleet_growth_per_year`` multiplies the installed base annually;
    ``efficiency_gain_per_year`` divides the energy needed per unit of
    work annually (hardware + algorithmic improvement combined).
    """

    name: str
    initial_units: float
    embodied_per_unit: Carbon
    unit_lifetime_years: float
    initial_energy_per_unit: Energy
    fleet_growth_per_year: float
    efficiency_gain_per_year: float
    grid: CarbonIntensity

    def __post_init__(self) -> None:
        if self.initial_units <= 0.0:
            raise SimulationError(f"{self.name}: initial fleet must be positive")
        if self.unit_lifetime_years <= 0.0:
            raise SimulationError(f"{self.name}: lifetime must be positive")
        if self.fleet_growth_per_year < 1.0:
            raise SimulationError(
                f"{self.name}: this model covers growing fleets (>= 1.0)"
            )
        if self.efficiency_gain_per_year < 1.0:
            raise SimulationError(
                f"{self.name}: efficiency gain must be >= 1.0"
            )


def growth_trajectory(scenario: GrowthScenario, years: int) -> Table:
    """Year-by-year carbon of a compounding, improving fleet.

    Embodied carbon is amortized per unit-year; energy per unit falls
    with the efficiency gain while the unit count compounds.
    """
    if years <= 0:
        raise SimulationError("trajectory needs at least one year")
    records = []
    for year in range(years):
        units = scenario.initial_units * scenario.fleet_growth_per_year**year
        energy_per_unit = scenario.initial_energy_per_unit * (
            1.0 / scenario.efficiency_gain_per_year**year
        )
        fleet_energy = energy_per_unit * units
        operational = scenario.grid.carbon_for(fleet_energy)
        embodied = (
            scenario.embodied_per_unit
            * (1.0 / scenario.unit_lifetime_years)
            * units
        )
        total = operational + embodied
        records.append(
            {
                "year": year,
                "units": units,
                "operational_t": operational.tonnes_value,
                "embodied_t": embodied.tonnes_value,
                "total_t": total.tonnes_value,
                "embodied_share": embodied.grams / total.grams,
                "carbon_per_unit_work": operational.grams
                / (units * scenario.efficiency_gain_per_year**year),
            }
        )
    return Table.from_records(records)
