"""Opex/capex and life-cycle breakdown analytics (Figures 6 and 13)."""

from __future__ import annotations

import statistics
from typing import Any, Iterable, Sequence

from ..core.intensity import EnergySource
from ..core.lca import ProductLCA
from ..data.corporate import LifecycleBreakdown
from ..errors import SimulationError
from ..tabular import Table, col

__all__ = [
    "device_class_breakdown",
    "power_class_breakdown",
    "lifecycle_grid_sweep",
]


def _mean(values: Sequence[float]) -> float:
    return statistics.fmean(values)


def _std(values: Sequence[float]) -> float:
    return statistics.stdev(values) if len(values) > 1 else 0.0


def _first(values: Sequence[Any]) -> Any:
    return values[0]


def _lca_table(lcas: Iterable[ProductLCA], min_year: int | None) -> Table:
    """One row per LCA with the fields the breakdowns aggregate over."""
    records = [
        {
            "device_class": lca.device_class.value,
            "power_class": lca.power_class.value,
            "manufacturing": lca.manufacturing_fraction,
            "use": lca.use_fraction,
            "total_kg": lca.total.kilograms,
            "manufacturing_kg": lca.production_carbon.kilograms,
            "use_kg": lca.use_carbon.kilograms,
        }
        for lca in lcas
        if min_year is None or lca.year >= min_year
    ]
    if not records:
        raise SimulationError("no devices left after the year filter")
    return Table.from_records(records)


def device_class_breakdown(
    lcas: Iterable[ProductLCA], min_year: int | None = None
) -> Table:
    """Per-device-class aggregation (Figure 6 rows).

    For each device class: record count, mean and one-standard-deviation
    spread of the manufacturing and use fractions, and mean absolute
    total/manufacturing/use footprints in kg.
    """
    return (
        _lca_table(lcas, min_year)
        .aggregate(
            by=["device_class"],
            power_class=("power_class", _first),
            count=("manufacturing", len),
            manufacturing_mean=("manufacturing", _mean),
            manufacturing_std=("manufacturing", _std),
            use_mean=("use", _mean),
            use_std=("use", _std),
            total_kg_mean=("total_kg", _mean),
            manufacturing_kg_mean=("manufacturing_kg", _mean),
            use_kg_mean=("use_kg", _mean),
        )
        .sort_by("power_class", "device_class")
    )


def power_class_breakdown(
    lcas: Iterable[ProductLCA], min_year: int | None = None
) -> Table:
    """Battery-powered vs always-connected aggregation (Takeaway 2)."""
    return (
        _lca_table(lcas, min_year)
        .aggregate(
            by=["power_class"],
            count=("manufacturing", len),
            manufacturing_mean=("manufacturing", _mean),
            use_mean=("use", _mean),
            total_kg_mean=("total_kg", _mean),
        )
        .sort_by("power_class")
    )


def lifecycle_grid_sweep(
    breakdown: LifecycleBreakdown, sources: Iterable[EnergySource]
) -> Table:
    """Figure 13: rescale a vendor's use phase across energy sources.

    Only the use category responds to the energy source; every other
    category is fixed. Rows are normalized to the baseline total, so
    the baseline row's ``total`` is 1.0 and cleaner sources shrink it.
    """
    baseline_intensity = breakdown.baseline_grid.intensity.grams_per_kwh
    if baseline_intensity <= 0.0:
        raise SimulationError("baseline grid intensity must be positive")
    fixed_total = sum(
        fraction
        for name, fraction in breakdown.categories.items()
        if name != breakdown.use_category
    )
    table = Table.from_records(
        [
            {
                "source": source.name,
                "intensity_g_per_kwh": source.intensity.grams_per_kwh,
            }
            for source in sources
        ]
    )
    scale = col("intensity_g_per_kwh") / baseline_intensity
    return (
        table.with_column("use", scale * breakdown.use_fraction)
        .with_column("total", col("use") + fixed_total)
        .with_column("use_share", col("use") / col("total"))
        .with_column("non_use_share", 1.0 - col("use") / col("total"))
    )
