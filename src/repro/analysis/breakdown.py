"""Opex/capex and life-cycle breakdown analytics (Figures 6 and 13)."""

from __future__ import annotations

import statistics
from typing import Iterable, Sequence

from ..core.intensity import EnergySource
from ..core.lca import ProductLCA
from ..data.corporate import LifecycleBreakdown
from ..errors import SimulationError
from ..tabular import Table

__all__ = [
    "device_class_breakdown",
    "power_class_breakdown",
    "lifecycle_grid_sweep",
]


def _mean(values: Sequence[float]) -> float:
    return statistics.fmean(values)


def _std(values: Sequence[float]) -> float:
    return statistics.stdev(values) if len(values) > 1 else 0.0


def device_class_breakdown(
    lcas: Iterable[ProductLCA], min_year: int | None = None
) -> Table:
    """Per-device-class aggregation (Figure 6 rows).

    For each device class: record count, mean and one-standard-deviation
    spread of the manufacturing and use fractions, and mean absolute
    total/manufacturing/use footprints in kg.
    """
    selected = [
        lca for lca in lcas if min_year is None or lca.year >= min_year
    ]
    if not selected:
        raise SimulationError("no devices left after the year filter")
    records = []
    by_class: dict[str, list[ProductLCA]] = {}
    for lca in selected:
        by_class.setdefault(lca.device_class.value, []).append(lca)
    for class_name, members in by_class.items():
        manufacturing = [m.manufacturing_fraction for m in members]
        use = [m.use_fraction for m in members]
        totals = [m.total.kilograms for m in members]
        records.append(
            {
                "device_class": class_name,
                "power_class": members[0].power_class.value,
                "count": len(members),
                "manufacturing_mean": _mean(manufacturing),
                "manufacturing_std": _std(manufacturing),
                "use_mean": _mean(use),
                "use_std": _std(use),
                "total_kg_mean": _mean(totals),
                "manufacturing_kg_mean": _mean(
                    [m.production_carbon.kilograms for m in members]
                ),
                "use_kg_mean": _mean([m.use_carbon.kilograms for m in members]),
            }
        )
    return Table.from_records(records).sort_by("power_class", "device_class")


def power_class_breakdown(
    lcas: Iterable[ProductLCA], min_year: int | None = None
) -> Table:
    """Battery-powered vs always-connected aggregation (Takeaway 2)."""
    selected = [
        lca for lca in lcas if min_year is None or lca.year >= min_year
    ]
    if not selected:
        raise SimulationError("no devices left after the year filter")
    by_power: dict[str, list[ProductLCA]] = {}
    for lca in selected:
        by_power.setdefault(lca.power_class.value, []).append(lca)
    records = []
    for power_class, members in sorted(by_power.items()):
        records.append(
            {
                "power_class": power_class,
                "count": len(members),
                "manufacturing_mean": _mean(
                    [m.manufacturing_fraction for m in members]
                ),
                "use_mean": _mean([m.use_fraction for m in members]),
                "total_kg_mean": _mean([m.total.kilograms for m in members]),
            }
        )
    return Table.from_records(records)


def lifecycle_grid_sweep(
    breakdown: LifecycleBreakdown, sources: Iterable[EnergySource]
) -> Table:
    """Figure 13: rescale a vendor's use phase across energy sources.

    Only the use category responds to the energy source; every other
    category is fixed. Rows are normalized to the baseline total, so
    the baseline row's ``total`` is 1.0 and cleaner sources shrink it.
    """
    baseline_intensity = breakdown.baseline_grid.intensity.grams_per_kwh
    if baseline_intensity <= 0.0:
        raise SimulationError("baseline grid intensity must be positive")
    records = []
    fixed = {
        name: fraction
        for name, fraction in breakdown.categories.items()
        if name != breakdown.use_category
    }
    for source in sources:
        scale = source.intensity.grams_per_kwh / baseline_intensity
        use_value = breakdown.use_fraction * scale
        total = use_value + sum(fixed.values())
        record: dict[str, object] = {
            "source": source.name,
            "intensity_g_per_kwh": source.intensity.grams_per_kwh,
            "use": use_value,
            "total": total,
            "use_share": use_value / total,
            "non_use_share": 1.0 - use_value / total,
        }
        records.append(record)
    return Table.from_records(records)
