"""Generational trend analysis (Figure 7)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.lca import ProductLCA
from ..errors import SimulationError
from ..tabular import Table

__all__ = ["generational_table", "is_monotonic", "trend_summary"]


def generational_table(generations: Sequence[ProductLCA]) -> Table:
    """One Figure 7 panel: per-generation fractions and absolutes."""
    if not generations:
        raise SimulationError("a trend needs at least one generation")
    records = []
    for lca in generations:
        records.append(
            {
                "product": lca.product,
                "year": lca.year,
                "total_kg": lca.total.kilograms,
                "manufacturing_fraction": lca.manufacturing_fraction,
                "manufacturing_kg": lca.production_carbon.kilograms,
                "use_kg": lca.use_carbon.kilograms,
            }
        )
    return Table.from_records(records)


def is_monotonic(
    values: Sequence[float], increasing: bool = True, tolerance: float = 0.0
) -> bool:
    """True when the sequence never moves against the trend.

    ``tolerance`` forgives counter-trend steps up to that size —
    useful for real-world series with measurement wiggle.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size < 2:
        return True
    steps = np.diff(array)
    if not increasing:
        steps = -steps
    return bool(np.all(steps >= -tolerance))


def trend_summary(generations: Sequence[ProductLCA]) -> dict[str, float | bool]:
    """First/last manufacturing fractions and trend verdicts.

    Captures the Figure 7 claims: manufacturing fraction rises in every
    family; use-phase carbon falls.
    """
    if len(generations) < 2:
        raise SimulationError("a trend needs at least two generations")
    fractions = [lca.manufacturing_fraction for lca in generations]
    totals = [lca.total.kilograms for lca in generations]
    use = [lca.use_carbon.kilograms for lca in generations]
    return {
        "first_manufacturing_fraction": fractions[0],
        "last_manufacturing_fraction": fractions[-1],
        "manufacturing_fraction_rising": is_monotonic(fractions, increasing=True),
        # Real per-generation use numbers wiggle by a few kg; the claim
        # is the decade-scale decline, so forgive small counter-steps.
        "use_kg_falling": is_monotonic(use, increasing=False, tolerance=3.0)
        and use[-1] < use[0],
        "total_kg_first": totals[0],
        "total_kg_last": totals[-1],
        "total_rising": totals[-1] > totals[0],
    }
