"""Lifetime and replacement analysis.

Takeaway 6 motivates "leaner systems as well as longer system
lifetimes". This module answers the two questions that follow:

* :func:`annualized_footprint` — how does carbon per service-year fall
  as a device is kept longer?
* :func:`replacement_break_even_years` — if a new device is X% more
  energy-efficient, how long must it be used before its manufacturing
  carbon is paid back by the efficiency gain? (The "should I upgrade?"
  question, in CO2e.)
"""

from __future__ import annotations

from ..errors import SimulationError
from ..tabular import Table
from ..units import Carbon, CarbonIntensity, Energy

__all__ = [
    "annualized_footprint",
    "lifetime_sweep",
    "replacement_break_even_years",
]


def annualized_footprint(
    embodied: Carbon,
    annual_energy: Energy,
    grid: CarbonIntensity,
    lifetime_years: float,
) -> Carbon:
    """Total life-cycle carbon per year of service."""
    if lifetime_years <= 0.0:
        raise SimulationError("lifetime must be positive")
    per_year_embodied = embodied * (1.0 / lifetime_years)
    per_year_opex = grid.carbon_for(annual_energy)
    return per_year_embodied + per_year_opex


def lifetime_sweep(
    embodied: Carbon,
    annual_energy: Energy,
    grid: CarbonIntensity,
    lifetimes_years: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0),
) -> Table:
    """Annualized footprint across candidate lifetimes.

    The embodied share column shows the paper's structural point: the
    longer hardware lives, the less its manufacturing dominates.
    """
    records = []
    for lifetime in lifetimes_years:
        total = annualized_footprint(embodied, annual_energy, grid, lifetime)
        embodied_share = (embodied.grams / lifetime) / total.grams
        records.append(
            {
                "lifetime_years": lifetime,
                "annualized_kg": total.kilograms,
                "embodied_share": embodied_share,
            }
        )
    return Table.from_records(records)


def replacement_break_even_years(
    new_embodied: Carbon,
    old_annual_energy: Energy,
    new_annual_energy: Energy,
    grid: CarbonIntensity,
) -> float:
    """Years before a replacement's efficiency gain repays its making.

    Buying a more efficient device saves
    ``grid * (old_energy - new_energy)`` per year but costs
    ``new_embodied`` up front. Returns infinity when the new device is
    not actually more efficient — the honest answer to most annual
    upgrade cycles.
    """
    saved_energy = Energy(
        old_annual_energy.joules - new_annual_energy.joules
    )
    if saved_energy.joules <= 0.0:
        return float("inf")
    saved_per_year = grid.carbon_for(saved_energy)
    if saved_per_year.grams == 0.0:
        return float("inf")
    if new_embodied.grams < 0.0:
        raise SimulationError("embodied carbon must be non-negative")
    return new_embodied.grams / saved_per_year.grams
