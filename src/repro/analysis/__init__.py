"""Analysis toolkit: breakdowns, trends, projections, sensitivity."""

from .breakdown import (
    device_class_breakdown,
    power_class_breakdown,
    lifecycle_grid_sweep,
)
from .trends import generational_table, is_monotonic, trend_summary
from .projections import interpolate_anchor_series, ict_projection
from .sensitivity import one_at_a_time, tornado_order
from .uncertainty import (
    Normal,
    Uniform,
    Triangular,
    LogNormal,
    Mixture,
    Fixed,
    is_distribution,
    UncertaintyResult,
    monte_carlo,
)
from .levers import (
    FootprintScenario,
    ReductionLever,
    renewable_energy_lever,
    lifetime_extension_lever,
    scale_down_lever,
    carbon_aware_scheduling_lever,
    compare_levers,
)
from .lifetime import (
    annualized_footprint,
    lifetime_sweep,
    replacement_break_even_years,
)
from .growth import GrowthScenario, growth_trajectory

__all__ = [
    "device_class_breakdown",
    "power_class_breakdown",
    "lifecycle_grid_sweep",
    "generational_table",
    "is_monotonic",
    "trend_summary",
    "interpolate_anchor_series",
    "ict_projection",
    "one_at_a_time",
    "tornado_order",
    "Normal",
    "Uniform",
    "Triangular",
    "LogNormal",
    "Mixture",
    "Fixed",
    "is_distribution",
    "UncertaintyResult",
    "monte_carlo",
    "FootprintScenario",
    "ReductionLever",
    "renewable_energy_lever",
    "lifetime_extension_lever",
    "scale_down_lever",
    "carbon_aware_scheduling_lever",
    "compare_levers",
    "annualized_footprint",
    "lifetime_sweep",
    "replacement_break_even_years",
    "GrowthScenario",
    "growth_trajectory",
]
