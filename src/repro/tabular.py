"""A minimal columnar table, the library's pandas substitute.

Every analysis in the paper is a small relational computation over
curated records: filter rows, derive columns, group, aggregate, sort,
join, and render. :class:`Table` implements exactly that surface.

Tables are immutable from the caller's point of view: every operation
returns a new :class:`Table`, and columns handed in or out are copied.

>>> t = Table.from_records([
...     {"vendor": "apple", "kg": 60.0},
...     {"vendor": "google", "kg": 45.0},
...     {"vendor": "apple", "kg": 66.0},
... ])
>>> t.where(lambda row: row["vendor"] == "apple").num_rows
2
>>> t.aggregate(by=["vendor"], total=("kg", sum)).sort_by("vendor").column("total")
[126.0, 45.0]

Engine
------

Columns whose values are homogeneous scalars are backed by numpy
arrays — ``float`` columns by ``float64``, ``int`` by ``int64``,
``bool`` by ``bool_``, and ``str`` by fixed-width unicode. Everything
else (mixed types, ``None``, nested containers, huge integers) falls
back to a plain Python list, and every operation on such a column runs
the original row-at-a-time code path. The two representations are
semantically identical: values always round-trip to native Python
scalars at the API boundary (``column()``, ``row()``, iteration), so
callers never see numpy scalar types.

When every participating column is numpy-backed, the relational
operations use vectorized kernels:

- ``where``/``with_column`` evaluate column expressions as array ops,
- ``group_by``/``aggregate`` factorize keys (first-appearance order is
  preserved) and reduce with segmented ``reduceat``/``bincount``
  kernels for the common reducers ``sum``/``len``/``min``/``max``,
- ``sort_by`` is a stable ``np.lexsort`` (including stable descending),
- ``join`` is a vectorized hash join over factorized keys,
- ``head``/``_take`` are index/slice based (``head`` returns zero-copy
  views of the backing arrays).

Expression API
--------------

Alongside the original callable API (``where(lambda row: ...)``,
``with_column(name, fn)`` — both unchanged), hot paths can use column
expressions that never materialize row dicts:

>>> t.where("kg", ">=", 50.0).num_rows            # comparison shorthand
2
>>> t.where(col("kg") >= 50.0).num_rows           # expression object
2
>>> t.with_column("tonnes", col("kg") / 1e3).column("tonnes")[0]
0.06

Expressions compose with arithmetic (``+ - * / // % **``), comparisons,
``& | ~`` on boolean masks, and ``col(name).isin(values)``. On
numpy-backed columns they evaluate as single array operations; on
fallback columns they evaluate element-wise with identical semantics.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .errors import TableError

__all__ = ["Table", "Expr", "col"]

Row = dict[str, Any]
Aggregation = tuple[str, Callable[[list[Any]], Any]]

#: Internal column backing: a numpy array for homogeneous scalar
#: columns, a plain list for everything else.
Backing = "np.ndarray | list[Any]"

_COMPARISONS: dict[str, Callable[[Any, Any], Any]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Sentinel distinguishing "value not supplied" from a literal None.
_MISSING = object()

#: Largest magnitude exactly representable in float64 — int keys beyond
#: it cannot be safely compared through a float promotion.
_FLOAT_EXACT_INT = 2**53


def _membership(values: list[Any]) -> Any:
    """A container with Python ``in`` semantics (set when hashable)."""
    try:
        return set(values)
    except TypeError:
        return values


def _isin_mask(backing: np.ndarray | list[Any], values: list[Any]) -> Any:
    """Membership mask with Python equality semantics on either backing.

    ``np.isin`` coerces its second argument to a single dtype, which
    diverges from element-wise ``in`` for mixed-type value lists (and
    for int keys beyond float64 precision) — those cases take the
    element-wise path instead.
    """
    if isinstance(backing, np.ndarray):
        kind = backing.dtype.kind
        if kind == "U":
            safe = all(type(v) is str for v in values)
        elif kind in "biuf":
            safe = all(
                isinstance(v, (bool, int, float)) and abs(v) <= _FLOAT_EXACT_INT
                for v in values
            )
            if safe and kind in "iu" and any(type(v) is float for v in values):
                safe = (
                    backing.size == 0
                    or (
                        -_FLOAT_EXACT_INT <= int(backing.min())
                        and int(backing.max()) <= _FLOAT_EXACT_INT
                    )
                )
        else:
            safe = False
        if safe:
            return np.isin(backing, values)
        members = _membership(values)
        return [v in members for v in backing.tolist()]
    members = _membership(values)
    return [v in members for v in backing]


def _sniff(values: list[Any]) -> np.ndarray | list[Any]:
    """Choose a backing for ``values``: numpy when exact, else the list.

    The numpy promotion is deliberately conservative — only columns
    whose values are all the same scalar type are promoted, so that
    ``tolist()`` reproduces the input byte-for-byte (mixed int/float
    columns stay lists to preserve the ints).
    """
    if not values:
        return values
    kinds = set(map(type, values))
    if kinds <= {float, np.float64}:
        return np.asarray(values, dtype=np.float64)
    if kinds == {bool}:
        return np.asarray(values, dtype=np.bool_)
    if kinds == {int}:
        try:
            return np.asarray(values, dtype=np.int64)
        except OverflowError:
            return values
    if kinds == {str}:
        return np.asarray(values, dtype=np.str_)
    return values


def _adopt(values: Any) -> np.ndarray | list[Any]:
    """Normalize arbitrary caller input into a column backing (copying)."""
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise TableError(f"columns must be 1-D, got shape {values.shape}")
        kind = values.dtype.kind
        if kind == "f":
            return values.astype(np.float64)
        if kind in "iu":
            try:
                return values.astype(np.int64, casting="safe")
            except TypeError:
                return values.tolist()
        if kind == "b":
            return values.astype(np.bool_)
        if kind == "U":
            return values.copy()
        return _sniff(values.tolist())
    return _sniff(list(values))


def _as_list(backing: np.ndarray | list[Any]) -> list[Any]:
    """A fresh Python list of native scalars for a column backing."""
    if isinstance(backing, np.ndarray):
        return backing.tolist()
    return list(backing)


def _scalar(backing: np.ndarray | list[Any], index: int) -> Any:
    value = backing[index]
    return value.item() if isinstance(backing, np.ndarray) else value


def _factorize(array: np.ndarray) -> tuple[np.ndarray, int, np.ndarray]:
    """Dense integer codes for ``array`` in first-appearance key order.

    Returns ``(codes, num_groups, first_rows)`` where ``codes[i]`` is
    the group of row ``i``, groups are numbered by the row order of
    their first occurrence, and ``first_rows[g]`` is the first row of
    group ``g``.
    """
    _, first, inverse = np.unique(
        array, return_index=True, return_inverse=True
    )
    order = np.argsort(first, kind="stable")
    rank = np.empty(order.size, dtype=np.int64)
    rank[order] = np.arange(order.size)
    return rank[inverse.ravel()], order.size, first[order]


def _stable_order(keys: Sequence[np.ndarray], reverse: bool) -> np.ndarray:
    """Stable row ordering by ``keys`` (primary first), optionally
    descending — matching ``sorted(..., reverse=True)`` stability."""
    if not reverse:
        return np.lexsort(tuple(reversed(keys)))
    size = keys[0].shape[0]
    flipped = np.lexsort(tuple(key[::-1] for key in reversed(keys)))
    return (size - 1 - flipped)[::-1]


# ----------------------------------------------------------------------
# Column expressions
# ----------------------------------------------------------------------
class Expr:
    """A lazy column expression evaluated against a :class:`Table`.

    Build leaves with :func:`col` and compose with Python operators;
    pass the result to ``Table.where`` or ``Table.with_column``.
    """

    def _evaluate(self, table: "Table") -> np.ndarray | list[Any]:
        raise NotImplementedError

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return _Binary(operator.add, self, other)

    def __radd__(self, other: Any) -> "Expr":
        return _Binary(operator.add, other, self)

    def __sub__(self, other: Any) -> "Expr":
        return _Binary(operator.sub, self, other)

    def __rsub__(self, other: Any) -> "Expr":
        return _Binary(operator.sub, other, self)

    def __mul__(self, other: Any) -> "Expr":
        return _Binary(operator.mul, self, other)

    def __rmul__(self, other: Any) -> "Expr":
        return _Binary(operator.mul, other, self)

    def __truediv__(self, other: Any) -> "Expr":
        return _Binary(operator.truediv, self, other)

    def __rtruediv__(self, other: Any) -> "Expr":
        return _Binary(operator.truediv, other, self)

    def __floordiv__(self, other: Any) -> "Expr":
        return _Binary(operator.floordiv, self, other)

    def __mod__(self, other: Any) -> "Expr":
        return _Binary(operator.mod, self, other)

    def __pow__(self, other: Any) -> "Expr":
        return _Binary(operator.pow, self, other)

    def __neg__(self) -> "Expr":
        return _Unary(operator.neg, self)

    def __abs__(self) -> "Expr":
        return _Unary(operator.abs, self)

    # -- comparisons (yield boolean masks) -----------------------------
    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return _Binary(operator.eq, self, other)

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return _Binary(operator.ne, self, other)

    def __lt__(self, other: Any) -> "Expr":
        return _Binary(operator.lt, self, other)

    def __le__(self, other: Any) -> "Expr":
        return _Binary(operator.le, self, other)

    def __gt__(self, other: Any) -> "Expr":
        return _Binary(operator.gt, self, other)

    def __ge__(self, other: Any) -> "Expr":
        return _Binary(operator.ge, self, other)

    __hash__ = None  # type: ignore[assignment]

    # -- boolean algebra on masks --------------------------------------
    def __and__(self, other: Any) -> "Expr":
        return _Binary(np.logical_and, self, other, python_op=lambda a, b: a and b)

    def __or__(self, other: Any) -> "Expr":
        return _Binary(np.logical_or, self, other, python_op=lambda a, b: a or b)

    def __invert__(self) -> "Expr":
        return _Unary(np.logical_not, self, python_op=operator.not_)

    def isin(self, values: Iterable[Any]) -> "Expr":
        """Membership mask: true where the value is in ``values``."""
        return _IsIn(self, list(values))


class _Column(Expr):
    def __init__(self, name: str) -> None:
        self.name = name

    def _evaluate(self, table: "Table") -> np.ndarray | list[Any]:
        if self.name not in table._columns:
            raise TableError(
                f"unknown column {self.name!r}; have {table.column_names}"
            )
        return table._columns[self.name]

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class _Binary(Expr):
    def __init__(
        self,
        op: Callable[[Any, Any], Any],
        left: Any,
        right: Any,
        python_op: Callable[[Any, Any], Any] | None = None,
    ) -> None:
        self.op = op
        self.left = left
        self.right = right
        self.python_op = python_op or op

    def _evaluate(self, table: "Table") -> np.ndarray | list[Any]:
        left = _operand(self.left, table)
        right = _operand(self.right, table)
        if isinstance(left, list) or isinstance(right, list):
            lseq = _broadcast(left, table.num_rows)
            rseq = _broadcast(right, table.num_rows)
            op = self.python_op
            return [op(a, b) for a, b in zip(lseq, rseq)]
        return self.op(left, right)


class _Unary(Expr):
    def __init__(
        self,
        op: Callable[[Any], Any],
        inner: Expr,
        python_op: Callable[[Any], Any] | None = None,
    ) -> None:
        self.op = op
        self.inner = inner
        self.python_op = python_op or op

    def _evaluate(self, table: "Table") -> np.ndarray | list[Any]:
        value = _operand(self.inner, table)
        if isinstance(value, list):
            op = self.python_op
            return [op(v) for v in value]
        return self.op(value)


class _IsIn(Expr):
    def __init__(self, inner: Expr, values: list[Any]) -> None:
        self.inner = inner
        self.values = values

    def _evaluate(self, table: "Table") -> np.ndarray | list[Any]:
        return _isin_mask(_operand(self.inner, table), self.values)


def _operand(node: Any, table: "Table") -> Any:
    return node._evaluate(table) if isinstance(node, Expr) else node


def _broadcast(value: Any, length: int) -> Iterable[Any]:
    if isinstance(value, list):
        return value
    if isinstance(value, np.ndarray):
        return value.tolist()
    return (value for _ in range(length))


def col(name: str) -> Expr:
    """A column reference for the expression API: ``col("kg") * 2``."""
    if not isinstance(name, str) or not name:
        raise TableError(f"col() needs a non-empty column name, got {name!r}")
    return _Column(name)


class Table:
    """An ordered collection of named, equally sized columns."""

    __slots__ = ("_columns", "_length", "_cache")

    def __init__(self, columns: Mapping[str, Sequence[Any]]) -> None:
        if not columns:
            raise TableError("a table needs at least one column")
        normalized: dict[str, np.ndarray | list[Any]] = {}
        length: int | None = None
        for name, values in columns.items():
            if not isinstance(name, str) or not name:
                raise TableError(f"column names must be non-empty strings, got {name!r}")
            backing = _adopt(values)
            if length is None:
                length = len(backing)
            elif len(backing) != length:
                raise TableError(
                    f"column {name!r} has {len(backing)} values, expected {length}"
                )
            normalized[name] = backing
        self._columns = normalized
        self._length = length or 0
        self._cache: dict[Any, Any] = {}

    @classmethod
    def _from_backing(
        cls, columns: dict[str, np.ndarray | list[Any]], length: int
    ) -> "Table":
        """Internal constructor that trusts ready-made backings."""
        table = cls.__new__(cls)
        table._columns = columns
        table._length = length
        table._cache = {}
        return table

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Table":
        """Build a table from an iterable of row mappings.

        When ``columns`` is omitted the column order of the first record
        is used and every record must supply exactly the same keys.
        """
        records = list(records)
        if not records:
            if columns is None:
                raise TableError("cannot infer columns from zero records")
            return cls({name: [] for name in columns})
        names = list(columns) if columns is not None else list(records[0].keys())
        name_set = frozenset(names)
        strict = columns is None
        for index, record in enumerate(records):
            keys = record.keys()
            if keys == name_set:
                continue
            missing = name_set - keys
            if missing:
                raise TableError(f"record {index} is missing columns {sorted(missing)}")
            if strict:
                extra = set(keys) - name_set
                if extra:
                    raise TableError(
                        f"record {index} has unexpected columns {sorted(extra)}"
                    )
        data = {
            name: _sniff([record[name] for record in records]) for name in names
        }
        return cls._from_backing(data, len(records))

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Table":
        return cls({name: [] for name in columns})

    @classmethod
    def concat(cls, tables: Sequence["Table"]) -> "Table":
        """Stack tables with identical columns, preserving row order.

        Columns that are numpy-backed with one dtype kind across every
        table stack as a single ``np.concatenate`` — the chunk-reducer
        hot path of :mod:`repro.exec` — while any column with a list
        backing (or mixed kinds) falls back to value-level re-sniffing
        with identical semantics.
        """
        if not tables:
            raise TableError("concat() needs at least one table")
        names = tables[0].column_names
        for table in tables[1:]:
            if table.column_names != names:
                raise TableError(
                    f"column mismatch: {table.column_names} vs {names}"
                )
        data: dict[str, np.ndarray | list[Any]] = {}
        for name in names:
            backings = [table._columns[name] for table in tables]
            if all(isinstance(b, np.ndarray) for b in backings) and (
                len({b.dtype.kind for b in backings}) == 1
            ):
                data[name] = np.concatenate(backings)
            else:
                data[name] = _sniff(
                    [value for b in backings for value in _as_list(b)]
                )
        return cls._from_backing(data, sum(t._length for t in tables))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return list(self._columns.keys())

    @property
    def num_rows(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Row]:
        names = self.column_names
        lists = [self._list(name) for name in names]
        for values in zip(*lists):
            yield dict(zip(names, values))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if set(self._columns) != set(other._columns):
            return False
        if self._length != other._length:
            return False
        for name, mine in self._columns.items():
            theirs = other._columns[name]
            if isinstance(mine, np.ndarray) and isinstance(theirs, np.ndarray):
                if not np.array_equal(mine, theirs):
                    return False
            elif _as_list(mine) != _as_list(theirs):
                return False
        return True

    __hash__ = None  # type: ignore[assignment]

    def row(self, index: int) -> Row:
        """Return row ``index`` as a dict (supports negative indices)."""
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise TableError(f"row index {index} out of range for {self._length} rows")
        return {
            name: _scalar(values, index) for name, values in self._columns.items()
        }

    def column(self, name: str) -> list[Any]:
        """Return a copy of the named column's values."""
        if name not in self._columns:
            raise TableError(f"unknown column {name!r}; have {self.column_names}")
        return _as_list(self._columns[name])

    def to_records(self) -> list[Row]:
        return list(self)

    # ------------------------------------------------------------------
    # Relational operations (each returns a new Table)
    # ------------------------------------------------------------------
    def select(self, *names: str) -> "Table":
        """Keep only the named columns, in the given order."""
        for name in names:
            if name not in self._columns:
                raise TableError(f"unknown column {name!r}; have {self.column_names}")
        if not names:
            raise TableError("select() needs at least one column name")
        return Table._from_backing(
            {name: self._columns[name] for name in names}, self._length
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns according to ``mapping`` (old name -> new name)."""
        for old in mapping:
            if old not in self._columns:
                raise TableError(f"unknown column {old!r}; have {self.column_names}")
        return Table._from_backing(
            {
                mapping.get(name, name): values
                for name, values in self._columns.items()
            },
            self._length,
        )

    def where(
        self,
        predicate: Callable[[Row], bool] | Expr | str,
        op: str | None = None,
        value: Any = _MISSING,
    ) -> "Table":
        """Keep rows matching a predicate.

        Three forms are accepted:

        - ``where(lambda row: ...)`` — the original callable API; the
          predicate sees each row as a dict.
        - ``where("year", ">=", 2015)`` — comparison shorthand against
          one column (operators ``== != < <= > >= in not-in``).
        - ``where(col("year") >= 2015)`` — an :class:`Expr` mask.

        The two expression forms evaluate as single vectorized array
        operations on numpy-backed columns.
        """
        if isinstance(predicate, str):
            if op is None or value is _MISSING:
                raise TableError(
                    "expression where() needs an operator and a value, e.g. "
                    "where('year', '>=', 2015)"
                )
            mask = self._compare_column(predicate, op, value)
        elif isinstance(predicate, Expr):
            if op is not None:
                raise TableError("operator form needs a column name, not an Expr")
            mask = predicate._evaluate(self)
        else:
            keep = [index for index, row in enumerate(self) if predicate(row)]
            return self._take(keep)
        if isinstance(mask, (bool, np.bool_)):
            # A dtype-mismatched comparison collapses to one scalar
            # (e.g. string column == int); broadcast it over all rows.
            return self._take(slice(0, self._length) if mask else [])
        if len(mask) != self._length:
            raise TableError(
                f"mask has {len(mask)} values, expected {self._length}"
            )
        if isinstance(mask, np.ndarray):
            if mask.dtype != np.bool_:
                mask = mask.astype(np.bool_)
            return self._take(np.flatnonzero(mask))
        return self._take([index for index, hit in enumerate(mask) if hit])

    def _compare_column(self, name: str, op: str, value: Any) -> Any:
        if name not in self._columns:
            raise TableError(f"unknown column {name!r}; have {self.column_names}")
        backing = self._columns[name]
        if op in ("in", "not in"):
            mask = _isin_mask(backing, list(value))
            if op == "not in":
                return ~mask if isinstance(mask, np.ndarray) else [not m for m in mask]
            return mask
        compare = _COMPARISONS.get(op)
        if compare is None:
            raise TableError(
                f"unknown operator {op!r}; have {sorted(_COMPARISONS) + ['in', 'not in']}"
            )
        if isinstance(backing, np.ndarray):
            return compare(backing, value)
        return [compare(v, value) for v in backing]

    def with_column(
        self, name: str, values: Sequence[Any] | Callable[[Row], Any] | Expr
    ) -> "Table":
        """Add or replace a column.

        ``values`` may be a sequence, a per-row callable (original
        API, unchanged), or an :class:`Expr` such as ``col("kg") * 2``
        (vectorized on numpy-backed columns).
        """
        if isinstance(values, Expr):
            computed = values._evaluate(self)
            if isinstance(computed, np.ndarray):
                backing: np.ndarray | list[Any] = computed
            else:
                backing = _sniff(list(computed))
            if len(backing) != self._length:
                raise TableError(
                    f"column {name!r} has {len(backing)} values, expected {self._length}"
                )
        elif callable(values):
            backing = _sniff([values(row) for row in self])
        else:
            backing = _adopt(values)
            if len(backing) != self._length:
                raise TableError(
                    f"column {name!r} has {len(backing)} values, expected {self._length}"
                )
        columns = dict(self._columns)
        columns[name] = backing
        return Table._from_backing(columns, self._length)

    def drop(self, *names: str) -> "Table":
        """Remove the named columns."""
        for name in names:
            if name not in self._columns:
                raise TableError(f"unknown column {name!r}; have {self.column_names}")
        remaining = {
            name: values for name, values in self._columns.items() if name not in names
        }
        if not remaining:
            raise TableError("cannot drop every column")
        return Table._from_backing(remaining, self._length)

    def sort_by(self, *names: str, reverse: bool = False) -> "Table":
        """Sort rows lexicographically by the named columns.

        The sort is stable in both directions (ties keep their original
        row order, exactly like ``sorted``).
        """
        if not names:
            raise TableError("sort_by() needs at least one column name")
        for name in names:
            if name not in self._columns:
                raise TableError(f"unknown column {name!r}; have {self.column_names}")
        keys = [self._columns[name] for name in names]
        if all(isinstance(key, np.ndarray) for key in keys):
            return self._take(_stable_order(keys, reverse))
        lists = [self._list(name) for name in names]
        order = sorted(
            range(self._length),
            key=lambda index: tuple(values[index] for values in lists),
            reverse=reverse,
        )
        return self._take(order)

    def head(self, count: int) -> "Table":
        """Return the first ``count`` rows (zero-copy on array columns)."""
        if count < 0:
            raise TableError("head() count must be non-negative")
        return self._take(slice(0, min(count, self._length)))

    def unique(self, name: str) -> list[Any]:
        """Distinct values of a column, in first-appearance order."""
        seen: dict[Any, None] = {}
        for value in self.column(name):
            seen.setdefault(value, None)
        return list(seen.keys())

    def describe(self) -> "Table":
        """Min/mean/max summary of every numeric column."""
        records: list[Row] = []
        for name in self.column_names:
            numeric = [
                float(value)
                for value in self._list(name)
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
            if not numeric:
                continue
            records.append(
                {
                    "column": name,
                    "count": len(numeric),
                    "min": min(numeric),
                    "mean": sum(numeric) / len(numeric),
                    "max": max(numeric),
                }
            )
        if not records:
            raise TableError("describe() needs at least one numeric column")
        return Table.from_records(records)

    def group_by(self, *names: str) -> list[tuple[tuple[Any, ...], "Table"]]:
        """Partition rows by the named key columns.

        Returns ``(key, sub_table)`` pairs in first-appearance order of
        each key.
        """
        if not names:
            raise TableError("group_by() needs at least one column name")
        for name in names:
            if name not in self._columns:
                raise TableError(f"unknown column {name!r}; have {self.column_names}")
        grouped = self._grouped_indices(names)
        if grouped is not None:
            keys, index_groups = grouped
            return [
                (key, self._take(indices))
                for key, indices in zip(keys, index_groups)
            ]
        groups: dict[tuple[Any, ...], list[int]] = {}
        key_lists = [self._list(name) for name in names]
        for index, key in enumerate(zip(*key_lists)):
            groups.setdefault(key, []).append(index)
        return [(key, self._take(indices)) for key, indices in groups.items()]

    def _group_codes(
        self, names: tuple[str, ...]
    ) -> tuple[np.ndarray, int, np.ndarray] | None:
        """Factorized group codes for the named key columns, or ``None``
        when any key column cannot be factorized exactly (object
        fallback, NaN keys, code-space overflow)."""
        key = ("codes", names)
        if key in self._cache:
            return self._cache[key]
        self._cache[key] = result = self._compute_group_codes(names)
        return result

    def _compute_group_codes(
        self, names: tuple[str, ...]
    ) -> tuple[np.ndarray, int, np.ndarray] | None:
        backings = [self._columns[name] for name in names]
        if not all(isinstance(b, np.ndarray) for b in backings):
            return None
        for backing in backings:
            if backing.dtype.kind == "f" and np.isnan(backing).any():
                return None  # NaN keys: hash and sort semantics diverge
        codes, count, firsts = _factorize(backings[0])
        for backing in backings[1:]:
            extra, extra_count, _ = _factorize(backing)
            if count * extra_count >= 2**62:
                return None
            codes, count, firsts = _factorize(codes * extra_count + extra)
        return (codes, count, firsts)

    def _grouped_indices(
        self, names: Sequence[str]
    ) -> tuple[list[tuple[Any, ...]], list[np.ndarray]] | None:
        """Vectorized grouping: first-appearance-ordered keys plus the
        row indices of each group (row order preserved within groups)."""
        names = tuple(names)
        factorized = self._group_codes(names)
        if factorized is None:
            return None
        codes, count, firsts = factorized
        order = np.argsort(codes, kind="stable")
        boundaries = np.flatnonzero(np.diff(codes[order])) + 1
        index_groups = np.split(order, boundaries)
        key_columns = [self._columns[name][firsts].tolist() for name in names]
        keys = list(zip(*key_columns))
        return keys, index_groups

    def aggregate(self, by: Sequence[str], **aggregations: Aggregation) -> "Table":
        """Group by ``by`` and reduce columns.

        Each keyword maps an output column name to a pair
        ``(input_column, reducer)`` where the reducer is applied to the
        list of values of that column within the group:

        >>> t = Table({"k": ["a", "a", "b"], "v": [1, 2, 3]})
        >>> t.aggregate(by=["k"], total=("v", sum)).column("total")
        [3, 3]

        The built-in reducers ``sum``, ``len``, ``min``, and ``max``
        run as segmented numpy kernels when the value column is
        numeric; any other callable receives the group's values as a
        plain list, exactly as before.
        """
        if not aggregations:
            raise TableError("aggregate() needs at least one aggregation")
        by = list(by)
        for name in by:
            if name not in self._columns:
                raise TableError(f"unknown column {name!r}; have {self.column_names}")
        for out_name, (in_name, _) in aggregations.items():
            if in_name not in self._columns:
                raise TableError(
                    f"unknown column {in_name!r} for aggregation {out_name!r}"
                )
        vectorized = self._aggregate_vectorized(by, aggregations)
        if vectorized is not None:
            return vectorized
        records: list[Row] = []
        for key, group in self.group_by(*by):
            record: Row = dict(zip(by, key))
            for out_name, (in_name, reducer) in aggregations.items():
                record[out_name] = reducer(group.column(in_name))
            records.append(record)
        return Table.from_records(
            records, columns=list(by) + list(aggregations.keys())
        )

    def _aggregate_vectorized(
        self, by: list[str], aggregations: Mapping[str, Aggregation]
    ) -> "Table | None":
        if self._length == 0:
            return None
        factorized = self._group_codes(tuple(by))
        if factorized is None:
            return None
        codes, count, firsts = factorized
        order: np.ndarray | None = None
        starts: np.ndarray | None = None
        index_groups: list[np.ndarray] | None = None
        columns: dict[str, np.ndarray | list[Any]] = {
            name: self._columns[name][firsts] for name in by
        }

        def segmented() -> tuple[np.ndarray, np.ndarray]:
            nonlocal order, starts
            if order is None or starts is None:
                order = np.argsort(codes, kind="stable")
                boundaries = np.flatnonzero(np.diff(codes[order])) + 1
                starts = np.concatenate(([0], boundaries))
            return order, starts

        for out_name, (in_name, reducer) in aggregations.items():
            backing = self._columns[in_name]
            numeric = (
                isinstance(backing, np.ndarray) and backing.dtype.kind in "if"
            )
            if reducer is len:
                columns[out_name] = np.bincount(codes, minlength=count)
            elif reducer is sum and numeric:
                row_order, group_starts = segmented()
                columns[out_name] = np.add.reduceat(
                    backing[row_order], group_starts
                )
            elif reducer is min and numeric:
                row_order, group_starts = segmented()
                columns[out_name] = np.minimum.reduceat(
                    backing[row_order], group_starts
                )
            elif reducer is max and numeric:
                row_order, group_starts = segmented()
                columns[out_name] = np.maximum.reduceat(
                    backing[row_order], group_starts
                )
            else:
                if index_groups is None:
                    row_order, group_starts = segmented()
                    index_groups = np.split(row_order, group_starts[1:])
                values = self._list(in_name)
                columns[out_name] = _sniff(
                    [
                        reducer([values[i] for i in indices.tolist()])
                        for indices in index_groups
                    ]
                )
        return Table._from_backing(columns, count)

    def join(self, other: "Table", on: str | Sequence[str]) -> "Table":
        """Inner-join with ``other`` on the named key column(s).

        Non-key columns that exist in both tables are taken from the
        right table under the suffix ``_right``. Output rows follow the
        left table's row order; multiple right matches appear in the
        right table's row order.
        """
        keys = [on] if isinstance(on, str) else list(on)
        for key in keys:
            if key not in self._columns:
                raise TableError(f"left table lacks join column {key!r}")
            if key not in other._columns:
                raise TableError(f"right table lacks join column {key!r}")
        right_extra = [name for name in other.column_names if name not in keys]
        out_for = {
            name: f"{name}_right" if name in self._columns else name
            for name in right_extra
        }
        takes = self._join_takes(other, keys)
        if takes is None:
            return self._join_python(other, keys, right_extra, out_for)
        left_take, right_take = takes
        columns: dict[str, np.ndarray | list[Any]] = {}
        for name in self.column_names:
            columns[name] = _gather(self._columns[name], left_take)
        for name in right_extra:
            columns[out_for[name]] = _gather(other._columns[name], right_take)
        return Table._from_backing(columns, int(left_take.size))

    def _join_takes(
        self, other: "Table", keys: list[str]
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Row-index pairs of the inner join, via factorized hash join.

        Returns ``None`` when any key column pair cannot be factorized
        with hash-identical semantics (object fallback, NaN keys, or a
        string/numeric kind mismatch that numpy would coerce)."""
        merged: list[np.ndarray] = []
        for key in keys:
            left = self._columns[key]
            right = other._columns[key]
            if not (isinstance(left, np.ndarray) and isinstance(right, np.ndarray)):
                return None
            numeric = left.dtype.kind in "biuf" and right.dtype.kind in "biuf"
            textual = left.dtype.kind == "U" and right.dtype.kind == "U"
            if not (numeric or textual):
                return None
            for side in (left, right):
                if side.dtype.kind == "f" and np.isnan(side).any():
                    return None
            if numeric and left.dtype.kind != right.dtype.kind:
                # Mixed int/float keys promote to float64 on concat;
                # ints beyond 2**53 would collapse onto neighbours that
                # Python equality keeps distinct.
                for side in (left, right):
                    if side.dtype.kind in "iu" and side.size and (
                        int(side.min()) < -_FLOAT_EXACT_INT
                        or int(side.max()) > _FLOAT_EXACT_INT
                    ):
                        return None
            merged.append(np.concatenate((left, right)))
        n_left = self._length
        codes, count, _ = _factorize(merged[0])
        for column in merged[1:]:
            extra, extra_count, _ = _factorize(column)
            if count * extra_count >= 2**62:
                return None
            codes, count, _ = _factorize(codes * extra_count + extra)
        left_codes = codes[:n_left]
        right_codes = codes[n_left:]
        right_order = np.argsort(right_codes, kind="stable")
        counts = np.bincount(right_codes, minlength=count)
        group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        matches = counts[left_codes]
        left_take = np.repeat(np.arange(n_left), matches)
        total = int(matches.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        segment_start = np.repeat(group_starts[left_codes], matches)
        segment_offset = np.arange(total) - np.repeat(
            np.cumsum(matches) - matches, matches
        )
        right_take = right_order[segment_start + segment_offset]
        return left_take, right_take

    def _join_python(
        self,
        other: "Table",
        keys: list[str],
        right_extra: list[str],
        out_for: dict[str, str],
    ) -> "Table":
        right_keys = [other._list(name) for name in keys]
        right_index: dict[tuple[Any, ...], list[int]] = {}
        for index, key in enumerate(zip(*right_keys)):
            right_index.setdefault(key, []).append(index)
        left_keys = [self._list(name) for name in keys]
        left_take: list[int] = []
        right_take: list[int] = []
        for index, key in enumerate(zip(*left_keys)):
            for right_row in right_index.get(key, ()):
                left_take.append(index)
                right_take.append(right_row)
        columns: dict[str, np.ndarray | list[Any]] = {}
        for name in self.column_names:
            columns[name] = _gather(self._columns[name], left_take)
        for name in right_extra:
            columns[out_for[name]] = _gather(other._columns[name], right_take)
        return Table._from_backing(columns, len(left_take))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self, float_format: str = "{:.3f}") -> str:
        """Render as an aligned plain-text table."""
        names = self.column_names

        def fmt(value: Any) -> str:
            if isinstance(value, bool):
                return str(value)
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        cells = [[fmt(value) for value in self._list(name)] for name in names]
        widths = [
            max([len(name)] + [len(cell) for cell in column])
            for name, column in zip(names, cells)
        ]
        header = "  ".join(name.ljust(width) for name, width in zip(names, widths))
        rule = "  ".join("-" * width for width in widths)
        lines = [header, rule]
        for row_index in range(self._length):
            lines.append(
                "  ".join(
                    cells[col_index][row_index].ljust(widths[col_index])
                    for col_index in range(len(names))
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table({self._length} rows x {len(self._columns)} cols: {self.column_names})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _list(self, name: str) -> list[Any]:
        """The named column as a list of native Python scalars."""
        return _as_list(self._columns[name])

    def _take(self, indices: Sequence[int] | np.ndarray | slice) -> "Table":
        """Rows at ``indices``, as a new table sharing column kinds.

        Array columns use fancy indexing (or zero-copy views for
        slices); list columns gather element by element.
        """
        if isinstance(indices, slice):
            length = len(range(*indices.indices(self._length)))
            return Table._from_backing(
                {
                    name: values[indices]
                    for name, values in self._columns.items()
                },
                length,
            )
        array_index: np.ndarray | None = None
        list_index: list[int] | None = None
        columns: dict[str, np.ndarray | list[Any]] = {}
        for name, values in self._columns.items():
            if isinstance(values, np.ndarray):
                if array_index is None:
                    array_index = np.asarray(indices, dtype=np.intp)
                columns[name] = values[array_index]
            else:
                if list_index is None:
                    list_index = (
                        indices.tolist()
                        if isinstance(indices, np.ndarray)
                        else list(indices)
                    )
                columns[name] = [values[i] for i in list_index]
        return Table._from_backing(columns, len(indices))


def _gather(
    backing: np.ndarray | list[Any], indices: np.ndarray | list[int]
) -> np.ndarray | list[Any]:
    """Column values at ``indices``, preserving the backing kind."""
    if isinstance(backing, np.ndarray):
        return backing[np.asarray(indices, dtype=np.intp)]
    if isinstance(indices, np.ndarray):
        indices = indices.tolist()
    return [backing[i] for i in indices]
