"""A minimal columnar table, the library's pandas substitute.

Every analysis in the paper is a small relational computation over
curated records: filter rows, derive columns, group, aggregate, sort,
join, and render. :class:`Table` implements exactly that surface with
plain Python containers so the repository has no heavyweight
dependencies.

Tables are immutable from the caller's point of view: every operation
returns a new :class:`Table`, and columns handed in or out are copied.

>>> t = Table.from_records([
...     {"vendor": "apple", "kg": 60.0},
...     {"vendor": "google", "kg": 45.0},
...     {"vendor": "apple", "kg": 66.0},
... ])
>>> t.where(lambda row: row["vendor"] == "apple").num_rows
2
>>> t.aggregate(by=["vendor"], total=("kg", sum)).sort_by("vendor").column("total")
[126.0, 45.0]
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .errors import TableError

__all__ = ["Table"]

Row = dict[str, Any]
Aggregation = tuple[str, Callable[[list[Any]], Any]]


class Table:
    """An ordered collection of named, equally sized columns."""

    def __init__(self, columns: Mapping[str, Sequence[Any]]) -> None:
        if not columns:
            raise TableError("a table needs at least one column")
        normalized: dict[str, list[Any]] = {}
        length: int | None = None
        for name, values in columns.items():
            if not isinstance(name, str) or not name:
                raise TableError(f"column names must be non-empty strings, got {name!r}")
            values = list(values)
            if length is None:
                length = len(values)
            elif len(values) != length:
                raise TableError(
                    f"column {name!r} has {len(values)} values, expected {length}"
                )
            normalized[name] = values
        self._columns = normalized
        self._length = length or 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Table":
        """Build a table from an iterable of row mappings.

        When ``columns`` is omitted the column order of the first record
        is used and every record must supply exactly the same keys.
        """
        records = list(records)
        if not records:
            if columns is None:
                raise TableError("cannot infer columns from zero records")
            return cls({name: [] for name in columns})
        names = list(columns) if columns is not None else list(records[0].keys())
        data: dict[str, list[Any]] = {name: [] for name in names}
        for index, record in enumerate(records):
            missing = set(names) - set(record.keys())
            if missing:
                raise TableError(f"record {index} is missing columns {sorted(missing)}")
            extra = set(record.keys()) - set(names)
            if extra and columns is None:
                raise TableError(f"record {index} has unexpected columns {sorted(extra)}")
            for name in names:
                data[name].append(record[name])
        return cls(data)

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Table":
        return cls({name: [] for name in columns})

    @classmethod
    def concat(cls, tables: Sequence["Table"]) -> "Table":
        """Stack tables with identical columns, preserving row order."""
        if not tables:
            raise TableError("concat() needs at least one table")
        names = tables[0].column_names
        for table in tables[1:]:
            if table.column_names != names:
                raise TableError(
                    f"column mismatch: {table.column_names} vs {names}"
                )
        return cls(
            {
                name: [
                    value for table in tables for value in table._columns[name]
                ]
                for name in names
            }
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return list(self._columns.keys())

    @property
    def num_rows(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Row]:
        names = self.column_names
        for index in range(self._length):
            yield {name: self._columns[name][index] for name in names}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._columns == other._columns

    def row(self, index: int) -> Row:
        """Return row ``index`` as a dict (supports negative indices)."""
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise TableError(f"row index {index} out of range for {self._length} rows")
        return {name: values[index] for name, values in self._columns.items()}

    def column(self, name: str) -> list[Any]:
        """Return a copy of the named column's values."""
        if name not in self._columns:
            raise TableError(f"unknown column {name!r}; have {self.column_names}")
        return list(self._columns[name])

    def to_records(self) -> list[Row]:
        return list(self)

    # ------------------------------------------------------------------
    # Relational operations (each returns a new Table)
    # ------------------------------------------------------------------
    def select(self, *names: str) -> "Table":
        """Keep only the named columns, in the given order."""
        for name in names:
            if name not in self._columns:
                raise TableError(f"unknown column {name!r}; have {self.column_names}")
        if not names:
            raise TableError("select() needs at least one column name")
        return Table({name: self._columns[name] for name in names})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns according to ``mapping`` (old name -> new name)."""
        for old in mapping:
            if old not in self._columns:
                raise TableError(f"unknown column {old!r}; have {self.column_names}")
        return Table(
            {mapping.get(name, name): values for name, values in self._columns.items()}
        )

    def where(self, predicate: Callable[[Row], bool]) -> "Table":
        """Keep rows for which ``predicate(row)`` is truthy."""
        keep = [index for index, row in enumerate(self) if predicate(row)]
        return self._take(keep)

    def with_column(
        self, name: str, values: Sequence[Any] | Callable[[Row], Any]
    ) -> "Table":
        """Add or replace a column, from a sequence or a per-row function."""
        if callable(values):
            computed = [values(row) for row in self]
        else:
            computed = list(values)
            if len(computed) != self._length:
                raise TableError(
                    f"column {name!r} has {len(computed)} values, expected {self._length}"
                )
        columns = dict(self._columns)
        columns[name] = computed
        return Table(columns)

    def drop(self, *names: str) -> "Table":
        """Remove the named columns."""
        for name in names:
            if name not in self._columns:
                raise TableError(f"unknown column {name!r}; have {self.column_names}")
        remaining = {
            name: values for name, values in self._columns.items() if name not in names
        }
        if not remaining:
            raise TableError("cannot drop every column")
        return Table(remaining)

    def sort_by(self, *names: str, reverse: bool = False) -> "Table":
        """Sort rows lexicographically by the named columns."""
        if not names:
            raise TableError("sort_by() needs at least one column name")
        for name in names:
            if name not in self._columns:
                raise TableError(f"unknown column {name!r}; have {self.column_names}")
        order = sorted(
            range(self._length),
            key=lambda index: tuple(self._columns[name][index] for name in names),
            reverse=reverse,
        )
        return self._take(order)

    def head(self, count: int) -> "Table":
        """Return the first ``count`` rows."""
        if count < 0:
            raise TableError("head() count must be non-negative")
        return self._take(list(range(min(count, self._length))))

    def unique(self, name: str) -> list[Any]:
        """Distinct values of a column, in first-appearance order."""
        seen: dict[Any, None] = {}
        for value in self.column(name):
            seen.setdefault(value, None)
        return list(seen.keys())

    def describe(self) -> "Table":
        """Min/mean/max summary of every numeric column."""
        records: list[Row] = []
        for name, values in self._columns.items():
            numeric = [
                float(value)
                for value in values
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
            if not numeric:
                continue
            records.append(
                {
                    "column": name,
                    "count": len(numeric),
                    "min": min(numeric),
                    "mean": sum(numeric) / len(numeric),
                    "max": max(numeric),
                }
            )
        if not records:
            raise TableError("describe() needs at least one numeric column")
        return Table.from_records(records)

    def group_by(self, *names: str) -> list[tuple[tuple[Any, ...], "Table"]]:
        """Partition rows by the named key columns.

        Returns ``(key, sub_table)`` pairs in first-appearance order of
        each key.
        """
        if not names:
            raise TableError("group_by() needs at least one column name")
        for name in names:
            if name not in self._columns:
                raise TableError(f"unknown column {name!r}; have {self.column_names}")
        groups: dict[tuple[Any, ...], list[int]] = {}
        for index in range(self._length):
            key = tuple(self._columns[name][index] for name in names)
            groups.setdefault(key, []).append(index)
        return [(key, self._take(indices)) for key, indices in groups.items()]

    def aggregate(self, by: Sequence[str], **aggregations: Aggregation) -> "Table":
        """Group by ``by`` and reduce columns.

        Each keyword maps an output column name to a pair
        ``(input_column, reducer)`` where the reducer is applied to the
        list of values of that column within the group:

        >>> t = Table({"k": ["a", "a", "b"], "v": [1, 2, 3]})
        >>> t.aggregate(by=["k"], total=("v", sum)).column("total")
        [3, 3]
        """
        if not aggregations:
            raise TableError("aggregate() needs at least one aggregation")
        records: list[Row] = []
        for key, group in self.group_by(*by):
            record: Row = dict(zip(by, key))
            for out_name, (in_name, reducer) in aggregations.items():
                record[out_name] = reducer(group.column(in_name))
            records.append(record)
        return Table.from_records(
            records, columns=list(by) + list(aggregations.keys())
        )

    def join(self, other: "Table", on: str | Sequence[str]) -> "Table":
        """Inner-join with ``other`` on the named key column(s).

        Non-key columns that exist in both tables are taken from the
        right table under the suffix ``_right``.
        """
        keys = [on] if isinstance(on, str) else list(on)
        for key in keys:
            if key not in self._columns:
                raise TableError(f"left table lacks join column {key!r}")
            if key not in other._columns:
                raise TableError(f"right table lacks join column {key!r}")
        right_index: dict[tuple[Any, ...], list[int]] = {}
        for index in range(other._length):
            key = tuple(other._columns[name][index] for name in keys)
            right_index.setdefault(key, []).append(index)
        right_extra = [name for name in other.column_names if name not in keys]
        out_names = self.column_names + [
            f"{name}_right" if name in self._columns else name for name in right_extra
        ]
        records: list[Row] = []
        for index in range(self._length):
            key = tuple(self._columns[name][index] for name in keys)
            for right_row_index in right_index.get(key, []):
                record = {
                    name: self._columns[name][index] for name in self.column_names
                }
                for name in right_extra:
                    out = f"{name}_right" if name in self._columns else name
                    record[out] = other._columns[name][right_row_index]
                records.append(record)
        return Table.from_records(records, columns=out_names)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self, float_format: str = "{:.3f}") -> str:
        """Render as an aligned plain-text table."""
        names = self.column_names

        def fmt(value: Any) -> str:
            if isinstance(value, bool):
                return str(value)
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        cells = [[fmt(value) for value in self._columns[name]] for name in names]
        widths = [
            max([len(name)] + [len(cell) for cell in column])
            for name, column in zip(names, cells)
        ]
        header = "  ".join(name.ljust(width) for name, width in zip(names, widths))
        rule = "  ".join("-" * width for width in widths)
        lines = [header, rule]
        for row_index in range(self._length):
            lines.append(
                "  ".join(
                    cells[col_index][row_index].ljust(widths[col_index])
                    for col_index in range(len(names))
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table({self._length} rows x {len(self._columns)} cols: {self.column_names})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _take(self, indices: Sequence[int]) -> "Table":
        return Table(
            {
                name: [values[index] for index in indices]
                for name, values in self._columns.items()
            }
        )
