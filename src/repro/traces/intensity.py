"""Time-series grid carbon intensity.

The paper's Section VI argues that shrinking the operational footprint
means running work when the grid is clean — which makes the intensity
*time series* the first-class object, not a single average g/kWh.
:class:`IntensityTrace` is that object: a validated, uniformly sampled
g CO2e/kWh series with vectorized resampling, alignment, slicing,
rolling statistics, and the ``cleanest_window`` query the carbon-aware
scheduler builds on.

Traces are piecewise constant: the value at sample ``k`` holds for the
whole ``step_hours`` interval starting at ``k * step_hours``. That
convention makes refining (repeat) and coarsening (block mean) exact
inverses for power-of-two factors and keeps every window integral a
prefix-sum subtraction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, NamedTuple, Sequence

import numpy as np

from ..errors import SimulationError

__all__ = ["IntensityTrace", "Window"]


class Window(NamedTuple):
    """A contiguous span of a trace: where it starts and how clean it is."""

    start_hour: float
    mean_g_per_kwh: float


def _validated_values(values: Any) -> np.ndarray:
    array = np.array(values, dtype=np.float64)
    if array.ndim != 1:
        raise SimulationError(
            f"intensity values must be one-dimensional, got shape {array.shape}"
        )
    if array.size == 0:
        raise SimulationError("an intensity trace needs at least one sample")
    if not np.all(np.isfinite(array)):
        raise SimulationError("intensity values must be finite (no NaN/inf)")
    if np.any(array < 0.0):
        raise SimulationError("intensity values must be non-negative")
    array.flags.writeable = False
    return array


def _integer_ratio(value: float, what: str) -> int:
    ratio = int(round(value))
    if ratio < 1 or abs(value - ratio) > 1e-9:
        raise SimulationError(f"{what} must be an integer multiple, got {value}")
    return ratio


@dataclass(frozen=True, eq=False)
class IntensityTrace:
    """A uniformly sampled carbon-intensity time series (g CO2e/kWh).

    ``values[k]`` is the intensity over the half-open interval
    ``[k * step_hours, (k + 1) * step_hours)``. Construction validates
    the series: finite, non-negative, one-dimensional, non-empty.
    """

    name: str
    values: np.ndarray
    step_hours: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("an intensity trace needs a name")
        if not (self.step_hours > 0.0) or not np.isfinite(self.step_hours):
            raise SimulationError(
                f"step must be a positive number of hours, got {self.step_hours}"
            )
        object.__setattr__(self, "values", _validated_values(self.values))

    # -- construction --------------------------------------------------

    @classmethod
    def from_records(
        cls,
        name: str,
        records: Sequence[Mapping[str, float]],
        *,
        hour_key: str = "hour",
        value_key: str = "g_per_kwh",
    ) -> "IntensityTrace":
        """Build a trace from ``{hour, g_per_kwh}`` records.

        Records may arrive unordered; they must form a uniformly spaced
        series (constant positive step) once sorted by hour.
        """
        if not records:
            raise SimulationError("need at least one intensity record")
        try:
            hours = np.array([float(r[hour_key]) for r in records])
            values = np.array([float(r[value_key]) for r in records])
        except KeyError as missing:
            raise SimulationError(
                f"intensity records need {hour_key!r} and {value_key!r} "
                f"fields; missing {missing}"
            ) from None
        order = np.argsort(hours, kind="stable")
        hours, values = hours[order], values[order]
        if len(hours) == 1:
            return cls(name, values, step_hours=1.0)
        steps = np.diff(hours)
        if np.any(steps <= 0.0):
            raise SimulationError("intensity records contain duplicate hours")
        if not np.allclose(steps, steps[0], rtol=0.0, atol=1e-9):
            raise SimulationError(
                "intensity records must be uniformly spaced, got steps "
                f"{np.unique(np.round(steps, 6)).tolist()}"
            )
        return cls(name, values, step_hours=float(steps[0]))

    # -- basic geometry ------------------------------------------------

    def __len__(self) -> int:
        return int(self.values.shape[0])

    @property
    def hours(self) -> float:
        """Total span covered by the trace, in hours."""
        return len(self) * self.step_hours

    @property
    def mean_g_per_kwh(self) -> float:
        """Time-weighted average intensity over the whole trace."""
        return float(self.values.mean())

    @property
    def min_g_per_kwh(self) -> float:
        """The cleanest single sample."""
        return float(self.values.min())

    @property
    def max_g_per_kwh(self) -> float:
        """The dirtiest single sample."""
        return float(self.values.max())

    def hourly_values(self) -> np.ndarray:
        """The trace resampled to the scheduler's 1-hour granularity."""
        return self.resample(1.0).values

    # -- vectorized operations -----------------------------------------

    def resample(self, step_hours: float) -> "IntensityTrace":
        """Return the trace at a finer or coarser uniform step.

        Refining repeats each sample (the series is piecewise
        constant); coarsening block-averages, and requires the factor
        to divide the sample count. Either way the target step must be
        an integer multiple or divisor of the current one.
        """
        if not (step_hours > 0.0):
            raise SimulationError(f"step must be positive, got {step_hours}")
        if abs(step_hours - self.step_hours) < 1e-12:
            return self
        if step_hours > self.step_hours:
            factor = _integer_ratio(
                step_hours / self.step_hours, "coarsening factor"
            )
            if len(self) % factor != 0:
                raise SimulationError(
                    f"cannot coarsen {len(self)} samples by a factor of "
                    f"{factor}: not divisible"
                )
            values = self.values.reshape(-1, factor).mean(axis=1)
        else:
            factor = _integer_ratio(
                self.step_hours / step_hours, "refinement factor"
            )
            values = np.repeat(self.values, factor)
        return replace(self, values=values, step_hours=step_hours)

    def slice_hours(self, start_hour: float, stop_hour: float) -> "IntensityTrace":
        """The sub-trace covering ``[start_hour, stop_hour)``.

        Both bounds must land on sample boundaries and stay inside the
        trace.
        """
        start = start_hour / self.step_hours
        stop = stop_hour / self.step_hours
        lo = int(round(start))
        hi = int(round(stop))
        if abs(start - lo) > 1e-9 or abs(stop - hi) > 1e-9:
            raise SimulationError(
                f"slice bounds must align to the {self.step_hours} h step"
            )
        if lo < 0 or hi > len(self) or hi <= lo:
            raise SimulationError(
                f"slice [{start_hour}, {stop_hour}) h falls outside the "
                f"{self.hours} h trace"
            )
        return replace(self, values=self.values[lo:hi])

    def scale(self, factors: "float | np.ndarray") -> "IntensityTrace":
        """Multiply the series elementwise (overlays, what-ifs).

        ``factors`` is a scalar or a per-sample array; the result is
        re-validated, so overlays cannot smuggle in negative intensity.
        """
        scaled = self.values * np.asarray(factors, dtype=np.float64)
        return replace(self, values=scaled)

    def align(self, other: "IntensityTrace") -> "tuple[IntensityTrace, IntensityTrace]":
        """Bring two traces onto a common step and horizon.

        Both are resampled to the finer of the two steps, then
        truncated to the shorter common span — after which they can be
        compared or blended samplewise.
        """
        step = min(self.step_hours, other.step_hours)
        left, right = self.resample(step), other.resample(step)
        count = min(len(left), len(right))
        span = count * step
        return left.slice_hours(0.0, span), right.slice_hours(0.0, span)

    def rolling_mean(self, window_hours: float) -> np.ndarray:
        """Mean intensity of every full window of ``window_hours``.

        Computed from one prefix-sum pass; entry ``k`` is the mean over
        the window starting at sample ``k`` (``len - width + 1``
        entries).
        """
        width = self._window_width(window_hours)
        csum = np.concatenate(([0.0], np.cumsum(self.values)))
        return (csum[width:] - csum[:-width]) / width

    def cleanest_window(self, duration_hours: float) -> Window:
        """The start of the lowest-mean window of ``duration_hours``.

        Ties resolve to the earliest window, matching the carbon-aware
        scheduler's earliest-clean-start tie-break.
        """
        means = self.rolling_mean(duration_hours)
        start = int(np.argmin(means))
        return Window(
            start_hour=start * self.step_hours,
            mean_g_per_kwh=float(means[start]),
        )

    def _window_width(self, window_hours: float) -> int:
        width = _integer_ratio(window_hours / self.step_hours, "window width")
        if width > len(self):
            raise SimulationError(
                f"window of {window_hours} h exceeds the {self.hours} h trace"
            )
        return width

    def __repr__(self) -> str:
        return (
            f"IntensityTrace({self.name!r}, {len(self)} x {self.step_hours} h, "
            f"{self.min_g_per_kwh:.3g}..{self.max_g_per_kwh:.3g} g/kWh)"
        )
