"""Bundled intensity profiles: duck-curve families per grid region.

Table III gives each geography one *average* intensity; real grids
swing around that average hour by hour. This module turns every
:class:`~repro.core.intensity.GridRegion` into a family of synthetic
hourly traces built on :class:`~repro.datacenter.grid_sim.DiurnalGridModel`:

* a deterministic duck curve whose amplitudes scale with the region's
  average (dirty fossil grids swing hard; hydro grids barely move),
* seeded stochastic variants (weather and demand noise), and
* renewable-ramp overlays that taper intensity over the horizon the
  way an aggressive PPA book does.

``profile_catalog`` assembles the whole family — the scenario stock
the batched policy evaluator and the ``repro trace`` CLI draw from.
"""

from __future__ import annotations

import numpy as np

from ..core.intensity import GridRegion
from ..data.grids import grid_by_name, region_names
from ..datacenter.grid_sim import DiurnalGridModel
from ..errors import SimulationError
from .intensity import IntensityTrace

__all__ = [
    "regional_duck_model",
    "regional_trace",
    "stochastic_variant",
    "renewable_ramp",
    "profile_catalog",
    "profile_names",
]

#: Duck-curve amplitudes as fractions of the regional average: midday
#: solar carves out ~40% of the mean, the evening peaker ramp adds
#: ~12% — the stylized shape of CAISO-like net-load curves.
_SOLAR_DEPTH_FRACTION = 0.40
_EVENING_PEAK_FRACTION = 0.12
#: Stochastic variants perturb hours by ~6% of the regional average.
_NOISE_FRACTION = 0.06


def regional_duck_model(
    region: GridRegion, *, noise_g_per_kwh: float = 0.0, seed: int = 0
) -> DiurnalGridModel:
    """A duck-curve generator scaled to a region's average intensity."""
    base = region.intensity.grams_per_kwh
    return DiurnalGridModel(
        base_g_per_kwh=base,
        solar_depth_g_per_kwh=_SOLAR_DEPTH_FRACTION * base,
        evening_peak_g_per_kwh=_EVENING_PEAK_FRACTION * base,
        noise_g_per_kwh=noise_g_per_kwh,
        seed=seed,
    )


def regional_trace(region_name: str, hours: int = 168) -> IntensityTrace:
    """The deterministic hourly duck curve for a Table III region."""
    region = grid_by_name(region_name)
    model = regional_duck_model(region)
    return IntensityTrace(region_name, model.hourly_series(hours))


def stochastic_variant(
    region_name: str, hours: int = 168, *, seed: int = 0
) -> IntensityTrace:
    """A seeded noisy variant of a region's duck curve."""
    region = grid_by_name(region_name)
    model = regional_duck_model(
        region,
        noise_g_per_kwh=_NOISE_FRACTION * region.intensity.grams_per_kwh,
        seed=seed,
    )
    return IntensityTrace(
        f"{region_name}_noisy_s{seed}", model.hourly_series(hours)
    )


def renewable_ramp(
    trace: IntensityTrace, final_fraction: float
) -> IntensityTrace:
    """Overlay a linear renewable build-out onto a trace.

    The first sample keeps its intensity; by the last, a
    ``final_fraction`` share of energy is carbon-free — the
    market-based arc of an aggressive PPA ramp compressed into the
    trace's horizon.
    """
    if not 0.0 <= final_fraction < 1.0:
        raise SimulationError(
            f"ramp fraction must be within [0, 1), got {final_fraction}"
        )
    factors = np.linspace(1.0, 1.0 - final_fraction, num=len(trace))
    ramped = trace.scale(factors)
    return IntensityTrace(
        f"{trace.name}_ramp{int(round(final_fraction * 100))}",
        ramped.values,
        step_hours=trace.step_hours,
    )


def profile_catalog(
    hours: int = 168,
    *,
    stochastic_seeds: tuple[int, ...] = (0,),
    ramp_fraction: float = 0.5,
) -> dict[str, IntensityTrace]:
    """Every bundled profile, keyed by name.

    Per Table III region: the deterministic duck curve, one noisy
    variant per seed, and a renewable-ramp overlay of the deterministic
    curve. All traces share the same hourly step and horizon, so the
    batched evaluator can stack them into one matrix.
    """
    catalog: dict[str, IntensityTrace] = {}
    for region_name in region_names():
        base = regional_trace(region_name, hours)
        catalog[base.name] = base
        for seed in stochastic_seeds:
            noisy = stochastic_variant(region_name, hours, seed=seed)
            catalog[noisy.name] = noisy
        ramped = renewable_ramp(base, ramp_fraction)
        catalog[ramped.name] = ramped
    return catalog


def profile_names(hours: int = 24) -> list[str]:
    """The catalog's trace names (cheap: short horizon)."""
    return list(profile_catalog(hours))
