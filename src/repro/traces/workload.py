"""Batch-workload traces: arrival streams that lower to scheduler jobs.

The scheduling question needs two time series, not one: the grid's
intensity and the work arriving against it. :class:`WorkloadTrace`
holds an ordered stream of deferrable batch jobs and lowers to the
``BatchJob`` sequence the schedulers consume. Two seeded generators
cover the shapes the paper's Section VI cares about — a diurnal mix of
daytime interactive jobs plus a nightly batch window, and heavy-tailed
ML-training campaigns — and ``from_records`` loads explicit job lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..datacenter.scheduler import BatchJob
from ..errors import SimulationError

__all__ = [
    "canonical_workloads",
    "WorkloadTrace",
    "diurnal_workload",
    "training_workload",
]


@dataclass(frozen=True)
class WorkloadTrace:
    """An ordered stream of deferrable batch jobs."""

    name: str
    jobs: tuple[BatchJob, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("a workload trace needs a name")
        if not self.jobs:
            raise SimulationError(f"{self.name}: a workload needs at least one job")
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            raise SimulationError(f"{self.name}: job names must be unique")
        object.__setattr__(self, "jobs", tuple(self.jobs))

    @classmethod
    def from_records(
        cls, name: str, records: Sequence[Mapping[str, object]]
    ) -> "WorkloadTrace":
        """Build a trace from ``{name, duration_hours, power_kw, ...}`` records.

        Optional keys ``arrival_hour`` and ``deadline_hour`` default to
        0 and unconstrained; every record is validated by
        :class:`~repro.datacenter.scheduler.BatchJob`.
        """
        jobs = []
        for record in records:
            try:
                jobs.append(
                    BatchJob(
                        name=str(record["name"]),
                        duration_hours=int(record["duration_hours"]),
                        power_kw=float(record["power_kw"]),
                        arrival_hour=int(record.get("arrival_hour", 0)),
                        deadline_hour=(
                            int(record["deadline_hour"])
                            if record.get("deadline_hour") is not None
                            else None
                        ),
                    )
                )
            except KeyError as missing:
                raise SimulationError(
                    f"{name}: job records need 'name', 'duration_hours' and "
                    f"'power_kw'; missing {missing}"
                ) from None
        return cls(name, tuple(jobs))

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def span_hours(self) -> int:
        """Hours a schedule horizon must cover: every job must fit.

        The latest ``arrival + duration`` over the stream — the minimum
        intensity-trace length the schedulers will accept.
        """
        return max(job.arrival_hour + job.duration_hours for job in self.jobs)

    @property
    def total_energy_kwh(self) -> float:
        """Energy the stream will draw regardless of placement."""
        return float(
            sum(job.power_kw * job.duration_hours for job in self.jobs)
        )

    @property
    def peak_power_kw(self) -> float:
        """The hungriest single job — a lower bound on cluster capacity."""
        return max(job.power_kw for job in self.jobs)

    def __repr__(self) -> str:
        return (
            f"WorkloadTrace({self.name!r}, {len(self)} jobs, "
            f"{self.total_energy_kwh:.4g} kWh over >= {self.span_hours} h)"
        )


def diurnal_workload(
    days: int = 2,
    *,
    interactive_per_day: int = 6,
    nightly_per_day: int = 3,
    seed: int = 0,
    name: str = "diurnal",
) -> WorkloadTrace:
    """Daytime interactive jobs plus a nightly batch window.

    Interactive jobs are short, small, and deadline-tight (they model
    report builds and media pipelines riding the business day); the
    nightly batch is bigger and can slide through the night. Powers and
    durations are drawn from a seeded generator so variants are
    reproducible.
    """
    if days <= 0:
        raise SimulationError("workload needs at least one day")
    rng = np.random.default_rng(seed)
    jobs: list[BatchJob] = []
    for day in range(days):
        base = 24 * day
        for index in range(interactive_per_day):
            arrival = base + 8 + int(rng.integers(0, 9))  # 08:00-16:00
            duration = int(rng.integers(1, 4))
            jobs.append(
                BatchJob(
                    name=f"{name}_d{day}_interactive{index}",
                    duration_hours=duration,
                    power_kw=float(np.round(rng.uniform(40.0, 160.0), 1)),
                    arrival_hour=arrival,
                    deadline_hour=arrival + duration + int(rng.integers(2, 7)),
                )
            )
        for index in range(nightly_per_day):
            arrival = base + int(rng.integers(0, 4))  # 00:00-03:00
            duration = int(rng.integers(3, 7))
            jobs.append(
                BatchJob(
                    name=f"{name}_d{day}_nightly{index}",
                    duration_hours=duration,
                    power_kw=float(np.round(rng.uniform(150.0, 400.0), 1)),
                    arrival_hour=arrival,
                    deadline_hour=arrival + duration + int(rng.integers(8, 19)),
                )
            )
    return WorkloadTrace(name, tuple(jobs))


def training_workload(
    num_jobs: int = 8,
    *,
    horizon_hours: int = 48,
    seed: int = 0,
    name: str = "training",
) -> WorkloadTrace:
    """Heavy-tailed ML-training campaigns.

    Durations follow a clipped lognormal (most runs are short, a few
    dominate the queue), powers sit in accelerator-pod territory, and
    deadlines leave generous slack — the canonical deferrable load.
    """
    if num_jobs <= 0:
        raise SimulationError("workload needs at least one job")
    if horizon_hours < 24:
        raise SimulationError("training campaigns need a >=24 h horizon")
    rng = np.random.default_rng(seed)
    durations = np.clip(
        np.round(rng.lognormal(mean=1.2, sigma=0.7, size=num_jobs)),
        1,
        min(16, horizon_hours // 2),
    ).astype(int)
    powers = np.round(rng.uniform(200.0, 500.0, size=num_jobs), 1)
    arrivals = rng.integers(0, horizon_hours // 3, size=num_jobs)
    jobs = []
    for index in range(num_jobs):
        arrival = int(arrivals[index])
        duration = int(durations[index])
        slack = int(rng.integers(6, horizon_hours // 2))
        deadline = min(arrival + duration + slack, horizon_hours)
        jobs.append(
            BatchJob(
                name=f"{name}_job{index}",
                duration_hours=duration,
                power_kw=float(powers[index]),
                arrival_hour=arrival,
                deadline_hour=deadline,
            )
        )
    return WorkloadTrace(name, tuple(jobs))


def canonical_workloads() -> list[WorkloadTrace]:
    """The two canonical streams every temporal sweep shares.

    A two-day diurnal interactive + nightly-batch mix and an
    eight-job training campaign: the single source of truth for
    ``sweep_temporal_shifting``, its uncertain variant, and ext10 —
    whose CI columns must describe the *same* workload mix as the
    point estimates they annotate. Both streams span 48 hours, which
    is why those sweeps require ``hours >= 48``.
    """
    return [
        diurnal_workload(days=2),
        training_workload(num_jobs=8, horizon_hours=48),
    ]
