"""Temporal traces: intensity time series, workload streams, policies.

The paper's Section VI frames carbon-aware scheduling as *when* to
compute. This package makes the temporal objects first-class:

* :class:`IntensityTrace` — validated hourly (or finer) g CO2e/kWh
  series with vectorized resample/align/slice/rolling-mean and the
  ``cleanest_window`` query.
* Bundled profiles — duck-curve families per Table III grid region,
  seeded stochastic variants, renewable-ramp overlays
  (:func:`profile_catalog`).
* :class:`WorkloadTrace` — deferrable batch-job streams with diurnal
  and heavy-tail training generators.
* :func:`evaluate_policies` — the batched evaluator that runs
  carbon-agnostic / carbon-aware / slack-bounded policies across the
  whole traces × workloads × policies cross-product with shared
  per-trace prefix sums, returning a stats
  :class:`~repro.tabular.Table`.
"""

from .batch import BatchSchedule, prefix_sums, schedule_batch
from .evaluate import (
    CARBON_AGNOSTIC,
    CARBON_AWARE,
    DEFAULT_POLICIES,
    SchedulingPolicy,
    evaluate_policies,
    evaluate_policies_scalar,
    slack_bounded,
)
from .intensity import IntensityTrace, Window
from .profiles import (
    profile_catalog,
    profile_names,
    regional_duck_model,
    regional_trace,
    renewable_ramp,
    stochastic_variant,
)
from .workload import (
    WorkloadTrace,
    canonical_workloads,
    diurnal_workload,
    training_workload,
)

__all__ = [
    "IntensityTrace",
    "Window",
    "WorkloadTrace",
    "canonical_workloads",
    "diurnal_workload",
    "training_workload",
    "regional_duck_model",
    "regional_trace",
    "stochastic_variant",
    "renewable_ramp",
    "profile_catalog",
    "profile_names",
    "BatchSchedule",
    "prefix_sums",
    "schedule_batch",
    "SchedulingPolicy",
    "CARBON_AGNOSTIC",
    "CARBON_AWARE",
    "DEFAULT_POLICIES",
    "slack_bounded",
    "evaluate_policies",
    "evaluate_policies_scalar",
]
