"""Batched policy evaluation over traces × workloads × policies.

The temporal-shifting question the paper's Section VI poses is a
cross-product: for every grid (trace), every job stream (workload),
and every scheduling policy, how much carbon does shifting save, how
long do jobs wait, and what does it do to peak load?
``evaluate_policies`` answers the whole grid in one call, sharing
per-trace prefix sums across every (workload, policy) pair and running
the placement loop over all traces of a horizon at once via
:func:`~repro.traces.batch.schedule_batch`.

``evaluate_policies_scalar`` is the same contract computed the obvious
way — one scalar scheduler call per scenario. It exists as the
reference the equivalence suite pins the batched path against, and as
the benchmark baseline that shows why the batched path exists.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..datacenter.scheduler import (
    BatchJob,
    ScheduleResult,
    schedule_carbon_agnostic,
    schedule_carbon_aware,
)
from ..errors import SimulationError
from ..exec import ShardPlan, run_sharded
from ..obs.recorder import active_recorder
from ..tabular import Table
from .batch import prefix_sums, schedule_batch
from .intensity import IntensityTrace
from .workload import WorkloadTrace

__all__ = [
    "SchedulingPolicy",
    "CARBON_AGNOSTIC",
    "CARBON_AWARE",
    "slack_bounded",
    "DEFAULT_POLICIES",
    "evaluate_policies",
    "evaluate_policies_scalar",
]


@dataclass(frozen=True)
class SchedulingPolicy:
    """How a scheduler treats the grid and how far jobs may slide.

    ``carbon_aware=False`` is the earliest-start throughput queue;
    ``carbon_aware=True`` chases clean windows. ``slack_hours`` bounds
    deferral: each job's deadline is tightened to
    ``arrival + duration + slack`` (never loosened), the
    latency-vs-carbon dial operators actually control.
    """

    name: str
    carbon_aware: bool = True
    slack_hours: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("a scheduling policy needs a name")
        if self.slack_hours is not None and self.slack_hours < 0:
            raise SimulationError(
                f"{self.name}: slack must be non-negative, got {self.slack_hours}"
            )

    def lower(self, jobs: Sequence[BatchJob]) -> tuple[BatchJob, ...]:
        """The job set as this policy's scheduler will see it."""
        if self.slack_hours is None:
            return tuple(jobs)
        bounded = []
        for job in jobs:
            latest = job.arrival_hour + job.duration_hours + self.slack_hours
            deadline = (
                latest
                if job.deadline_hour is None
                else min(job.deadline_hour, latest)
            )
            bounded.append(dataclasses.replace(job, deadline_hour=deadline))
        return tuple(bounded)


CARBON_AGNOSTIC = SchedulingPolicy("agnostic", carbon_aware=False)
CARBON_AWARE = SchedulingPolicy("aware", carbon_aware=True)


def slack_bounded(slack_hours: int) -> SchedulingPolicy:
    """A carbon-aware policy whose deferral is capped at ``slack_hours``."""
    return SchedulingPolicy(
        f"slack{slack_hours}", carbon_aware=True, slack_hours=slack_hours
    )


#: The spectrum the experiments sweep: ignore the grid, chase it
#: freely, or chase it within a bounded latency budget.
DEFAULT_POLICIES: tuple[SchedulingPolicy, ...] = (
    CARBON_AGNOSTIC,
    CARBON_AWARE,
    slack_bounded(6),
)

_COLUMNS = (
    "trace",
    "workload",
    "policy",
    "total_kg",
    "savings_fraction",
    "mean_deferral_hours",
    "max_deferral_hours",
    "peak_load_kw",
)


def _normalize_traces(
    traces: "Sequence[IntensityTrace] | Mapping[str, IntensityTrace]",
) -> list[IntensityTrace]:
    items = list(traces.values()) if isinstance(traces, Mapping) else list(traces)
    if not items:
        raise SimulationError("need at least one intensity trace")
    names = [trace.name for trace in items]
    if len(set(names)) != len(names):
        raise SimulationError("trace names must be unique within an evaluation")
    return items


def _normalize_workloads(
    workloads: Sequence[WorkloadTrace],
) -> list[WorkloadTrace]:
    items = list(workloads)
    if not items:
        raise SimulationError("need at least one workload trace")
    names = [workload.name for workload in items]
    if len(set(names)) != len(names):
        raise SimulationError("workload names must be unique within an evaluation")
    return items


def _normalize_policies(
    policies: Sequence[SchedulingPolicy],
) -> list[SchedulingPolicy]:
    items = list(policies)
    if not items:
        raise SimulationError("need at least one scheduling policy")
    names = [policy.name for policy in items]
    if len(set(names)) != len(names):
        raise SimulationError("policy names must be unique within an evaluation")
    return items


def _check_span(trace_name: str, workload: WorkloadTrace, horizon: int) -> None:
    if workload.span_hours > horizon:
        raise SimulationError(
            f"trace {trace_name!r} covers {horizon} h but workload "
            f"{workload.name!r} needs {workload.span_hours} h"
        )


def _stats_row(
    trace_name: str,
    workload_name: str,
    policy_name: str,
    jobs_in_order: Sequence[BatchJob],
    starts: np.ndarray,
    grams: np.ndarray,
    load_row: np.ndarray,
    baseline_grams: float,
) -> dict[str, object]:
    """One scalar-path result row.

    The reductions (contiguous ``np.sum``/``mean``/``max``) are the
    same numpy kernels the batched path applies along ``axis=1``, so
    both evaluators produce bit-identical statistics.
    """
    total = float(np.sum(grams))
    arrivals = np.array([job.arrival_hour for job in jobs_in_order], dtype=float)
    deferral = starts - arrivals
    # An all-zero trace has a zero baseline; savings are 0, not NaN.
    ratio = total / baseline_grams if baseline_grams > 0.0 else 1.0
    return {
        "trace": trace_name,
        "workload": workload_name,
        "policy": policy_name,
        "total_kg": total / 1e3,
        "savings_fraction": 1.0 - ratio,
        "mean_deferral_hours": float(np.mean(deferral)),
        "max_deferral_hours": float(np.max(deferral)),
        "peak_load_kw": float(np.max(load_row)),
    }


def _stats_block(
    batch: "np.ndarray | object",
    baseline_totals: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-trace statistics for one (workload, policy) batch, vectorized.

    Axis-1 reductions over C-contiguous rows use the same pairwise
    kernels as the scalar path's 1-D reductions, keeping the two
    evaluators element-identical.
    """
    totals = np.sum(batch.grams, axis=1)
    deferral = batch.deferral_hours()
    # Zero-baseline rows (all-zero traces) report 0 savings, like the
    # scalar path.
    ratios = np.divide(
        totals,
        baseline_totals,
        out=np.ones_like(totals),
        where=baseline_totals > 0.0,
    )
    return (
        totals / 1e3,
        1.0 - ratios,
        np.mean(deferral, axis=1),
        np.max(deferral, axis=1),
        np.max(batch.load_kw, axis=1),
    )


def _scalar_arrays(
    result: ScheduleResult,
) -> tuple[list[BatchJob], np.ndarray, np.ndarray]:
    jobs = [placement.job for placement in result.placements]
    starts = np.array(
        [placement.start_hour for placement in result.placements], dtype=float
    )
    grams = np.array(
        [placement.carbon.grams for placement in result.placements]
    )
    return jobs, starts, grams


def _evaluate_chunk(payload: tuple, start: int, stop: int) -> Table:
    """Chunk kernel: traces ``[start, stop)`` of a policy evaluation.

    Statistics are per-trace (each trace carries its own prefix sums
    and carbon-agnostic baseline), so evaluating a contiguous slice of
    the trace axis reproduces exactly those rows of the monolithic
    table. Module-level so :func:`repro.exec.run_sharded` workers can
    import it by name.
    """
    trace_list, workload_list, policies, capacity_kw = payload
    return _evaluate_batched(
        trace_list[start:stop], workload_list, policies, capacity_kw
    )


def evaluate_policies(
    traces: "Sequence[IntensityTrace] | Mapping[str, IntensityTrace]",
    workloads: Sequence[WorkloadTrace],
    policies: Sequence[SchedulingPolicy] = DEFAULT_POLICIES,
    *,
    capacity_kw: float,
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: object = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: object = None,
) -> Table:
    """Evaluate every (trace, workload, policy) scenario, batched.

    Traces are resampled to the schedulers' hourly granularity,
    grouped by horizon, and stacked into matrices; each horizon
    group's prefix sums are computed once and shared across every
    (workload, policy) pair. Savings are measured against the
    carbon-agnostic schedule of the untightened job set on the same
    trace. Rows come back in (trace, workload, policy) order.
    ``jobs``/``chunk_size`` shard the *trace* axis through
    :func:`repro.exec.run_sharded`; results are element-identical for
    every configuration. The fault-tolerance knobs
    (``retries``/``timeout``/``on_error``/``checkpoint``) forward to
    the sharded driver; under ``on_error="skip"`` the return value
    becomes a ``(Table, FailureReport)`` pair covering the surviving
    trace chunks.
    """
    trace_list = _normalize_traces(traces)
    workload_list = _normalize_workloads(workloads)
    policy_list = _normalize_policies(policies)
    plan = ShardPlan.plan(len(trace_list), chunk_size, jobs)
    payload = (trace_list, workload_list, policy_list, capacity_kw)
    with active_recorder().span(
        "batch",
        fn="evaluate_policies",
        traces=len(trace_list),
        workloads=len(workload_list),
        policies=len(policy_list),
    ):
        return run_sharded(
            _evaluate_chunk,
            payload,
            plan,
            jobs=jobs,
            combine=Table.concat,
            retries=retries,
            timeout=timeout,
            on_error=on_error,
            checkpoint=checkpoint,
        )


def _evaluate_batched(
    trace_list: Sequence[IntensityTrace],
    workload_list: Sequence[WorkloadTrace],
    policies: Sequence[SchedulingPolicy],
    capacity_kw: float,
) -> Table:
    """The monolithic batched evaluation of one trace-axis chunk."""
    hourly = [trace.hourly_values() for trace in trace_list]
    groups: dict[int, list[int]] = {}
    for index, values in enumerate(hourly):
        groups.setdefault(values.shape[0], []).append(index)

    cells: dict[tuple[int, int, int], tuple] = {}
    for horizon, trace_indices in groups.items():
        matrix = np.vstack([hourly[index] for index in trace_indices])
        csum = prefix_sums(matrix)
        for w_index, workload in enumerate(workload_list):
            _check_span(trace_list[trace_indices[0]].name, workload, horizon)
            baseline = schedule_batch(
                workload.jobs,
                matrix,
                capacity_kw,
                carbon_aware=False,
                csum=csum,
            )
            baseline_totals = baseline.total_grams()
            for p_index, policy in enumerate(policies):
                if not policy.carbon_aware and policy.slack_hours is None:
                    batch = baseline
                else:
                    batch = schedule_batch(
                        policy.lower(workload.jobs),
                        matrix,
                        capacity_kw,
                        carbon_aware=policy.carbon_aware,
                        csum=csum,
                    )
                block = _stats_block(batch, baseline_totals)
                for row, trace_index in enumerate(trace_indices):
                    cells[(trace_index, w_index, p_index)] = tuple(
                        float(column[row]) for column in block
                    )

    stat_names = _COLUMNS[3:]
    keys = [
        (t, w, p)
        for t in range(len(trace_list))
        for w in range(len(workload_list))
        for p in range(len(policies))
    ]
    columns: dict[str, list] = {
        "trace": [trace_list[t].name for t, _, _ in keys],
        "workload": [workload_list[w].name for _, w, _ in keys],
        "policy": [policies[p].name for _, _, p in keys],
    }
    for offset, stat in enumerate(stat_names):
        columns[stat] = [cells[key][offset] for key in keys]
    return Table(columns)


def evaluate_policies_scalar(
    traces: "Sequence[IntensityTrace] | Mapping[str, IntensityTrace]",
    workloads: Sequence[WorkloadTrace],
    policies: Sequence[SchedulingPolicy] = DEFAULT_POLICIES,
    *,
    capacity_kw: float,
) -> Table:
    """The reference evaluator: one scalar scheduler call per scenario.

    Same contract and row order as :func:`evaluate_policies`; exists
    for the equivalence suite and the benchmark baseline.
    """
    trace_list = _normalize_traces(traces)
    workload_list = _normalize_workloads(workloads)
    policies = _normalize_policies(policies)

    records = []
    for trace in trace_list:
        values = trace.hourly_values()
        horizon = values.shape[0]
        for workload in workload_list:
            _check_span(trace.name, workload, horizon)
            baseline = schedule_carbon_agnostic(
                workload.jobs, values, capacity_kw
            )
            _, _, baseline_grams = _scalar_arrays(baseline)
            baseline_total = float(np.sum(baseline_grams))
            for policy in policies:
                if not policy.carbon_aware and policy.slack_hours is None:
                    result = baseline
                else:
                    scheduler = (
                        schedule_carbon_aware
                        if policy.carbon_aware
                        else schedule_carbon_agnostic
                    )
                    result = scheduler(
                        policy.lower(workload.jobs), values, capacity_kw
                    )
                jobs, starts, grams = _scalar_arrays(result)
                records.append(
                    _stats_row(
                        trace.name,
                        workload.name,
                        policy.name,
                        jobs,
                        starts,
                        grams,
                        result.load_profile(horizon),
                        baseline_total,
                    )
                )
    return Table({name: [r[name] for r in records] for name in _COLUMNS})
