"""Batched scheduling kernel: one job loop, every trace at once.

The scalar schedulers in :mod:`repro.datacenter.scheduler` place one
job set against one intensity series. Evaluating a policy across a
catalog of traces repeats the identical control flow with different
numbers — exactly the struct-of-arrays shape the fleet and
provisioning kernels exploit. ``schedule_batch`` runs the same greedy
placement over a ``(traces, hours)`` intensity matrix: prefix sums,
sliding-window load maxima, masked argmins — all with a trace axis in
front, so the per-job Python loop runs once regardless of how many
traces are being evaluated.

The kernel *shares* the scalar reference's primitives (prefix sums,
sliding-window load maxima, ordering keys, feasible-start ranges —
all axis-generic) and mirrors the rest op for op — same ``capacity +
1e-9`` tolerance, same first-minimum tie-break — so the equivalence
suite can pin placements and carbon element-identical, not merely
close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datacenter.scheduler import (
    BatchJob,
    JobPlacement,
    ScheduleResult,
    _agnostic_order,
    _aware_order,
    _feasible_starts,
    _prefix_sum,
    _window_load_max,
)
from ..errors import SimulationError
from ..units import Carbon

__all__ = ["BatchSchedule", "prefix_sums", "schedule_batch"]


def prefix_sums(intensity_rows: np.ndarray) -> np.ndarray:
    """Per-trace intensity prefix sums, shareable across evaluations.

    ``result[t, k]`` is trace ``t``'s intensity summed over hours
    ``[0, k)``; any window's carbon is one subtraction. Computing this
    once per trace and passing it to every :func:`schedule_batch` call
    is the evaluator's cross-product economy. Delegates to the scalar
    scheduler's ``_prefix_sum`` (which reduces along the last axis),
    so both paths share one implementation.
    """
    intensity = np.asarray(intensity_rows, dtype=float)
    if intensity.ndim != 2:
        raise SimulationError(
            f"intensity rows must be (traces, hours), got shape {intensity.shape}"
        )
    return _prefix_sum(intensity)


@dataclass(frozen=True, eq=False)
class BatchSchedule:
    """Placements for one job set across many traces.

    ``jobs`` is the placement (processing) order; ``starts`` and
    ``grams`` are ``(traces, jobs)`` arrays aligned with it;
    ``load_kw`` is each trace's committed hourly power.
    """

    jobs: tuple[BatchJob, ...]
    starts: np.ndarray
    grams: np.ndarray
    load_kw: np.ndarray

    @property
    def num_traces(self) -> int:
        return int(self.starts.shape[0])

    def total_grams(self) -> np.ndarray:
        """Per-trace schedule carbon (grams)."""
        return np.sum(self.grams, axis=1)

    def peak_load_kw(self) -> np.ndarray:
        """Per-trace peak committed power."""
        return np.max(self.load_kw, axis=1)

    def deferral_hours(self) -> np.ndarray:
        """``(traces, jobs)`` hours each job waited past its arrival."""
        arrivals = np.array([job.arrival_hour for job in self.jobs], dtype=float)
        return self.starts - arrivals

    def result_for(self, trace_index: int) -> ScheduleResult:
        """Reconstruct one trace's schedule as the scalar result type."""
        if not 0 <= trace_index < self.num_traces:
            raise SimulationError(
                f"trace index {trace_index} outside 0..{self.num_traces - 1}"
            )
        placements = tuple(
            JobPlacement(
                job,
                int(self.starts[trace_index, position]),
                Carbon.from_grams(float(self.grams[trace_index, position])),
            )
            for position, job in enumerate(self.jobs)
        )
        return ScheduleResult(placements)


def _validate_batch(
    jobs: Sequence[BatchJob], horizon: int, capacity_kw: float
) -> None:
    if capacity_kw <= 0.0:
        raise SimulationError("cluster capacity must be positive")
    for job in jobs:
        if job.power_kw > capacity_kw:
            raise SimulationError(f"{job.name}: power exceeds cluster capacity")
        if job.arrival_hour + job.duration_hours > horizon:
            raise SimulationError(f"{job.name}: cannot finish within the horizon")


def schedule_batch(
    jobs: Sequence[BatchJob],
    intensity_rows: np.ndarray,
    capacity_kw: float,
    *,
    carbon_aware: bool = True,
    csum: np.ndarray | None = None,
) -> BatchSchedule:
    """Place one job set against every trace row simultaneously.

    With ``carbon_aware=True`` this is the greedy most-energy-first
    scheduler (each job takes its cheapest feasible start per trace);
    otherwise the earliest-feasible-start baseline. Pass a precomputed
    ``csum`` from :func:`prefix_sums` to share the per-trace prefix
    sums across many calls.
    """
    intensity = np.asarray(intensity_rows, dtype=float)
    if intensity.ndim == 1:
        intensity = intensity[np.newaxis, :]
    if intensity.ndim != 2:
        raise SimulationError(
            f"intensity rows must be (traces, hours), got shape {intensity.shape}"
        )
    num_traces, horizon = intensity.shape
    _validate_batch(jobs, horizon, capacity_kw)
    if csum is None:
        csum = prefix_sums(intensity)
    elif csum.shape != (num_traces, horizon + 1):
        raise SimulationError(
            f"prefix sums shape {csum.shape} does not match "
            f"({num_traces}, {horizon + 1})"
        )

    ordered = tuple(
        sorted(jobs, key=_aware_order if carbon_aware else _agnostic_order)
    )
    rows = np.arange(num_traces)
    load = np.zeros((num_traces, horizon))
    starts_out = np.zeros((num_traces, len(ordered)), dtype=np.int64)
    grams_out = np.zeros((num_traces, len(ordered)))

    for position, job in enumerate(ordered):
        candidates = _feasible_starts(job, horizon)
        if len(candidates) == 0:
            raise SimulationError(f"{job.name}: no feasible slot under capacity")
        window_max = _window_load_max(load, job.duration_hours)
        feasible = (
            window_max[:, candidates.start : candidates.stop] + job.power_kw
            <= capacity_kw + 1e-9
        )
        duration = job.duration_hours
        if carbon_aware:
            window_grams = (
                csum[:, candidates.start + duration : candidates.stop + duration]
                - csum[:, candidates.start : candidates.stop]
            ) * job.power_kw
            masked = np.where(feasible, window_grams, np.inf)
            # First minimum = earliest clean start, like the scalar path.
            best = np.argmin(masked, axis=1)
            chosen_ok = feasible[rows, best]
            grams = masked[rows, best]
        else:
            best = np.argmax(feasible, axis=1)  # first feasible start
            chosen_ok = feasible[rows, best]
            start = candidates.start + best
            grams = (csum[rows, start + duration] - csum[rows, start]) * job.power_kw
        if not chosen_ok.all():
            bad = int(np.argmin(chosen_ok))
            raise SimulationError(
                f"{job.name}: no feasible slot under capacity "
                f"(trace row {bad})"
            )
        start = candidates.start + best
        for offset in range(duration):
            load[rows, start + offset] += job.power_kw
        starts_out[:, position] = start
        grams_out[:, position] = grams

    return BatchSchedule(ordered, starts_out, grams_out, load)
