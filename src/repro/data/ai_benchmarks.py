"""Figure 8 inputs: MobileNet v1 throughput vs manufacturing footprint.

Each point pairs a phone's MobileNet v1 inference throughput (images
per second) with the manufacturing portion of its life-cycle footprint.
The paper states four anchors exactly (iPhone X, iPhone 11, iPhone 11
Pro, Pixel 3a); the rest are estimated from the figure. Manufacturing
masses are consistent with :mod:`repro.data.devices`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DataValidationError

__all__ = ["AIBenchmarkPoint", "AI_BENCHMARK_POINTS"]


@dataclass(frozen=True, slots=True)
class AIBenchmarkPoint:
    """One device in the performance-vs-carbon scatter."""

    product: str
    vendor: str
    year: int
    throughput_ips: float
    manufacturing_kg: float
    provenance: str = "estimated"

    def __post_init__(self) -> None:
        if self.throughput_ips <= 0.0:
            raise DataValidationError(f"{self.product}: throughput must be positive")
        if self.manufacturing_kg <= 0.0:
            raise DataValidationError(
                f"{self.product}: manufacturing footprint must be positive"
            )


AI_BENCHMARK_POINTS: tuple[AIBenchmarkPoint, ...] = (
    AIBenchmarkPoint("honor_5c", "huawei", 2016, 7.0, 19.3),
    AIBenchmarkPoint("iphone_6s", "apple", 2015, 12.0, 33.5),
    AIBenchmarkPoint("iphone_7", "apple", 2016, 17.0, 37.5),
    AIBenchmarkPoint("honor_8_lite", "huawei", 2017, 9.0, 24.0),
    AIBenchmarkPoint("pixel_2", "google", 2017, 14.0, 39.7),
    AIBenchmarkPoint("iphone_x", "apple", 2017, 35.0, 63.0, provenance="reported"),
    AIBenchmarkPoint("iphone_xr", "apple", 2018, 45.0, 50.3),
    AIBenchmarkPoint("pixel_3", "google", 2018, 18.0, 44.8),
    AIBenchmarkPoint("pixel_3a", "google", 2019, 20.0, 45.0, provenance="reported"),
    AIBenchmarkPoint("iphone_11", "apple", 2019, 70.0, 60.0, provenance="reported"),
    AIBenchmarkPoint("iphone_11_pro", "apple", 2019, 75.0, 66.0, provenance="reported"),
)
