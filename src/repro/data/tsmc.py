"""TSMC 12-inch-wafer carbon breakdown (Figure 14 inputs).

The paper states two hard anchors from TSMC's CSR report: energy
accounts for "over 63%" of per-wafer emissions and PFCs/chemicals/gases
for "nearly 30%". The component shares below satisfy both; the absolute
per-wafer total is an estimate consistent with the 16nm-class node
coefficients in :mod:`repro.fab.process` under Taiwan's grid.
"""

from __future__ import annotations

from ..fab.wafer import WaferFootprintModel
from ..units import Carbon, Energy
from .grids import TAIWAN_GRID

__all__ = [
    "TSMC_WAFER_SHARES",
    "TSMC_WAFER_TOTAL",
    "TSMC_3NM_FAB_ANNUAL_ENERGY",
    "TSMC_RENEWABLE_TARGET_2025",
    "tsmc_wafer_model",
]

#: Component shares of per-wafer carbon (sum to 1). Energy 63% and
#: process gases 15+12+3 = 30% are the paper's anchors.
TSMC_WAFER_SHARES: dict[str, float] = {
    "energy": 0.63,
    "pfc_diffusive": 0.15,
    "chemicals_gases": 0.12,
    "bulk_gases": 0.03,
    "raw_wafers": 0.04,
    "other": 0.03,
}

#: Estimated total emissions per processed 300 mm wafer.
TSMC_WAFER_TOTAL = Carbon.kg(780.0)

#: Paper: a forthcoming 3 nm fab may consume up to 7.7 billion kWh/yr.
TSMC_3NM_FAB_ANNUAL_ENERGY = Energy.kwh(7.7e9)

#: Paper: renewable energy will cover 20% of fab electricity by 2025.
TSMC_RENEWABLE_TARGET_2025 = 0.20


def tsmc_wafer_model() -> WaferFootprintModel:
    """The Figure 14 baseline model (reported shares, Taiwan grid)."""
    return WaferFootprintModel.from_reported_shares(
        shares=TSMC_WAFER_SHARES,
        total=TSMC_WAFER_TOTAL,
        fab_intensity=TAIWAN_GRID.intensity,
    )
