"""Curated datasets behind every experiment.

Values stated in the paper (or in the public reports it cites) are
encoded exactly and tagged ``provenance="reported"``; values the paper
only shows graphically are estimated from its charts and tagged
``provenance="estimated"``. Every experiment records which anchors it
reproduces exactly in EXPERIMENTS.md.
"""

from .energy_sources import ENERGY_SOURCES, source_by_name
from .grids import GRID_REGIONS, grid_by_name, US_GRID, WORLD_GRID, TAIWAN_GRID
from .devices import DEVICE_LCAS, device_by_name, devices_by_vendor, family
from .ai_benchmarks import AI_BENCHMARK_POINTS
from .corporate import (
    APPLE_2019_BREAKDOWN,
    facebook_series,
    google_series,
    FACEBOOK_SCOPE3_2019,
    INTEL_BREAKDOWN,
    AMD_BREAKDOWN,
)
from .tsmc import TSMC_WAFER_SHARES, TSMC_WAFER_TOTAL, tsmc_wafer_model
from .ict import ICT_ANCHORS, GLOBAL_DEMAND_ANCHORS
from .workloads import CNN_MODELS, cnn_by_name
from .measurements import (
    PIXEL3_MEASUREMENTS,
    PIXEL3_IC_CAPEX,
    measurement,
    MeasurementRecord,
)
from .macpro import MAC_PRO_CONFIGS
from .prineville import PRINEVILLE_SERIES

__all__ = [
    "ENERGY_SOURCES",
    "source_by_name",
    "GRID_REGIONS",
    "grid_by_name",
    "US_GRID",
    "WORLD_GRID",
    "TAIWAN_GRID",
    "DEVICE_LCAS",
    "device_by_name",
    "devices_by_vendor",
    "family",
    "AI_BENCHMARK_POINTS",
    "APPLE_2019_BREAKDOWN",
    "facebook_series",
    "google_series",
    "FACEBOOK_SCOPE3_2019",
    "INTEL_BREAKDOWN",
    "AMD_BREAKDOWN",
    "TSMC_WAFER_SHARES",
    "TSMC_WAFER_TOTAL",
    "tsmc_wafer_model",
    "ICT_ANCHORS",
    "GLOBAL_DEMAND_ANCHORS",
    "CNN_MODELS",
    "cnn_by_name",
    "PIXEL3_MEASUREMENTS",
    "PIXEL3_IC_CAPEX",
    "measurement",
    "MeasurementRecord",
    "MAC_PRO_CONFIGS",
    "PRINEVILLE_SERIES",
]
