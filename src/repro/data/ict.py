"""Figure 1 inputs: projected global ICT electricity use, 2010-2030.

Anchors follow Andrae & Edler (2015) as summarized by the paper: on the
optimistic trajectory ICT reaches ~7% of global electricity demand by
2030, on the expected trajectory ~20%; in 2015 ICT was ~5% of demand
and data centers alone ~1%. Segment values (TWh/yr) between anchors are
interpolated geometrically by :mod:`repro.analysis.projections`.
"""

from __future__ import annotations

__all__ = ["GLOBAL_DEMAND_ANCHORS", "ICT_ANCHORS", "SEGMENTS", "SCENARIOS"]

SEGMENTS = ("consumer_devices", "networking", "datacenter")
SCENARIOS = ("optimistic", "expected")

#: Global electricity demand (TWh/yr), gently rising.
GLOBAL_DEMAND_ANCHORS: dict[int, float] = {
    2010: 18500.0,
    2015: 19900.0,
    2020: 22000.0,
    2025: 24000.0,
    2030: 26000.0,
}

#: ICT electricity (TWh/yr) per scenario, segment, and anchor year.
#: 2015 totals ~5% of demand; 2030 totals hit the 7% / 20% anchors;
#: 2015 data centers ~1% of demand (the paper's "eclipsing nations").
ICT_ANCHORS: dict[str, dict[str, dict[int, float]]] = {
    "optimistic": {
        "consumer_devices": {2010: 380.0, 2015: 470.0, 2020: 520.0, 2025: 560.0, 2030: 590.0},
        "networking": {2010: 160.0, 2015: 300.0, 2020: 400.0, 2025: 500.0, 2030: 600.0},
        "datacenter": {2010: 150.0, 2015: 200.0, 2020: 330.0, 2025: 450.0, 2030: 630.0},
    },
    "expected": {
        "consumer_devices": {2010: 380.0, 2015: 500.0, 2020: 700.0, 2025: 1000.0, 2030: 1400.0},
        "networking": {2010: 160.0, 2015: 320.0, 2020: 650.0, 2025: 1200.0, 2030: 1800.0},
        "datacenter": {2010: 150.0, 2015: 220.0, 2020: 550.0, 2025: 1200.0, 2030: 2000.0},
    },
}
