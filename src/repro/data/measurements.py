"""Pixel 3 inference measurements (Figures 9 and 10 calibration).

The paper measured latency and power for four CNNs on a Google Pixel 3
(Snapdragon 845) across its CPU, GPU, and DSP with a Monsoon power
monitor. We have no Monsoon or Pixel 3; these records are the
calibration table for the :mod:`repro.mobile` simulators, chosen so the
paper's stated anchors come out exactly:

* latency: Inception v3 -> MobileNet v2 on CPU is 17x; MobileNet v2
  CPU -> DSP is 3.2x (Figure 9 annotations);
* energy: MobileNet v3 CPU -> DSP is 2.0x (Figure 9 / Takeaway 6);
* break-even images against the Pixel 3's integrated-circuit embodied
  carbon (22.4 kg, half of production) at the US grid (380 g/kWh):
  ResNet-50 CPU 200 M, Inception v3 CPU 150 M, MobileNet v3 CPU 5 B,
  MobileNet v3 DSP 10 B (Figure 10 top);
* break-even days: MobileNet v3 CPU 350, DSP ~1,200 (Figure 10
  bottom).

The paper's days panel implies a DSP power draw low enough that, with
energy fixed at CPU/2, DSP latency exceeds CPU latency for MobileNet
v3; we preserve the paper's break-even anchors and record the residual
tension in EXPERIMENTS.md. GPU cells are estimates for figure
completeness (the paper states no GPU anchors).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DataValidationError
from ..units import Energy, Power, Carbon

__all__ = [
    "MeasurementRecord",
    "PIXEL3_MEASUREMENTS",
    "PIXEL3_IC_CAPEX",
    "PIXEL3_IDLE_POWER_W",
    "measurement",
    "PROCESSORS",
]

#: Processor units on the Snapdragon 845 exercised by the paper.
PROCESSORS = ("cpu", "gpu", "dsp")

#: Embodied carbon of the Pixel 3's integrated circuits: half of the
#: 44.8 kg production stage (see repro.data.devices pixel_3 record).
PIXEL3_IC_CAPEX = Carbon.kg(22.4)

#: Display-off idle floor of the phone, used by the Monsoon simulator.
PIXEL3_IDLE_POWER_W = 0.35


@dataclass(frozen=True, slots=True)
class MeasurementRecord:
    """One (model, processor) cell of the measured table."""

    model: str
    processor: str
    latency_ms: float
    power_w: float
    provenance: str = "calibrated"

    def __post_init__(self) -> None:
        if self.processor not in PROCESSORS:
            raise DataValidationError(
                f"{self.model}: unknown processor {self.processor!r}"
            )
        if self.latency_ms <= 0.0 or self.power_w <= 0.0:
            raise DataValidationError(
                f"{self.model}/{self.processor}: latency and power must be positive"
            )

    @property
    def latency_s(self) -> float:
        return self.latency_ms / 1e3

    @property
    def power(self) -> Power:
        return Power.watts(self.power_w)

    @property
    def energy_per_inference(self) -> Energy:
        return self.power.energy_over(self.latency_s)

    @property
    def throughput_ips(self) -> float:
        return 1e3 / self.latency_ms


def _rec(model: str, processor: str, latency_ms: float, power_w: float,
         provenance: str = "calibrated") -> MeasurementRecord:
    return MeasurementRecord(model, processor, latency_ms, power_w, provenance)


#: The measured table. Energy per inference (J) = power x latency.
PIXEL3_MEASUREMENTS: tuple[MeasurementRecord, ...] = (
    # ResNet-50: E_cpu = 1.0610 J -> 200 M images break-even.
    _rec("resnet50", "cpu", 300.00, 3.537),
    _rec("resnet50", "gpu", 95.00, 4.00, provenance="estimated"),
    _rec("resnet50", "dsp", 70.00, 3.00, provenance="estimated"),
    # Inception v3: E_cpu = 1.4145 J -> 150 M images break-even;
    # CPU latency 17x MobileNet v2's 20 ms.
    _rec("inception_v3", "cpu", 340.00, 4.160),
    _rec("inception_v3", "gpu", 110.00, 4.20, provenance="estimated"),
    _rec("inception_v3", "dsp", 82.00, 3.10, provenance="estimated"),
    # MobileNet v2: CPU 20 ms (17x vs Inception), DSP 6.25 ms (3.2x).
    _rec("mobilenet_v2", "cpu", 20.00, 3.250),
    _rec("mobilenet_v2", "gpu", 9.50, 3.30, provenance="estimated"),
    _rec("mobilenet_v2", "dsp", 6.25, 3.00),
    # MobileNet v3: E_cpu = 0.042432 J -> 5 B images, 350 days;
    # E_dsp = E_cpu / 2 -> 10 B images, ~1,198 days.
    _rec("mobilenet_v3", "cpu", 6.0426, 7.0222),
    _rec("mobilenet_v3", "gpu", 5.50, 5.00, provenance="estimated"),
    _rec("mobilenet_v3", "dsp", 10.3493, 2.0500),
)


def measurement(model: str, processor: str) -> MeasurementRecord:
    """Look up one cell of the measured table."""
    for record in PIXEL3_MEASUREMENTS:
        if record.model == model and record.processor == processor:
            return record
    raise KeyError(f"no measurement for {model!r} on {processor!r}")
