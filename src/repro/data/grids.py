"""Table III: average carbon intensity of electricity by geography.

Values are the paper's exactly. The paper's mobile break-even analysis
(Figure 10) uses the United States row (380 g/kWh); the TSMC analysis
implicitly sits on the Taiwan row.
"""

from __future__ import annotations

from ..core.intensity import GridRegion
from ..units import CarbonIntensity

__all__ = [
    "GRID_REGIONS",
    "grid_by_name",
    "region_names",
    "US_GRID",
    "WORLD_GRID",
    "TAIWAN_GRID",
]


def _region(name: str, g_per_kwh: float, dominant: str) -> GridRegion:
    return GridRegion(
        name=name,
        intensity=CarbonIntensity.g_per_kwh(g_per_kwh),
        dominant_source=dominant,
    )


#: Table III rows, ordered as in the paper (dirtiest first).
GRID_REGIONS: tuple[GridRegion, ...] = (
    _region("india", 725.0, "coal/gas"),
    _region("australia", 597.0, "coal"),
    _region("taiwan", 583.0, "coal/gas"),
    _region("singapore", 495.0, "gas"),
    _region("united_states", 380.0, "coal/gas"),
    _region("world", 301.0, ""),
    _region("europe", 295.0, ""),
    _region("brazil", 82.0, "wind/hydropower"),
    _region("iceland", 28.0, "hydropower"),
)


def region_names() -> list[str]:
    """Every Table III region name, dirtiest grid first.

    The traces subsystem builds one duck-curve family per entry, so
    this list is also the catalog of bundled profile roots.
    """
    return [region.name for region in GRID_REGIONS]


def grid_by_name(name: str) -> GridRegion:
    """Look up a Table III grid by name."""
    for region in GRID_REGIONS:
        if region.name == name:
            return region
    known = [region.name for region in GRID_REGIONS]
    raise KeyError(f"unknown grid region {name!r}; have {known}")


US_GRID = grid_by_name("united_states")
WORLD_GRID = grid_by_name("world")
TAIWAN_GRID = grid_by_name("taiwan")
