"""Figure 2 (left): Facebook's Prineville data center, 2013-2019.

Energy consumption rose monotonically as the facility expanded while
the carbon footprint of purchased energy began falling in 2017 and
reached nearly zero by 2019 as the site converted to renewable supply.
Values are estimated from the figure (the paper gives no axis
numbers); the *shape* — monotone energy growth, carbon peak around
2016-2017, near-zero 2019 — is the reproduced claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DataValidationError
from ..units import Carbon, Energy

__all__ = ["PrinevilleYear", "PRINEVILLE_SERIES"]


@dataclass(frozen=True, slots=True)
class PrinevilleYear:
    """One year of the Prineville facility's operation."""

    year: int
    energy: Energy
    purchased_energy_carbon: Carbon
    renewable_coverage: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.renewable_coverage <= 1.0:
            raise DataValidationError(
                f"{self.year}: renewable coverage must be in [0, 1]"
            )


def _year(year: int, gwh: float, kilotonnes: float, coverage: float) -> PrinevilleYear:
    return PrinevilleYear(
        year=year,
        energy=Energy.gwh(gwh),
        purchased_energy_carbon=Carbon.kilotonnes(kilotonnes),
        renewable_coverage=coverage,
    )


PRINEVILLE_SERIES: tuple[PrinevilleYear, ...] = (
    _year(2013, 160.0, 70.0, 0.05),
    _year(2014, 200.0, 85.0, 0.08),
    _year(2015, 250.0, 100.0, 0.12),
    _year(2016, 310.0, 112.0, 0.20),
    _year(2017, 400.0, 105.0, 0.42),
    _year(2018, 520.0, 48.0, 0.80),
    _year(2019, 650.0, 3.0, 0.99),
)
