"""Corporate sustainability-report data (Figures 2, 5, 11, 12, 13).

Anchors stated in the paper are exact:

* Apple 2019: 25 Mt CO2e total; manufacturing 74%, product use 19%,
  integrated circuits ~33% of the total; life cycle >98% (Figure 5).
* Facebook 2019: Scope 3 = 5.8 Mt vs Scope 2 (market) = 252 kt — a 23x
  ratio; Scope 3 split 48% capital goods / 39% purchased goods / 10%
  travel / 3% other (Figures 11, 12).
* Facebook 2018: opex:capex is 65:35 on location-based accounting and
  18:82 on market-based accounting (Figure 2, bottom-right pies).
* Google 2018: Scope 3 = 14.0 Mt vs Scope 2 (market) = 684 kt (~21x);
  Scope 3 rose ~5x over 2017 on a disclosure change while location
  Scope 2 rose only ~30% (Figure 11).
* Intel: ~60% of life-cycle emissions from hardware use on the US
  grid; only 9.7% of fab energy is non-renewable. AMD: ~45% from
  hardware use (Figure 13).

Interstitial years are estimated from the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.ghg import GHGInventory, OpexCapex, ReportSeries, Scope
from ..errors import DataValidationError
from ..units import Carbon
from .grids import US_GRID, GridRegion

__all__ = [
    "CategoryShare",
    "APPLE_2019_TOTAL",
    "APPLE_2019_BREAKDOWN",
    "facebook_series",
    "google_series",
    "FACEBOOK_SCOPE3_2019",
    "LifecycleBreakdown",
    "INTEL_BREAKDOWN",
    "AMD_BREAKDOWN",
    "INTEL_NONRENEWABLE_FAB_ENERGY_SHARE",
]


# ----------------------------------------------------------------------
# Apple 2019 (Figure 5)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CategoryShare:
    """One wedge of a corporate-footprint pie."""

    group: str
    category: str
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise DataValidationError(
                f"{self.group}/{self.category}: fraction outside [0, 1]"
            )


APPLE_2019_TOTAL = Carbon.megatonnes(25.0)

#: Fractions of Apple's 2019 corporate footprint; they sum to 1.
APPLE_2019_BREAKDOWN: tuple[CategoryShare, ...] = (
    CategoryShare("manufacturing", "integrated_circuits", 0.330),
    CategoryShare("manufacturing", "boards_flexes", 0.100),
    CategoryShare("manufacturing", "aluminum", 0.090),
    CategoryShare("manufacturing", "displays", 0.070),
    CategoryShare("manufacturing", "electronics", 0.060),
    CategoryShare("manufacturing", "steel", 0.030),
    CategoryShare("manufacturing", "assembly", 0.030),
    CategoryShare("manufacturing", "other_manufacturing", 0.030),
    CategoryShare("product_use", "ios_devices", 0.110),
    CategoryShare("product_use", "macos_active", 0.040),
    CategoryShare("product_use", "macos_idle", 0.020),
    CategoryShare("product_use", "other_use", 0.020),
    CategoryShare("product_transport", "product_transport", 0.050),
    CategoryShare("corporate_facilities", "corporate_facilities", 0.012),
    CategoryShare("recycling", "recycling", 0.005),
    CategoryShare("business_travel", "business_travel", 0.003),
)


# ----------------------------------------------------------------------
# Facebook and Google scope series (Figure 11)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class _ScopeYear:
    """Kilotonnes per scope for one year, plus a Scope 3 category split."""

    year: int
    scope1_kt: float
    scope2_location_kt: float
    scope2_market_kt: float
    scope3_kt: float
    scope3_split: Mapping[str, float]


#: Generic Scope 3 category split used where the paper gives none.
_DEFAULT_SCOPE3_SPLIT: dict[str, float] = {
    "capital_goods": 0.50,
    "purchased_goods": 0.35,
    "business_travel": 0.12,
    "other": 0.03,
}

#: Facebook 2019 Scope 3 split (Figure 12).
FACEBOOK_SCOPE3_2019: dict[str, float] = {
    "capital_goods": 0.48,
    "purchased_goods": 0.39,
    "business_travel": 0.10,
    "other": 0.03,
}

_FACEBOOK_YEARS: tuple[_ScopeYear, ...] = (
    _ScopeYear(2014, 20.0, 620.0, 450.0, 400.0, _DEFAULT_SCOPE3_SPLIT),
    _ScopeYear(2015, 25.0, 760.0, 480.0, 500.0, _DEFAULT_SCOPE3_SPLIT),
    _ScopeYear(2016, 30.0, 980.0, 450.0, 650.0, _DEFAULT_SCOPE3_SPLIT),
    _ScopeYear(2017, 35.0, 1300.0, 300.0, 800.0, _DEFAULT_SCOPE3_SPLIT),
    # 2018 tuned to the Figure 2 pies: 65/35 location-based,
    # 18/82 market-based (travel and commuting excluded as "other").
    _ScopeYear(
        2018, 40.0, 1631.0, 158.0, 1010.0,
        {
            "capital_goods": 520.0 / 1010.0,
            "purchased_goods": 380.0 / 1010.0,
            "business_travel": 80.0 / 1010.0,
            "employee_commuting": 30.0 / 1010.0,
        },
    ),
    _ScopeYear(2019, 50.0, 1900.0, 252.0, 5800.0, FACEBOOK_SCOPE3_2019),
)

_GOOGLE_YEARS: tuple[_ScopeYear, ...] = (
    _ScopeYear(2013, 30.0, 1800.0, 1500.0, 2000.0, _DEFAULT_SCOPE3_SPLIT),
    _ScopeYear(2014, 35.0, 2100.0, 1200.0, 2200.0, _DEFAULT_SCOPE3_SPLIT),
    _ScopeYear(2015, 40.0, 2500.0, 1000.0, 2400.0, _DEFAULT_SCOPE3_SPLIT),
    _ScopeYear(2016, 45.0, 2800.0, 850.0, 2600.0, _DEFAULT_SCOPE3_SPLIT),
    _ScopeYear(2017, 50.0, 3100.0, 720.0, 2800.0, _DEFAULT_SCOPE3_SPLIT),
    _ScopeYear(2018, 60.0, 4000.0, 684.0, 14000.0, _DEFAULT_SCOPE3_SPLIT),
)


def _build_inventory(organization: str, data: _ScopeYear) -> GHGInventory:
    inventory = GHGInventory(organization, data.year)
    inventory.add(
        Scope.SCOPE1, "facility_fuel_and_refrigerants",
        Carbon.kilotonnes(data.scope1_kt),
    )
    inventory.add(
        Scope.SCOPE2_LOCATION, "purchased_electricity",
        Carbon.kilotonnes(data.scope2_location_kt),
    )
    inventory.add(
        Scope.SCOPE2_MARKET, "purchased_electricity",
        Carbon.kilotonnes(data.scope2_market_kt),
    )
    split_total = sum(data.scope3_split.values())
    if abs(split_total - 1.0) > 1e-6:
        raise DataValidationError(
            f"{organization} {data.year}: scope 3 split sums to {split_total}"
        )
    for category, fraction in data.scope3_split.items():
        classification = None
        if category == "other":
            # Figure 12 reports "other" outside capital/purchased goods;
            # keep it out of the capex bucket.
            classification = OpexCapex.OTHER
        inventory.add(
            Scope.SCOPE3_UPSTREAM,
            category,
            Carbon.kilotonnes(data.scope3_kt * fraction),
            classification=classification,
        )
    return inventory


def facebook_series() -> ReportSeries:
    """Facebook's 2014-2019 GHG inventories (Figure 11, top panel)."""
    return ReportSeries(
        "facebook",
        [_build_inventory("facebook", year) for year in _FACEBOOK_YEARS],
    )


def google_series() -> ReportSeries:
    """Google's 2013-2018 GHG inventories (Figure 11, bottom panel)."""
    return ReportSeries(
        "google",
        [_build_inventory("google", year) for year in _GOOGLE_YEARS],
    )


# ----------------------------------------------------------------------
# Intel and AMD hardware life cycles (Figure 13)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LifecycleBreakdown:
    """A vendor's reported life-cycle category split.

    ``use_category`` names the category that scales with the energy
    source powering the hardware; everything else is held fixed when
    Figure 13 sweeps grids.
    """

    name: str
    categories: Mapping[str, float]
    use_category: str
    baseline_grid: GridRegion

    def __post_init__(self) -> None:
        total = sum(self.categories.values())
        if abs(total - 1.0) > 1e-6:
            raise DataValidationError(
                f"{self.name}: category fractions sum to {total}, expected 1"
            )
        if self.use_category not in self.categories:
            raise DataValidationError(
                f"{self.name}: use category {self.use_category!r} not present"
            )
        object.__setattr__(self, "categories", dict(self.categories))

    @property
    def use_fraction(self) -> float:
        return self.categories[self.use_category]


INTEL_BREAKDOWN = LifecycleBreakdown(
    name="intel",
    categories={
        "hw_use": 0.60,
        "raw_materials": 0.13,
        "direct_emission": 0.10,
        "indirect_emission": 0.05,
        "renewable_energy_generation": 0.02,
        "hw_transport": 0.04,
        "travel": 0.03,
        "other": 0.03,
    },
    use_category="hw_use",
    baseline_grid=US_GRID,
)

AMD_BREAKDOWN = LifecycleBreakdown(
    name="amd",
    categories={
        "hw_use": 0.45,
        "raw_materials_manufacturing": 0.38,
        "indirect_emission": 0.08,
        "hw_transport": 0.04,
        "travel": 0.05,
    },
    use_category="hw_use",
    baseline_grid=US_GRID,
)

#: Paper: only 9.7% of the energy consumed by Intel fabs is
#: non-renewable.
INTEL_NONRENEWABLE_FAB_ENERGY_SHARE = 0.097
