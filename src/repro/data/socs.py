"""Mobile SoC catalog: die sizes and nodes for the phones we model.

Die areas are the published teardown figures; nodes are the announced
processes. ``companion_die_area_mm2`` aggregates the modem, RF
front-end, PMIC, and other logic dies on the board, and
``legacy_die_area_mm2`` the analog/sensor content on mature nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DataValidationError

__all__ = ["SoCRecord", "SOC_CATALOG", "soc_by_product"]


@dataclass(frozen=True, slots=True)
class SoCRecord:
    """Silicon content of one phone, for the embodied model."""

    product: str
    soc_name: str
    node_name: str
    die_area_mm2: float
    companion_die_area_mm2: float
    legacy_die_area_mm2: float
    dram_gb: float
    nand_gb: float

    def __post_init__(self) -> None:
        if self.die_area_mm2 <= 0.0:
            raise DataValidationError(f"{self.product}: die area must be positive")
        for field_name in (
            "companion_die_area_mm2",
            "legacy_die_area_mm2",
            "dram_gb",
            "nand_gb",
        ):
            if getattr(self, field_name) < 0.0:
                raise DataValidationError(
                    f"{self.product}: {field_name} must be non-negative"
                )


SOC_CATALOG: tuple[SoCRecord, ...] = (
    SoCRecord("pixel_3", "snapdragon_845", "10nm", 94.0, 90.0, 120.0, 4.0, 64.0),
    SoCRecord("pixel_3a", "snapdragon_670", "10nm", 84.0, 80.0, 110.0, 4.0, 64.0),
    SoCRecord("iphone_x", "apple_a11", "10nm", 87.7, 100.0, 130.0, 3.0, 64.0),
    SoCRecord("iphone_xr", "apple_a12", "7nm", 83.3, 100.0, 130.0, 3.0, 64.0),
    SoCRecord("iphone_11", "apple_a13", "7nm", 98.5, 100.0, 130.0, 4.0, 64.0),
    SoCRecord("iphone_11_pro", "apple_a13", "7nm", 98.5, 110.0, 140.0, 4.0, 256.0),
)


def soc_by_product(product: str) -> SoCRecord:
    """Look up a phone's silicon record."""
    for record in SOC_CATALOG:
        if record.product == product:
            return record
    known = [record.product for record in SOC_CATALOG]
    raise KeyError(f"no SoC record for {product!r}; have {known}")
