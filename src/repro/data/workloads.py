"""Convolutional-network workload descriptors (Figures 8-10).

Compute/parameter figures are the commonly cited ImageNet 224x224
single-image numbers. ``gflops`` counts fused multiply-adds the way the
model zoo papers report them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DataValidationError

__all__ = ["CNNModel", "CNN_MODELS", "cnn_by_name"]


@dataclass(frozen=True, slots=True)
class CNNModel:
    """A convolutional network evaluated in the paper's case study."""

    name: str
    year: int
    params_millions: float
    gflops: float
    top1_accuracy: float
    input_resolution: int = 224

    def __post_init__(self) -> None:
        if self.params_millions <= 0.0 or self.gflops <= 0.0:
            raise DataValidationError(f"{self.name}: params and flops must be positive")
        if not 0.0 < self.top1_accuracy < 100.0:
            raise DataValidationError(f"{self.name}: accuracy must be a percentage")

    @property
    def model_bytes(self) -> float:
        """Approximate fp32 weight footprint in bytes."""
        return self.params_millions * 1e6 * 4.0


CNN_MODELS: tuple[CNNModel, ...] = (
    CNNModel("resnet50", 2015, 25.6, 4.10, 76.1),
    CNNModel("inception_v3", 2015, 23.8, 5.70, 78.8),
    CNNModel("mobilenet_v1", 2017, 4.2, 1.14, 70.6),
    CNNModel("mobilenet_v2", 2018, 3.5, 0.61, 72.0),
    CNNModel("mobilenet_v3", 2019, 5.4, 0.44, 75.2),
)


def cnn_by_name(name: str) -> CNNModel:
    """Look up a CNN descriptor by name."""
    for model in CNN_MODELS:
        if model.name == name:
            return model
    known = [model.name for model in CNN_MODELS]
    raise KeyError(f"unknown CNN model {name!r}; have {known}")
