"""Table IV: two Apple Mac Pro configurations.

The paper contrasts a base Mac Pro with a maxed configuration (dual
AMD Radeon Vega GPUs) to show manufacturing carbon scales with
hardware capability: 4x flops, 8x memory bandwidth, and 16x GPU memory
at a 2.7x higher manufacturing footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DataValidationError
from ..units import Carbon, Power

__all__ = ["MacProConfig", "MAC_PRO_CONFIGS"]


@dataclass(frozen=True, slots=True)
class MacProConfig:
    """One Table IV column."""

    name: str
    cpu_cores: int
    cpu_threads_per_core: int
    dram_gb: float
    storage_gb: float
    gpu_teraflops: float
    gpu_memory_bw_gbs: float
    system_tdp: Power
    manufacturing: Carbon

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0 or self.cpu_threads_per_core <= 0:
            raise DataValidationError(f"{self.name}: CPU shape must be positive")
        for field_name in ("dram_gb", "storage_gb", "gpu_teraflops", "gpu_memory_bw_gbs"):
            if getattr(self, field_name) <= 0.0:
                raise DataValidationError(f"{self.name}: {field_name} must be positive")


#: Table IV, values exactly as printed.
MAC_PRO_CONFIGS: tuple[MacProConfig, ...] = (
    MacProConfig(
        name="mac_pro_1",
        cpu_cores=8,
        cpu_threads_per_core=2,
        dram_gb=32.0,
        storage_gb=256.0,
        gpu_teraflops=6.2,
        gpu_memory_bw_gbs=256.0,
        system_tdp=Power.watts(310.0),
        manufacturing=Carbon.kg(700.0),
    ),
    MacProConfig(
        name="mac_pro_2",
        cpu_cores=28,
        cpu_threads_per_core=2,
        dram_gb=1536.0,
        storage_gb=4096.0,
        gpu_teraflops=28.4,
        gpu_memory_bw_gbs=2048.0,
        system_tdp=Power.watts(730.0),
        manufacturing=Carbon.kg(1900.0),
    ),
)
