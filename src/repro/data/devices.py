"""Consumer-device life-cycle assessments (Figures 2, 6, 7, 8).

Each record encodes a product's total life-cycle footprint and its
stage split. Anchors stated in the paper are exact:

* iPhone 3GS manufacturing 40% of life cycle, iPhone XR 75% (Fig. 7);
* iPhone 11 capex share 86% (Fig. 2) and manufacturing 60 kg (Fig. 8);
* iPhone 11 Pro manufacturing 66 kg, iPhone X 63 kg, Pixel 3a 45 kg
  (Fig. 8);
* Apple Watch Series 1 -> 5 manufacturing 60% -> 75%, iPad Gen 2 -> 7
  manufacturing 60% -> 75% with decreasing absolute totals (Fig. 7);
* Mac Pro production 700 kg (Table IV baseline configuration);
* Pixel 3 production such that integrated circuits (half of
  production, the paper's Figure 10 assumption) carry 22.4 kg CO2e.

Remaining values are estimated from the public vendor environmental
reports and the paper's charts and are tagged
``provenance="estimated"``.
"""

from __future__ import annotations

from ..core.lca import DeviceClass, LifeCycleStage, ProductLCA
from ..units import Carbon

__all__ = ["DEVICE_LCAS", "device_by_name", "devices_by_vendor", "family", "FAMILIES"]


def _lca(
    product: str,
    vendor: str,
    year: int,
    device_class: DeviceClass,
    total_kg: float,
    production: float,
    transport: float,
    use: float,
    end_of_life: float,
    lifetime_years: float = 3.0,
    components: dict[str, float] | None = None,
    provenance: str = "estimated",
) -> ProductLCA:
    return ProductLCA(
        product=product,
        vendor=vendor,
        year=year,
        device_class=device_class,
        total=Carbon.kg(total_kg),
        stage_fractions={
            LifeCycleStage.PRODUCTION: production,
            LifeCycleStage.TRANSPORT: transport,
            LifeCycleStage.USE: use,
            LifeCycleStage.END_OF_LIFE: end_of_life,
        },
        lifetime_years=lifetime_years,
        component_fractions=components or {},
        provenance=provenance,
    )


#: Component split of the Pixel 3 production stage. Integrated circuits
#: at one half is the paper's explicit Figure 10 assumption.
_PIXEL3_COMPONENTS = {
    "integrated_circuits": 0.50,
    "display": 0.12,
    "board_flexes": 0.10,
    "enclosure": 0.08,
    "battery": 0.06,
    "assembly": 0.07,
    "other": 0.07,
}

#: Component split of the iPhone 11 production stage (Fig. 5 flavor).
_IPHONE11_COMPONENTS = {
    "integrated_circuits": 0.44,
    "display": 0.12,
    "board_flexes": 0.10,
    "aluminum": 0.08,
    "electronics": 0.08,
    "steel": 0.04,
    "assembly": 0.06,
    "other": 0.08,
}


DEVICE_LCAS: tuple[ProductLCA, ...] = (
    # ----------------------------------------------------------------- iPhones
    _lca("iphone_3gs", "apple", 2009, DeviceClass.PHONE, 55.0,
         0.400, 0.080, 0.510, 0.010, provenance="reported"),
    _lca("iphone_4", "apple", 2010, DeviceClass.PHONE, 45.0,
         0.450, 0.070, 0.470, 0.010),
    _lca("iphone_4s", "apple", 2011, DeviceClass.PHONE, 55.0,
         0.500, 0.060, 0.430, 0.010),
    _lca("iphone_5s", "apple", 2013, DeviceClass.PHONE, 65.0,
         0.550, 0.060, 0.380, 0.010),
    _lca("iphone_6s", "apple", 2015, DeviceClass.PHONE, 54.0,
         0.620, 0.050, 0.320, 0.010),
    _lca("iphone_7", "apple", 2016, DeviceClass.PHONE, 56.0,
         0.670, 0.050, 0.270, 0.010),
    _lca("iphone_x", "apple", 2017, DeviceClass.PHONE, 84.0,
         0.750, 0.040, 0.200, 0.010, components=_IPHONE11_COMPONENTS),
    _lca("iphone_xr", "apple", 2018, DeviceClass.PHONE, 67.0,
         0.750, 0.040, 0.200, 0.010, provenance="reported"),
    _lca("iphone_11", "apple", 2019, DeviceClass.PHONE, 74.0,
         0.810, 0.040, 0.140, 0.010,
         components=_IPHONE11_COMPONENTS, provenance="reported"),
    _lca("iphone_11_pro", "apple", 2019, DeviceClass.PHONE, 80.0,
         0.825, 0.035, 0.130, 0.010),
    _lca("iphone_se_2", "apple", 2020, DeviceClass.PHONE, 57.0,
         0.780, 0.050, 0.160, 0.010),
    # ------------------------------------------------------------- Apple Watch
    _lca("watch_series_1", "apple", 2016, DeviceClass.WEARABLE, 29.0,
         0.600, 0.080, 0.310, 0.010, provenance="reported"),
    _lca("watch_series_2", "apple", 2016, DeviceClass.WEARABLE, 33.0,
         0.630, 0.070, 0.290, 0.010),
    _lca("watch_series_3", "apple", 2017, DeviceClass.WEARABLE, 28.0,
         0.670, 0.070, 0.250, 0.010),
    _lca("watch_series_4", "apple", 2018, DeviceClass.WEARABLE, 34.0,
         0.710, 0.060, 0.220, 0.010),
    _lca("watch_series_5", "apple", 2019, DeviceClass.WEARABLE, 36.0,
         0.750, 0.060, 0.180, 0.010, provenance="reported"),
    # ------------------------------------------------------------------- iPads
    _lca("ipad_gen2", "apple", 2012, DeviceClass.TABLET, 105.0,
         0.600, 0.050, 0.340, 0.010, provenance="reported"),
    _lca("ipad_gen3", "apple", 2012, DeviceClass.TABLET, 100.0,
         0.630, 0.050, 0.310, 0.010),
    _lca("ipad_gen5", "apple", 2017, DeviceClass.TABLET, 88.0,
         0.690, 0.050, 0.250, 0.010),
    _lca("ipad_gen6", "apple", 2018, DeviceClass.TABLET, 84.0,
         0.720, 0.050, 0.220, 0.010),
    _lca("ipad_gen7", "apple", 2019, DeviceClass.TABLET, 80.0,
         0.750, 0.050, 0.190, 0.010, provenance="reported"),
    _lca("ipad_air", "apple", 2019, DeviceClass.TABLET, 95.0,
         0.740, 0.050, 0.200, 0.010),
    _lca("ipad_pro_11", "apple", 2020, DeviceClass.TABLET, 110.0,
         0.760, 0.050, 0.180, 0.010),
    # ---------------------------------------------------------------- MacBooks
    _lca("macbook_air_13", "apple", 2020, DeviceClass.LAPTOP, 161.0,
         0.740, 0.050, 0.200, 0.010, lifetime_years=4.0),
    _lca("macbook_pro_13", "apple", 2020, DeviceClass.LAPTOP, 210.0,
         0.710, 0.050, 0.230, 0.010, lifetime_years=4.0),
    _lca("macbook_pro_16", "apple", 2019, DeviceClass.LAPTOP, 394.0,
         0.760, 0.040, 0.190, 0.010, lifetime_years=4.0),
    # ---------------------------------------------------------------- Desktops
    _lca("imac_21", "apple", 2019, DeviceClass.DESKTOP_WITH_DISPLAY, 600.0,
         0.500, 0.040, 0.450, 0.010, lifetime_years=4.0),
    _lca("mac_mini", "apple", 2018, DeviceClass.DESKTOP, 270.0,
         0.520, 0.050, 0.420, 0.010, lifetime_years=4.0),
    _lca("mac_pro", "apple", 2019, DeviceClass.DESKTOP, 1400.0,
         0.500, 0.030, 0.460, 0.010, lifetime_years=4.0, provenance="reported"),
    # ---------------------------------------------------------------- Speakers
    _lca("homepod", "apple", 2018, DeviceClass.SPEAKER, 120.0,
         0.400, 0.060, 0.530, 0.010),
    _lca("google_home", "google", 2016, DeviceClass.SPEAKER, 48.0,
         0.400, 0.070, 0.520, 0.010),
    _lca("google_home_mini", "google", 2017, DeviceClass.SPEAKER, 20.0,
         0.450, 0.080, 0.460, 0.010),
    _lca("google_home_hub", "google", 2018, DeviceClass.SPEAKER, 63.0,
         0.420, 0.070, 0.500, 0.010),
    # ----------------------------------------------------------- Google phones
    _lca("pixel_2", "google", 2017, DeviceClass.PHONE, 64.0,
         0.620, 0.050, 0.320, 0.010),
    _lca("pixel_2_xl", "google", 2017, DeviceClass.PHONE, 72.0,
         0.640, 0.050, 0.300, 0.010),
    _lca("pixel_3", "google", 2018, DeviceClass.PHONE, 70.0,
         0.640, 0.030, 0.320, 0.010,
         components=_PIXEL3_COMPONENTS, provenance="reported"),
    _lca("pixel_3_xl", "google", 2018, DeviceClass.PHONE, 78.0,
         0.660, 0.040, 0.290, 0.010),
    _lca("pixel_3a", "google", 2019, DeviceClass.PHONE, 62.0,
         0.726, 0.030, 0.240, 0.004, provenance="reported"),
    _lca("pixel_4", "google", 2019, DeviceClass.PHONE, 70.0,
         0.780, 0.040, 0.170, 0.010),
    _lca("pixelbook_go", "google", 2019, DeviceClass.LAPTOP, 181.0,
         0.750, 0.050, 0.190, 0.010, lifetime_years=4.0),
    # --------------------------------------------------------------- Microsoft
    _lca("surface_pro_6", "microsoft", 2018, DeviceClass.TABLET, 152.0,
         0.720, 0.050, 0.220, 0.010),
    _lca("surface_laptop_3", "microsoft", 2019, DeviceClass.LAPTOP, 176.0,
         0.740, 0.050, 0.200, 0.010, lifetime_years=4.0),
    _lca("surface_go", "microsoft", 2018, DeviceClass.TABLET, 113.0,
         0.720, 0.060, 0.210, 0.010),
    _lca("xbox_one_x", "microsoft", 2017, DeviceClass.GAME_CONSOLE, 1280.0,
         0.280, 0.040, 0.670, 0.010, lifetime_years=5.0),
    _lca("xbox_one_s", "microsoft", 2016, DeviceClass.GAME_CONSOLE, 862.0,
         0.300, 0.040, 0.650, 0.010, lifetime_years=5.0),
    # ------------------------------------------------------------------ Huawei
    _lca("honor_5c", "huawei", 2016, DeviceClass.PHONE, 35.0,
         0.550, 0.060, 0.380, 0.010),
    _lca("honor_8_lite", "huawei", 2017, DeviceClass.PHONE, 40.0,
         0.600, 0.060, 0.330, 0.010),
)


#: Generational families used by Figure 7, oldest to newest.
FAMILIES: dict[str, tuple[str, ...]] = {
    "iphone": (
        "iphone_3gs", "iphone_4", "iphone_4s", "iphone_5s", "iphone_6s",
        "iphone_7", "iphone_x", "iphone_xr",
    ),
    "apple_watch": (
        "watch_series_1", "watch_series_2", "watch_series_3",
        "watch_series_4", "watch_series_5",
    ),
    "ipad": (
        "ipad_gen2", "ipad_gen3", "ipad_gen5", "ipad_gen6", "ipad_gen7",
    ),
}


def device_by_name(product: str) -> ProductLCA:
    """Look up a device LCA record by product name."""
    for lca in DEVICE_LCAS:
        if lca.product == product:
            return lca
    raise KeyError(f"unknown device {product!r}")


def devices_by_vendor(vendor: str) -> list[ProductLCA]:
    """All device records from one vendor."""
    return [lca for lca in DEVICE_LCAS if lca.vendor == vendor]


def family(name: str) -> list[ProductLCA]:
    """Generation-ordered records of one product family (Figure 7)."""
    if name not in FAMILIES:
        raise KeyError(f"unknown family {name!r}; have {sorted(FAMILIES)}")
    return [device_by_name(product) for product in FAMILIES[name]]
