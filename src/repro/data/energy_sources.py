"""Table II: carbon intensity and energy-payback time of energy sources.

Values are the paper's exactly (g CO2e per kWh; payback in months).
Where the paper gives a range we store the midpoint and keep the range
in the record for reference.
"""

from __future__ import annotations

from ..core.intensity import EnergySource
from ..units import CarbonIntensity

__all__ = ["ENERGY_SOURCES", "source_by_name"]


def _source(
    name: str, g_per_kwh: float, payback_months: float | None, renewable: bool
) -> EnergySource:
    return EnergySource(
        name=name,
        intensity=CarbonIntensity.g_per_kwh(g_per_kwh),
        payback_months=payback_months,
        renewable=renewable,
    )


#: Table II rows, ordered as in the paper (dirtiest first).
ENERGY_SOURCES: tuple[EnergySource, ...] = (
    _source("coal", 820.0, 2.0, renewable=False),
    _source("gas", 490.0, 1.0, renewable=False),
    _source("biomass", 230.0, 12.0, renewable=True),
    _source("solar", 41.0, 36.0, renewable=True),
    _source("geothermal", 38.0, 72.0, renewable=True),
    _source("hydropower", 24.0, 24.0, renewable=True),
    _source("nuclear", 12.0, 2.0, renewable=False),
    _source("wind", 11.0, 12.0, renewable=True),
)


def source_by_name(name: str) -> EnergySource:
    """Look up a Table II source by name."""
    for source in ENERGY_SOURCES:
        if source.name == name:
            return source
    known = [source.name for source in ENERGY_SOURCES]
    raise KeyError(f"unknown energy source {name!r}; have {known}")
