"""Command-line interface: run and render the paper's experiments.

Usage::

    python -m repro list                 # experiment ids and titles
    python -m repro run fig10            # one experiment, full render
    python -m repro run all              # everything, check summary only
    python -m repro checks               # one-line pass/fail per artifact
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .experiments import EXPERIMENT_IDS, run_all, run_experiment
from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Chasing Carbon' (HPCA 2021)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiment ids and titles")

    run_parser = commands.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment", help="experiment id (fig01..fig14, tab01..tab04, "
        "ext01..ext04) or 'all'",
    )

    commands.add_parser("checks", help="pass/fail summary for every artifact")
    return parser


def _command_list() -> int:
    for experiment_id in EXPERIMENT_IDS:
        result = run_experiment(experiment_id)
        print(f"{experiment_id}  {result.title}")
    return 0


def _command_run(experiment: str) -> int:
    if experiment == "all":
        results = run_all()
        failures = 0
        for experiment_id, result in results.items():
            status = "ok" if result.all_checks_pass else "FAIL"
            print(f"{status:4s} {experiment_id}  ({len(result.checks)} checks)")
            failures += len(result.failed_checks())
        return 0 if failures == 0 else 1
    result = run_experiment(experiment)
    print(result.render())
    return 0 if result.all_checks_pass else 1


def _command_checks() -> int:
    results = run_all()
    total = sum(len(result.checks) for result in results.values())
    failing = [
        (experiment_id, check)
        for experiment_id, result in results.items()
        for check in result.failed_checks()
    ]
    print(f"{total} checks across {len(results)} experiments; "
          f"{len(failing)} failing")
    for experiment_id, check in failing:
        print(
            f"  {experiment_id} {check.name}: expected {check.expected:.4g}, "
            f"measured {check.measured:.4g}"
        )
    return 0 if not failing else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args.experiment)
        if args.command == "checks":
            return _command_checks()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")
