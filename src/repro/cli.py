"""Command-line interface: run and render the paper's experiments.

Usage::

    python -m repro list                 # experiment ids and titles
    python -m repro run fig10            # one experiment, full render
    python -m repro run all --parallel --jobs 4   # over a process pool
    python -m repro checks               # one-line pass/fail per artifact
    python -m repro sweep fleet_growth_lifetime   # a named scenario sweep
    python -m repro sweep fleet_growth_lifetime --jobs 4 --chunk-size 64
    python -m repro sweep fleet_growth_lifetime --draws 256 --seed 1 \
        --band capex_fraction_market   # quantile bands over a draw matrix
    python -m repro trace list           # bundled intensity profiles
    python -m repro trace show india     # one profile as an ASCII chart
    python -m repro trace eval           # batched policy evaluation

``run`` and ``sweep`` share a content-addressed on-disk result cache
(default ``~/.cache/repro``; override with ``--cache-dir``, disable
with ``--no-cache``), so repeated invocations warm-start: any source
edit to the ``repro`` package invalidates every cached entry.

Long runs survive trouble: ``--retries N`` re-runs chunks whose
workers raise or die, ``--timeout S`` bounds hung chunks (needs
``--jobs`` > 1), ``--on-error skip`` degrades to partial results plus
a failure report on stderr instead of aborting, and ``sweep --resume``
warm-starts an interrupted sweep from its chunk checkpoints —
recomputing only the unfinished chunks, bit-identically.

``run`` and ``sweep`` are observable: ``--trace-out PATH`` appends a
run-scoped JSONL trace (spans, chunk attempts, retries, cache and
pool events, worker peak RSS), ``--metrics`` prints the aggregated
metrics summary to stderr after the run, and ``repro stats PATH``
renders a recorded trace into per-phase latency/throughput/cache
tables. Telemetry never enters cache keys or results: a traced run is
bit-identical to an untraced one.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import Iterator, Sequence

from ._version import __version__
from .experiments import EXPERIMENT_IDS, experiment_titles, run_all, run_experiment
from .errors import ReproError

__all__ = ["main", "build_parser"]


def _experiment_help() -> str:
    """Derive the run-target help from the registry, so it can't rot."""
    first, last = EXPERIMENT_IDS[0], EXPERIMENT_IDS[-1]
    kinds = sorted({experiment_id[:-2] for experiment_id in EXPERIMENT_IDS})
    return (
        f"experiment id ({first}..{last}; prefixes: {', '.join(kinds)}) "
        "or 'all'"
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    from .scenarios import SWEEPS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Chasing Carbon' (HPCA 2021)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiment ids and titles")

    run_parser = commands.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help=_experiment_help())
    run_parser.add_argument(
        "--parallel",
        action="store_true",
        help="with 'all': run experiments over a process pool",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --parallel (default: cpu count)",
    )
    _add_fault_arguments(run_parser, unit="experiment")
    _add_cache_arguments(run_parser)
    _add_obs_arguments(run_parser)

    commands.add_parser("checks", help="pass/fail summary for every artifact")

    sweep_parser = commands.add_parser(
        "sweep", help="run a named scenario sweep on the batched kernels"
    )
    sweep_parser.add_argument(
        "sweep",
        choices=sorted(SWEEPS),
        help="sweep name: "
        + "; ".join(f"{name} ({spec.description})" for name, spec in SWEEPS.items()),
    )
    sweep_parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit the result table as GitHub-flavored markdown",
    )
    sweep_parser.add_argument(
        "--draws",
        type=int,
        default=None,
        metavar="N",
        help="run the distribution-tagged variant with N Monte Carlo "
        "draws per scenario; the result table carries mean/p05/p50/p95 "
        "columns",
    )
    sweep_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="draw-matrix seed for --draws (default: 0)",
    )
    sweep_parser.add_argument(
        "--band",
        metavar="METRIC",
        default=None,
        help="with --draws: also render METRIC's p5-p95 band across "
        "scenarios as a character chart",
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the sweep's scenario axis over N worker processes "
        "(default: 1, inline); results are identical for every N",
    )
    sweep_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="K",
        help="scenarios per chunk (bounds peak kernel memory; default: "
        "whole sweep inline, or one chunk per job with --jobs)",
    )
    _add_fault_arguments(sweep_parser, unit="chunk")
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help="warm-start from the chunk checkpoints an interrupted run "
        "of this sweep left in the cache; only unfinished chunks are "
        "recomputed and the result is bit-identical (needs the cache)",
    )
    _add_cache_arguments(sweep_parser)
    _add_obs_arguments(sweep_parser)

    serve_parser = commands.add_parser(
        "serve",
        help="serve scenario/portfolio/sweep requests over HTTP, "
        "micro-batching concurrent requests into single kernel calls",
    )
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8000,
        metavar="P",
        help="port to bind; 0 picks an ephemeral port (default: 8000)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per batched kernel call (default: 1, "
        "inline); per-request deadlines only cancel chunks when N > 1",
    )
    serve_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="K",
        help="scenarios per chunk inside a batch (default: planner's "
        "choice)",
    )
    serve_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry budget per chunk before a batch degrades (default: 0)",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk wall-clock cap inside a batch (needs --jobs > 1)",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        metavar="N",
        help="bounded admission queue depth; beyond it requests are "
        "shed with a structured 429 (default: 1024)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=1024,
        metavar="N",
        help="most requests one kernel call may answer (default: 1024)",
    )
    serve_parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="how long the dispatcher lingers so concurrent requests "
        "can join a batch (default: 5)",
    )
    serve_parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="answer every request with its own kernel call (the "
        "benchmark baseline; equivalent to --max-batch 1)",
    )
    serve_parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive infrastructure failures before the circuit "
        "breaker opens and batches degrade to inline skip-and-report "
        "execution (default: 3)",
    )
    serve_parser.add_argument(
        "--breaker-reset",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long an open breaker waits before a half-open probe "
        "(default: 30)",
    )
    serve_parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="SIGTERM drain budget: in-flight requests get this long "
        "to finish before a shutdown 503 (default: 30)",
    )
    _add_cache_arguments(serve_parser)
    _add_obs_arguments(serve_parser)

    stats_parser = commands.add_parser(
        "stats",
        help="render a --trace-out trace file into latency/cache tables",
    )
    stats_parser.add_argument(
        "trace",
        metavar="PATH",
        help="JSONL trace file written by 'repro run|sweep --trace-out'",
    )

    trace_parser = commands.add_parser(
        "trace",
        help="inspect bundled intensity traces and evaluate policies",
    )
    trace_parser.add_argument(
        "action",
        choices=("list", "show", "eval"),
        help="list profiles, show one profile's shape, or run the "
        "batched policy evaluation over the catalog",
    )
    trace_parser.add_argument(
        "profile",
        nargs="?",
        default=None,
        help="profile name for 'show' (see 'trace list')",
    )
    trace_parser.add_argument(
        "--hours",
        type=int,
        default=72,
        metavar="H",
        help="trace horizon in hours (default: 72; 'eval' needs >= 48)",
    )
    trace_parser.add_argument(
        "--capacity-kw",
        type=float,
        default=2500.0,
        metavar="KW",
        help="cluster power cap for 'eval' (default: 2500)",
    )
    trace_parser.add_argument(
        "--markdown",
        action="store_true",
        help="with 'eval': emit the result table as markdown",
    )
    return parser


def _add_fault_arguments(parser: argparse.ArgumentParser, *, unit: str) -> None:
    """The shared fault-tolerance flags of ``run`` and ``sweep``."""
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=f"retry a failed {unit} up to N times (crashes, hangs, and "
        "corrupt results included) with deterministic seeded backoff "
        "(default: no retries)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help=f"per-{unit} wall-clock timeout in seconds; a {unit} running "
        "past it is killed and charged a failed attempt (needs more "
        "than one worker process)",
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "skip"),
        default="raise",
        help=f"what to do when a {unit} exhausts its attempts: abort with "
        "a structured error (raise, default) or keep the partial "
        "results and report what was skipped (skip)",
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared on-disk cache flags of ``run`` and ``sweep``."""
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="on-disk result cache directory (default: ~/.cache/repro, "
        "honouring REPRO_CACHE_DIR/XDG_CACHE_HOME)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk result cache",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags of ``run`` and ``sweep``."""
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="append a JSONL execution trace (spans, chunk attempts, "
        "retries, cache/pool events, worker peak RSS) to PATH; render "
        "it later with 'repro stats PATH'",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the aggregated metrics summary (counters, gauges, "
        "latency histograms) to stderr after the run",
    )


@contextmanager
def _observed(
    command: str,
    target: str,
    trace_out: "str | None",
    metrics: bool,
) -> Iterator[None]:
    """Install a trace recorder around one CLI command, if asked to.

    With neither ``--trace-out`` nor ``--metrics`` this is a true
    no-op — the null recorder stays installed and the run pays
    nothing. Otherwise the whole command executes inside a ``run``
    span; the metrics summary lands on stderr (stdout stays parseable
    result output) and the trace file is flushed even when the command
    fails midway.
    """
    if trace_out is None and not metrics:
        yield
        return
    from .obs import TraceRecorder, install_recorder

    recorder = TraceRecorder(trace_out)
    try:
        with install_recorder(recorder):
            with recorder.span("run", command=command, target=target):
                yield
    finally:
        recorder.close()
        if metrics:
            print(
                "metrics: " + json.dumps(recorder.summary(), indent=2),
                file=sys.stderr,
            )


def _resolve_cache_dir(cache_dir: str | None, no_cache: bool) -> str | None:
    """The effective cache directory, or ``None`` when caching is off."""
    from .exec import default_cache_dir

    if no_cache:
        if cache_dir is not None:
            # Routed through main()'s ReproError handler: exit code 2.
            raise ReproError("--cache-dir conflicts with --no-cache")
        return None
    return cache_dir if cache_dir is not None else str(default_cache_dir())


def _command_list() -> int:
    for experiment_id, title in experiment_titles().items():
        print(f"{experiment_id}  {title}")
    return 0


def _command_run(
    experiment: str,
    parallel: bool,
    jobs: int | None,
    cache_dir: str | None,
    retries: int | None,
    timeout: float | None,
    on_error: str,
) -> int:
    batch_flags = (
        parallel
        or jobs is not None
        or retries is not None
        or timeout is not None
        or on_error != "raise"
    )
    if experiment != "all" and batch_flags:
        print(
            "note: --parallel/--jobs/--retries/--timeout/--on-error only "
            f"apply to 'run all'; running {experiment} in-process",
            file=sys.stderr,
        )
    if experiment == "all":
        results = run_all(
            parallel=parallel,
            max_workers=jobs,
            cache_dir=cache_dir,
            retries=retries,
            timeout=timeout,
            on_error=on_error,
        )
        failures = 0
        for experiment_id, result in results.items():
            status = "ok" if result.all_checks_pass else "FAIL"
            print(f"{status:4s} {experiment_id}  ({len(result.checks)} checks)")
            failures += len(result.failed_checks())
        skipped = [
            experiment_id
            for experiment_id in EXPERIMENT_IDS
            if experiment_id not in results
        ]
        for experiment_id in skipped:
            print(f"SKIP {experiment_id}  (exhausted its attempts)")
        return 0 if failures == 0 and not skipped else 1
    result = run_experiment(experiment, cache_dir=cache_dir)
    print(result.render())
    return 0 if result.all_checks_pass else 1


def _command_checks() -> int:
    results = run_all()
    total = sum(len(result.checks) for result in results.values())
    failing = [
        (experiment_id, check)
        for experiment_id, result in results.items()
        for check in result.failed_checks()
    ]
    print(f"{total} checks across {len(results)} experiments; "
          f"{len(failing)} failing")
    for experiment_id, check in failing:
        print(
            f"  {experiment_id} {check.name}: expected {check.expected:.4g}, "
            f"measured {check.measured:.4g}"
        )
    return 0 if not failing else 1


def _split_sweep_outcome(outcome: object, on_error: str) -> tuple:
    """Unpack a sweep return value into ``(result, report)``.

    Under ``on_error="skip"`` the runners return a ``(result,
    FailureReport)`` pair; otherwise the result alone.
    """
    if on_error == "skip":
        result, report = outcome
        return result, (report if report else None)
    return outcome, None


def _command_sweep(
    name: str,
    markdown: bool,
    draws: int | None,
    seed: int | None,
    band: str | None,
    jobs: int,
    chunk_size: int | None,
    cache_dir: str | None,
    retries: int | None,
    timeout: float | None,
    on_error: str,
    resume: bool,
) -> int:
    from .exec import CheckpointStore, ResultCache, cache_key, package_fingerprint
    from .experiments.markdown import markdown_table
    from .report.tables import render_table
    from .scenarios import SWEEPS, run_sweep, run_uncertain_sweep
    from .tabular import Table
    from .uncertainty import UncertainResult

    spec = SWEEPS[name]
    disk = ResultCache(cache_dir) if cache_dir is not None else None
    if resume and disk is None:
        print(
            "error: --resume needs the on-disk cache (drop --no-cache)",
            file=sys.stderr,
        )
        return 2
    report = None
    if draws is None:
        # A deterministic sweep must not silently swallow Monte Carlo
        # flags the user believes are in effect.
        for flag, value in (("--band", band), ("--seed", seed)):
            if value is not None:
                print(f"error: {flag} needs --draws", file=sys.stderr)
                return 2
        # jobs/chunk_size are not part of the key: sharded sweeps are
        # bit-identical to monolithic ones, so any parallelism level
        # warm-starts every other.
        key = (
            cache_key("sweep", name, "point", package_fingerprint())
            if disk is not None
            else None
        )
        table = disk.get(key) if disk is not None else None
        if not isinstance(table, Table):
            checkpoint = (
                CheckpointStore(
                    cache_dir,
                    spec_parts=("sweep", name, "point"),
                    consume=resume,
                )
                if disk is not None
                else None
            )
            outcome = run_sweep(
                name,
                jobs=jobs,
                chunk_size=chunk_size,
                retries=retries,
                timeout=timeout,
                on_error=on_error,
                checkpoint=checkpoint,
            )
            table, report = _split_sweep_outcome(outcome, on_error)
            # A partial table must never be served as the sweep's result.
            if disk is not None and report is None:
                disk.put(key, table)
        footer = f"{table.num_rows} scenarios, batched kernels"
    else:
        seed_value = seed if seed is not None else 0
        key = (
            cache_key("sweep", name, draws, seed_value, package_fingerprint())
            if disk is not None
            else None
        )
        result = disk.get(key) if disk is not None else None
        if not isinstance(result, UncertainResult):
            checkpoint = (
                CheckpointStore(
                    cache_dir,
                    spec_parts=("sweep", name, draws, seed_value),
                    consume=resume,
                )
                if disk is not None
                else None
            )
            outcome = run_uncertain_sweep(
                name,
                draws,
                seed_value,
                jobs=jobs,
                chunk_size=chunk_size,
                retries=retries,
                timeout=timeout,
                on_error=on_error,
                checkpoint=checkpoint,
            )
            result, report = _split_sweep_outcome(outcome, on_error)
            if disk is not None and report is None:
                disk.put(key, result)
        if band is not None and band not in result.metric_names:
            print(
                f"error: no metric {band!r}; have {result.metric_names}",
                file=sys.stderr,
            )
            return 2
        table = result.quantile_table()
        footer = (
            f"{result.num_scenarios} scenarios x {result.draws} draws "
            f"(seed {result.seed}), batched draw matrix"
        )
    if markdown:
        print(f"### {spec.name}\n\n{spec.description}\n")
        print(markdown_table(table))
    else:
        print(render_table(table, title=spec.description,
                           float_format="{:.3g}"))
        print(f"\n{footer}")
    if draws is not None and band is not None:
        from .report.charts import band_chart

        low, median, high = result.band(band)
        chart = band_chart(
            [float(index) for index in range(result.num_scenarios)],
            low,
            median,
            high,
            label=band,
        )
        # Character-cell output must be fenced to stay valid markdown.
        print(f"\n```\n{chart}\n```" if markdown else f"\n{chart}")
    if report is not None:
        print(f"warning: {report.summary()}", file=sys.stderr)
        for failure in report.failures:
            print(
                f"  chunk {failure.index} [{failure.start}, {failure.stop}) "
                f"after {failure.attempts} attempt(s): {failure.kind}: "
                f"{failure.error}",
                file=sys.stderr,
            )
        return 1
    return 0


def _command_serve(args: argparse.Namespace, cache_dir: "str | None") -> int:
    """Run the sweep service until SIGTERM/SIGINT drains it.

    Prints the bound address on stderr once listening (stdout stays
    free for result piping) and drains gracefully on either signal:
    new requests are refused with 503s while everything already
    admitted is answered, then the process exits 0.
    """
    import asyncio
    import signal

    from .serve import ServeConfig, SweepService

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1000.0,
        coalesce=not args.no_coalesce,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        retries=args.retries,
        timeout_s=args.timeout,
        cache_dir=cache_dir,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
        drain_grace_s=args.drain_grace,
    )

    async def _serve() -> int:
        service = SweepService(config)
        await service.start()
        print(
            f"repro serve listening on http://{config.host}:{service.port} "
            f"(pid ready; SIGTERM drains)",
            file=sys.stderr,
            flush=True,
        )
        loop = asyncio.get_running_loop()
        drain: dict[str, asyncio.Task] = {}

        def _request_drain() -> None:
            if "task" not in drain:
                drain["task"] = loop.create_task(service.drain())

        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, _request_drain)
        await service.wait_stopped()
        abandoned = await drain["task"] if "task" in drain else 0
        print(
            f"repro serve drained ({abandoned} request(s) abandoned)",
            file=sys.stderr,
            flush=True,
        )
        return 0

    return asyncio.run(_serve())


def _command_stats(trace: str) -> int:
    from .obs import render_stats

    print(render_stats(trace))
    return 0


def _command_trace(
    action: str,
    profile: str | None,
    hours: int,
    capacity_kw: float,
    markdown: bool,
) -> int:
    from .errors import SimulationError
    from .experiments.markdown import markdown_table
    from .report.charts import line_chart, sparkline
    from .report.tables import render_table
    from .scenarios import sweep_temporal_shifting
    from .traces import profile_catalog

    if action != "show" and profile is not None:
        print(
            f"error: 'trace {action}' takes no profile argument "
            f"(got {profile!r})",
            file=sys.stderr,
        )
        return 2
    if action == "list":
        catalog = profile_catalog(hours)
        width = max(len(name) for name in catalog)
        print(f"{len(catalog)} bundled profiles over {hours} h:")
        for name, trace in catalog.items():
            print(
                f"  {name:<{width}}  mean {trace.mean_g_per_kwh:7.1f} "
                f"g/kWh  {sparkline(trace.values)}"
            )
        return 0
    if action == "show":
        if profile is None:
            print("error: 'trace show' needs a profile name", file=sys.stderr)
            return 2
        catalog = profile_catalog(hours)
        if profile not in catalog:
            raise SimulationError(
                f"unknown profile {profile!r}; run 'repro trace list'"
            )
        trace = catalog[profile]
        window = trace.cleanest_window(4.0)
        print(
            line_chart(
                [float(hour) for hour in range(len(trace))],
                {"g_per_kwh": list(trace.values)},
            )
        )
        print(
            f"{trace!r}; cleanest 4 h window starts at hour "
            f"{window.start_hour:.0f} ({window.mean_g_per_kwh:.1f} g/kWh)"
        )
        return 0
    table = sweep_temporal_shifting(hours, capacity_kw=capacity_kw)
    if markdown:
        print(markdown_table(table))
    else:
        print(
            render_table(
                table,
                title="batched policy evaluation (traces x workloads x policies)",
                float_format="{:.3g}",
            )
        )
        print(f"\n{table.num_rows} scenarios, batched evaluator")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            with _observed(
                "run", args.experiment, args.trace_out, args.metrics
            ):
                return _command_run(
                    args.experiment,
                    args.parallel,
                    args.jobs,
                    _resolve_cache_dir(args.cache_dir, args.no_cache),
                    args.retries,
                    args.timeout,
                    args.on_error,
                )
        if args.command == "checks":
            return _command_checks()
        if args.command == "sweep":
            with _observed(
                "sweep", args.sweep, args.trace_out, args.metrics
            ):
                return _command_sweep(
                    args.sweep,
                    args.markdown,
                    args.draws,
                    args.seed,
                    args.band,
                    args.jobs,
                    args.chunk_size,
                    _resolve_cache_dir(args.cache_dir, args.no_cache),
                    args.retries,
                    args.timeout,
                    args.on_error,
                    args.resume,
                )
        if args.command == "serve":
            with _observed(
                "serve", f"{args.host}:{args.port}", args.trace_out,
                args.metrics,
            ):
                return _command_serve(
                    args, _resolve_cache_dir(args.cache_dir, args.no_cache)
                )
        if args.command == "stats":
            return _command_stats(args.trace)
        if args.command == "trace":
            return _command_trace(
                args.action,
                args.profile,
                args.hours,
                args.capacity_kw,
                args.markdown,
            )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")
