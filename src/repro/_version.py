"""The single source of truth for the package version.

``repro.__version__``, ``repro --version``, and ``setup.py`` all read
the value below — ``setup.py`` parses this file textually (no import)
so building a wheel never requires the package's dependencies.
"""

__version__ = "1.1.0"
