"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "UnitError",
    "DataValidationError",
    "TableError",
    "CalibrationError",
    "AccountingError",
    "SimulationError",
    "ExperimentError",
    "ExecutionError",
    "ChunkFailedError",
    "CorruptChunkError",
    "ObservabilityError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class UnitError(ReproError):
    """Raised for invalid physical-quantity construction or arithmetic."""


class DataValidationError(ReproError):
    """Raised when a curated dataset record fails its invariants."""


class TableError(ReproError):
    """Raised for malformed :class:`repro.tabular.Table` operations."""


class CalibrationError(ReproError):
    """Raised when a simulator cannot be calibrated to its anchors."""


class AccountingError(ReproError):
    """Raised for inconsistent GHG-Protocol or LCA bookkeeping."""


class SimulationError(ReproError):
    """Raised when a simulator is driven with invalid parameters."""


class ExperimentError(ReproError):
    """Raised when an experiment driver cannot produce its artifact."""


class ExecutionError(ReproError):
    """Raised for invalid shard plans, kernels, or cache operations."""


class ChunkFailedError(ExecutionError):
    """A sweep chunk exhausted its retry budget.

    Structured so callers can react programmatically: ``start``/``stop``
    name the failed shard's scenario range, ``attempts`` how many times
    it was tried, and ``kind`` the failure class (``"error"``,
    ``"timeout"``, ``"crash"``, or ``"corrupt"``). The root cause is
    chained as ``__cause__`` where one exists (worker hangs and hard
    crashes have no Python-level cause to chain).
    """

    def __init__(
        self,
        message: str,
        *,
        index: "int | None" = None,
        start: "int | None" = None,
        stop: "int | None" = None,
        attempts: "int | None" = None,
        kind: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.start = start
        self.stop = stop
        self.attempts = attempts
        self.kind = kind


class CorruptChunkError(ExecutionError):
    """A chunk result failed its integrity check on the way back.

    Worker processes return chunk results as (digest, pickled bytes)
    envelopes; a digest mismatch — a torn transfer, a bit flip, or an
    injected corruption fault — raises this, which the sharded driver
    treats as one failed attempt of that chunk.
    """


class ObservabilityError(ReproError):
    """Raised for invalid metrics usage or malformed trace files."""


class ServiceError(ReproError):
    """Raised for sweep-service failures (:mod:`repro.serve`).

    The service's structured refusals — overload shedding, expired
    deadlines, drain-time rejections — derive from this so the HTTP
    layer can map library failures onto status codes without guessing.
    """
