"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "UnitError",
    "DataValidationError",
    "TableError",
    "CalibrationError",
    "AccountingError",
    "SimulationError",
    "ExperimentError",
    "ExecutionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class UnitError(ReproError):
    """Raised for invalid physical-quantity construction or arithmetic."""


class DataValidationError(ReproError):
    """Raised when a curated dataset record fails its invariants."""


class TableError(ReproError):
    """Raised for malformed :class:`repro.tabular.Table` operations."""


class CalibrationError(ReproError):
    """Raised when a simulator cannot be calibrated to its anchors."""


class AccountingError(ReproError):
    """Raised for inconsistent GHG-Protocol or LCA bookkeeping."""


class SimulationError(ReproError):
    """Raised when a simulator is driven with invalid parameters."""


class ExperimentError(ReproError):
    """Raised when an experiment driver cannot produce its artifact."""


class ExecutionError(ReproError):
    """Raised for invalid shard plans, kernels, or cache operations."""
