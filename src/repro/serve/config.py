"""Service configuration: one frozen dataclass, CLI-shaped defaults.

Every tunable of the sweep service lives here so the CLI, the tests,
and the load generator construct services the same way. The defaults
describe a small single-host deployment: a bounded queue deep enough
to absorb bursts, micro-batches wide enough to amortize kernel
dispatch, and a short coalescing window that trades a few
milliseconds of latency for order-of-magnitude throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..errors import ServiceError

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`~repro.serve.service.SweepService`.

    ``max_queue`` bounds admission (beyond it requests are shed with a
    structured 429 — memory never grows with offered load), ``max_batch``
    caps how many queued requests coalesce into one kernel call, and
    ``batch_window_s`` is how long the dispatcher lingers after the
    first request of a batch so concurrent arrivals can join it.
    ``coalesce=False`` forces ``max_batch=1`` semantics — the
    benchmark baseline. ``jobs``/``chunk_size``/``retries``/
    ``timeout_s`` forward to the sharded runners exactly like the
    ``repro sweep`` flags; ``timeout_s`` (and per-request deadlines)
    only reach :func:`repro.exec.run_sharded` when ``jobs > 1``,
    because inline chunks cannot be cancelled. ``cache_dir`` arms the
    shared :class:`~repro.exec.cache.ResultCache` for sweep requests
    (``None`` disables caching). The breaker fields shape the
    :class:`~repro.serve.breaker.CircuitBreaker`; ``drain_grace_s``
    bounds how long a SIGTERM drain waits for in-flight work.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_queue: int = 1024
    max_batch: int = 1024
    batch_window_s: float = 0.005
    coalesce: bool = True
    jobs: int = 1
    chunk_size: "int | None" = None
    retries: int = 0
    timeout_s: "float | None" = None
    cache_dir: "Path | str | None" = None
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0
    drain_grace_s: float = 30.0
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.max_queue <= 0:
            raise ServiceError(
                f"admission queue must hold at least one request, got "
                f"{self.max_queue}"
            )
        if self.max_batch <= 0:
            raise ServiceError(
                f"batch width must be positive, got {self.max_batch}"
            )
        if self.batch_window_s < 0:
            raise ServiceError(
                f"batch window must be >= 0 seconds, got {self.batch_window_s}"
            )
        if self.jobs <= 0:
            raise ServiceError(f"jobs must be positive, got {self.jobs}")
        if self.breaker_threshold <= 0:
            raise ServiceError(
                f"breaker threshold must be positive, got "
                f"{self.breaker_threshold}"
            )
        if self.drain_grace_s < 0:
            raise ServiceError(
                f"drain grace must be >= 0 seconds, got {self.drain_grace_s}"
            )

    @property
    def effective_max_batch(self) -> int:
        """The batch-width cap actually applied (1 when coalescing is off)."""
        return self.max_batch if self.coalesce else 1

    @property
    def effective_window_s(self) -> float:
        """The coalescing window actually applied (0 when coalescing is off)."""
        return self.batch_window_s if self.coalesce else 0.0
