"""The sweep service: HTTP endpoints wired to the micro-batcher.

:class:`SweepService` owns the whole serving stack: the asyncio
server, the :class:`~repro.serve.batcher.MicroBatcher`, the
:class:`~repro.serve.breaker.CircuitBreaker`, the shared
:class:`~repro.exec.ResultCache`, and a
:class:`~repro.obs.metrics.MetricsRegistry` that the health endpoints
read live. The execution path is: HTTP request → parse/validate →
bounded admission → coalesced batch → one kernel call in a worker
thread → per-request JSON responses.

Failure behavior is the design center:

* **Overload** sheds at admission with a structured 429 — the queue is
  the only buffer, so memory is bounded by ``max_queue`` requests.
* **Deadlines** expire queued requests with a 504 before any kernel
  time is spent, and the tightest live deadline of a batch forwards
  into :func:`repro.exec.run_sharded`'s timeout when ``jobs > 1``.
* **Infrastructure failures** (broken pools, exhausted chunk retries,
  integrity failures) feed the breaker; tripped batches — and every
  batch while the breaker is open — rerun on the degraded path
  (inline, ``on_error="skip"``), so clients get partial answers with
  the :class:`~repro.exec.FailureReport` attached instead of timeouts.
* **Drain** (SIGTERM) refuses new work with 503s, flushes every
  admitted request, then closes — zero accepted requests are lost.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable, Sequence

from ..errors import ServiceError
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import _update_metrics, active_recorder
from .batcher import DrainingError, MicroBatcher, OverloadedError
from .breaker import CircuitBreaker, is_infrastructure_error
from .config import ServeConfig
from .http import serve_connection
from .requests import Request, Response, execute_group, parse_request

__all__ = ["SweepService"]


class SweepService:
    """One long-lived sweep service instance.

    Construct with a :class:`~repro.serve.config.ServeConfig`, then
    either ``await start()`` and drive it from a running event loop
    (tests do this) or call :meth:`serve_forever` from synchronous
    code (the CLI does this). The injectable clock feeds the breaker
    and deadline bookkeeping for deterministic tests.
    """

    def __init__(
        self,
        config: "ServeConfig | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServeConfig()
        self._clock = clock
        self.metrics = MetricsRegistry()
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_timeout_s=self.config.breaker_reset_s,
            clock=clock,
        )
        self._cache = None
        if self.config.cache_dir is not None:
            from ..exec.cache import ResultCache

            self._cache = ResultCache(self.config.cache_dir)
        self._batcher = MicroBatcher(
            self._execute_batch,
            max_queue=self.config.max_queue,
            max_batch=self.config.effective_max_batch,
            window_s=self.config.effective_window_s,
            record=self._record,
            clock=clock,
        )
        self._server: "asyncio.Server | None" = None
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._started_at = clock()
        self._draining = False
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Bind the listener and start the dispatcher."""
        if self._server is not None:
            raise ServiceError("service already started")
        self._started_at = self._clock()
        # The accept backlog must absorb the same burst the admission
        # queue does: at the default backlog (100) a connect storm hits
        # kernel SYN retransmits (~1s) before the service ever sees the
        # request. The kernel clamps this to net.core.somaxconn.
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            backlog=max(self.config.max_queue, 128),
        )
        self._batcher.start()

    @property
    def port(self) -> int:
        """The bound port (useful with the ``port=0`` ephemeral default)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("service is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """Whether a drain has begun (readiness reports 503)."""
        return self._draining

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched to a kernel."""
        return self._batcher.queue_depth

    async def drain(self) -> int:
        """Graceful shutdown: refuse, flush, close. Returns abandon count.

        Every request admitted before the drain began is answered
        (abandon count 0) unless ``drain_grace_s`` expires, in which
        case stragglers get a shutdown 503 — resolved, never dropped.
        """
        if self._draining:
            await self._stopped.wait()
            return 0
        self._draining = True
        if self._server is not None:
            self._server.close()  # stop accepting new connections
        abandoned = await self._batcher.drain(self.config.drain_grace_s)
        # In-flight responses are written by now; close idle keep-alive
        # connections still parked in readline().
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        self._stopped.set()
        return abandoned

    async def wait_stopped(self) -> None:
        """Block until a drain completes (the CLI parks here)."""
        await self._stopped.wait()

    async def serve_until_stopped(self) -> None:
        """Start and block until a drain completes (signal-driven use)."""
        await self.start()
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            await serve_connection(
                reader,
                writer,
                self._route,
                max_body=self.config.max_body_bytes,
                closing=lambda: self._draining,
            )
        finally:
            self._writers.discard(writer)

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> "tuple[int, Any, dict]":
        if path in ("/healthz", "/readyz", "/metrics"):
            if method != "GET":
                return 405, {"error": "method_not_allowed"}, {}
            status, payload = getattr(self, f"_get_{path[1:]}")()
            return status, payload, {}
        if path.startswith("/v1/"):
            kind = path[len("/v1/"):]
            if method != "POST":
                return 405, {"error": "method_not_allowed"}, {}
            return await self._post_request(kind, body)
        return 404, {"error": "not_found", "detail": f"no route for {path}"}, {}

    def _get_healthz(self) -> "tuple[int, dict]":
        return 200, {
            "status": "ok",
            "uptime_s": self._clock() - self._started_at,
            "breaker": self.breaker.snapshot(),
            "queue_depth": self.queue_depth,
        }

    def _get_readyz(self) -> "tuple[int, dict]":
        if self._draining:
            return 503, {"status": "draining"}
        return 200, {
            "status": "ready",
            "queue_depth": self.queue_depth,
            "queue_limit": self.config.max_queue,
        }

    def _get_metrics(self) -> "tuple[int, dict]":
        return 200, {
            "metrics": self.metrics.summary(),
            "breaker": self.breaker.snapshot(),
            "queue_depth": self.queue_depth,
        }

    async def _post_request(
        self, kind: str, body: bytes
    ) -> "tuple[int, Any, dict]":
        try:
            decoded = json.loads(body or b"{}")
        except json.JSONDecodeError as error:
            return 400, {"error": "bad_request", "detail": str(error)}, {}
        try:
            request = parse_request(kind, decoded)
            self._validate_overrides(request)
        except ServiceError as error:
            return 400, {"error": "bad_request", "detail": str(error)}, {}
        try:
            response = await self._batcher.submit(request)
        except OverloadedError as error:
            return (
                429,
                {
                    "error": "overloaded",
                    "detail": str(error),
                    "queue_depth": error.queue_depth,
                    "queue_limit": error.limit,
                    "retry_after_s": 1.0,
                },
                {"Retry-After": "1"},
            )
        except DrainingError as error:
            return 503, {"error": "shutting_down", "detail": str(error)}, {}
        return response.status, response.payload, {}

    def _validate_overrides(self, request: Request) -> None:
        """Reject bad override paths at admission, not inside a batch.

        A coalesced batch shares one kernel call; validating here keeps
        one client's typo from poisoning its batchmates.
        """
        if request.kind == "scenario":
            from ..errors import SimulationError
            from ..scenarios.presets import facebook_like_fleet
            from ..scenarios.runner import apply_overrides

            try:
                apply_overrides(facebook_like_fleet(), request.override_mapping)
            except SimulationError as error:
                raise ServiceError(str(error)) from error
        elif request.kind == "portfolio":
            from ..portfolio.catalog import OVERRIDABLE_FIELDS

            for name, _ in request.overrides:
                if name not in OVERRIDABLE_FIELDS:
                    raise ServiceError(
                        f"cannot sweep {name!r}: portfolio scenarios may "
                        f"override {sorted(OVERRIDABLE_FIELDS)}"
                    )

    # ------------------------------------------------------------------
    # Batch execution

    def _exec_options(self, budget_s: "float | None") -> dict[str, Any]:
        budgets = [
            value
            for value in (budget_s, self.config.timeout_s)
            if value is not None
        ]
        options: dict[str, Any] = {
            "jobs": self.config.jobs,
            "chunk_size": self.config.chunk_size,
            "retries": self.config.retries or None,
            "on_error": "raise",
        }
        if budgets:
            options["timeout"] = min(budgets)
        return options

    def _checkpoint_factory(self, request: Request) -> Any:
        """A consume-mode checkpoint store for one sweep request."""
        from ..exec.checkpoint import CheckpointStore

        if request.draws is None:
            spec_parts: "tuple[Any, ...]" = ("sweep", request.sweep_name, "point")
        else:
            spec_parts = (
                "sweep", request.sweep_name, request.draws, request.seed,
            )
        return CheckpointStore(
            self.config.cache_dir, spec_parts=spec_parts, consume=True
        )

    async def _execute_batch(
        self,
        group_key: tuple,
        requests: Sequence[Request],
        budget_s: "float | None",
    ) -> list[Response]:
        loop = asyncio.get_running_loop()
        recorder = active_recorder()
        primary_allowed = self.breaker.allow()
        with recorder.span(
            "request_batch",
            endpoint=requests[0].kind,
            width=len(requests),
            breaker=self.breaker.state if not primary_allowed else "closed",
        ):
            if primary_allowed:
                try:
                    responses = await loop.run_in_executor(
                        None,
                        lambda: execute_group(
                            list(requests),
                            options=self._exec_options(budget_s),
                            cache=self._cache,
                            checkpoint_factory=(
                                self._checkpoint_factory
                                if self._cache is not None
                                else None
                            ),
                        ),
                    )
                except Exception as error:
                    if not is_infrastructure_error(error):
                        raise  # batcher answers the batch with 500s
                    self.breaker.record_failure()
                    responses = await self._execute_degraded(
                        loop, requests, error
                    )
                else:
                    self.breaker.record_success()
            else:
                responses = await self._execute_degraded(loop, requests, None)
        for response in responses:
            if response.payload.get("degraded"):
                self.metrics.counter("serve.degraded").inc()
        return responses

    async def _execute_degraded(
        self,
        loop: asyncio.AbstractEventLoop,
        requests: Sequence[Request],
        cause: "BaseException | None",
    ) -> list[Response]:
        """The fallback path: inline execution, skip-and-report semantics."""
        options = {
            "jobs": 1,
            "chunk_size": self.config.chunk_size,
            "retries": self.config.retries or None,
            "on_error": "skip",
        }
        try:
            responses = await loop.run_in_executor(
                None,
                lambda: execute_group(
                    list(requests),
                    options=options,
                    cache=self._cache,
                    checkpoint_factory=(
                        self._checkpoint_factory
                        if self._cache is not None
                        else None
                    ),
                ),
            )
        except Exception as error:
            detail = repr(cause) if cause is not None else repr(error)
            return [
                Response(
                    status=500,
                    payload={
                        "error": "execution_failed",
                        "detail": detail,
                        "degraded": True,
                    },
                )
                for _ in requests
            ]
        if cause is not None:
            for response in responses:
                response.payload["breaker_cause"] = repr(cause)
        return responses

    # ------------------------------------------------------------------
    # Observability

    def _record(self, kind: str, fields: dict) -> None:
        """Fold one batcher fact into metrics and the active trace.

        Trace lines go through the same
        :func:`~repro.obs.recorder._update_metrics` vocabulary the
        execution stack uses, so ``repro stats`` on a serve trace and
        the live ``/metrics`` endpoint agree by construction.
        """
        if kind in ("admit", "depth"):
            self.metrics.gauge("serve.queue_depth").set(
                fields.get("queue_depth", 0)
            )
            return
        recorder = active_recorder()
        if kind == "shed":
            payload = {"type": "event", "kind": "shed", **fields}
        elif kind == "expired":
            payload = {"type": "event", "kind": "deadline_expired", **fields}
        elif kind == "batch":
            payload = {
                "type": "event",
                "kind": "coalesce",
                "endpoint": fields.get("kind"),
                "width": fields.get("width"),
            }
        elif kind == "respond":
            payload = {
                "type": "event",
                "kind": "request",
                "endpoint": fields.get("kind"),
                "status": fields.get("status"),
                "dur_s": fields.get("dur_s"),
            }
        else:
            return
        _update_metrics(self.metrics, payload)
        if recorder.enabled:
            event_fields = {
                name: value
                for name, value in payload.items()
                if name not in ("type", "kind")
            }
            recorder.event(payload["kind"], **event_fields)
