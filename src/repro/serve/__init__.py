"""The resilient sweep service: batched kernels behind HTTP.

The library's batched kernels answer one scenario almost as cheaply as
a thousand — per-call overhead, not arithmetic, dominates small
requests. :mod:`repro.serve` turns that shape into a long-lived
service: concurrent scenario/portfolio/sweep requests are
micro-batched into single kernel calls
(:class:`~repro.serve.batcher.MicroBatcher`), answered bit-identically
to direct library calls, and wrapped in a resilience envelope — a
bounded admission queue with 429 load shedding, per-request deadlines
that forward into :func:`repro.exec.run_sharded`'s timeout machinery,
a :class:`~repro.serve.breaker.CircuitBreaker` that degrades to
inline ``on_error="skip"`` execution (responses carry the
:class:`~repro.exec.FailureReport`), and a zero-loss SIGTERM drain.
``repro serve`` is the CLI entry point; :class:`ServiceClient` is the
matching stdlib client.
"""

from .batcher import DrainingError, MicroBatcher, OverloadedError
from .breaker import CircuitBreaker, is_infrastructure_error
from .client import ServiceClient
from .config import ServeConfig
from .requests import Request, Response, execute_group, parse_request
from .service import SweepService

__all__ = [
    "CircuitBreaker",
    "DrainingError",
    "MicroBatcher",
    "OverloadedError",
    "Request",
    "Response",
    "ServeConfig",
    "ServiceClient",
    "SweepService",
    "execute_group",
    "is_infrastructure_error",
    "parse_request",
]
