"""An asyncio client for the sweep service — tests and load generation.

The service speaks plain HTTP/1.1, so any client works; this one
exists so the test suite and ``tools/load_gen.py`` need no third-party
HTTP stack. One :class:`ServiceClient` holds one keep-alive
connection, reconnecting transparently when the server closed it
(drains answer the in-flight request with ``Connection: close``; the
next call simply dials again).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping

from ..errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """One keep-alive HTTP connection to a :class:`~repro.serve.SweepService`.

    Every request method returns ``(status, payload)`` — the decoded
    JSON body is never hidden behind exceptions, because shed (429),
    degraded (200 + report), and draining (503) responses are expected
    outcomes the caller inspects, not failures.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
        self._reader = None
        self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        payload: "Mapping[str, Any] | None" = None,
    ) -> "tuple[int, dict]":
        """One round-trip: returns ``(status, decoded_json_body)``."""
        if self._writer is None or self._writer.is_closing():
            await self._connect()
        assert self._reader is not None and self._writer is not None
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else b""
        )
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
            "Content-Type: application/json",
        ]
        self._writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body
        )
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> "tuple[int, dict]":
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ServiceError("connection closed before a response arrived")
        parts = status_line.decode("ascii").split(maxsplit=2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError(f"malformed status line: {status_line[:80]!r}")
        status = int(parts[1])
        length = 0
        keep_alive = True
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "connection":
                keep_alive = value.strip().lower() != "close"
        raw = await self._reader.readexactly(length) if length else b"{}"
        if not keep_alive:
            await self.close()
        return status, json.loads(raw.decode("utf-8"))

    async def scenario(
        self,
        overrides: "Mapping[str, Any] | None" = None,
        *,
        deadline_s: "float | None" = None,
    ) -> "tuple[int, dict]":
        """POST one fleet-scenario request."""
        body: dict[str, Any] = {"overrides": dict(overrides or {})}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return await self.request("POST", "/v1/scenario", body)

    async def portfolio(
        self,
        overrides: "Mapping[str, Any] | None" = None,
        *,
        deadline_s: "float | None" = None,
    ) -> "tuple[int, dict]":
        """POST one device-portfolio cell request."""
        body: dict[str, Any] = {"overrides": dict(overrides or {})}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return await self.request("POST", "/v1/portfolio", body)

    async def sweep(
        self,
        name: str,
        *,
        draws: "int | None" = None,
        seed: int = 0,
        deadline_s: "float | None" = None,
    ) -> "tuple[int, dict]":
        """POST one named-sweep request."""
        body: dict[str, Any] = {"name": name, "seed": seed}
        if draws is not None:
            body["draws"] = draws
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return await self.request("POST", "/v1/sweep", body)

    async def healthz(self) -> "tuple[int, dict]":
        """GET the liveness report."""
        return await self.request("GET", "/healthz")

    async def readyz(self) -> "tuple[int, dict]":
        """GET the readiness report (503 while draining)."""
        return await self.request("GET", "/readyz")

    async def metrics(self) -> "tuple[int, dict]":
        """GET the live metrics summary."""
        return await self.request("GET", "/metrics")
