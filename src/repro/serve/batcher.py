"""The micro-batcher: bounded admission, coalescing, deadlines, drain.

Requests arrive one at a time; kernels want them in batches. The
:class:`MicroBatcher` sits between: :meth:`~MicroBatcher.submit`
admits a request into a bounded queue (or sheds it — the queue is the
service's *only* buffer, so memory stays bounded no matter the offered
load) and parks the caller on a future; a single dispatcher task
drains the queue in group-key batches, lingering ``window_s`` after a
wake-up so concurrent arrivals can join the same kernel call.

Deadlines are enforced at dispatch: a request whose budget expired
while queued is answered with a structured 504 and never reaches a
kernel, and the tightest remaining budget of a batch is handed to the
executor so it can forward it into :func:`repro.exec.run_sharded`'s
timeout machinery.

Draining is the graceful half of SIGTERM: new submissions are refused
(:class:`DrainingError` → 503) while everything already admitted is
flushed — zero accepted requests are lost — and only then does the
dispatcher exit. A grace period bounds the wait; anything still queued
when it expires is answered with a shutdown 503 rather than abandoned.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Callable, Sequence

from ..errors import ServiceError
from .requests import Request, Response

__all__ = [
    "OverloadedError",
    "DrainingError",
    "MicroBatcher",
]


class OverloadedError(ServiceError):
    """Admission refused: the bounded queue is full (HTTP 429).

    Carries the observed depth and the configured limit so the
    shedding response can tell the client what it hit.
    """

    def __init__(self, queue_depth: int, limit: int) -> None:
        super().__init__(
            f"admission queue full ({queue_depth}/{limit}); shedding"
        )
        self.queue_depth = queue_depth
        self.limit = limit


class DrainingError(ServiceError):
    """Admission refused: the service is draining for shutdown (HTTP 503)."""


class _Pending:
    """One admitted request parked on its future."""

    __slots__ = ("request", "future", "admitted_at", "deadline")

    def __init__(
        self,
        request: Request,
        future: "asyncio.Future[Response]",
        admitted_at: float,
    ) -> None:
        self.request = request
        self.future = future
        self.admitted_at = admitted_at
        self.deadline = (
            admitted_at + request.deadline_s
            if request.deadline_s is not None
            else None
        )


def _noop_record(kind: str, fields: dict) -> None:
    return None


class MicroBatcher:
    """Bounded-queue request coalescer with one dispatcher task.

    ``execute(group_key, requests, budget_s)`` is awaited once per
    batch and must return one :class:`Response` per request in order;
    it is the only place kernels run. ``record(kind, fields)``
    receives point facts (``admit``/``shed``/``expired``/``batch``/
    ``respond``/``depth``) for the owner to fold into metrics and
    traces. The clock is injectable for deterministic deadline tests.
    """

    def __init__(
        self,
        execute: Callable[..., "Any"],
        *,
        max_queue: int,
        max_batch: int,
        window_s: float = 0.0,
        record: "Callable[[str, dict], None] | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue <= 0 or max_batch <= 0:
            raise ServiceError(
                f"queue and batch bounds must be positive, got "
                f"max_queue={max_queue}, max_batch={max_batch}"
            )
        self._execute = execute
        self._max_queue = max_queue
        self._max_batch = max_batch
        self._window_s = window_s
        self._record = record or _noop_record
        self._clock = clock
        self._queue: "deque[_Pending]" = deque()
        self._wake = asyncio.Event()
        self._drained = asyncio.Event()
        self._draining = False
        self._task: "asyncio.Task | None" = None

    @property
    def queue_depth(self) -> int:
        """How many admitted requests are waiting for a batch."""
        return len(self._queue)

    @property
    def draining(self) -> bool:
        """Whether the batcher has stopped admitting new requests."""
        return self._draining

    def start(self) -> None:
        """Start the dispatcher task on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def submit(self, request: Request) -> Response:
        """Admit one request and wait for its batched answer.

        Raises :class:`OverloadedError` when the queue is full and
        :class:`DrainingError` after :meth:`drain` has begun — both
        *before* anything is enqueued, so a refused request costs no
        memory and no kernel time.
        """
        if self._draining:
            raise DrainingError("service is draining; not accepting requests")
        if len(self._queue) >= self._max_queue:
            self._record(
                "shed",
                {"queue_depth": len(self._queue), "limit": self._max_queue},
            )
            raise OverloadedError(len(self._queue), self._max_queue)
        pending = _Pending(
            request,
            asyncio.get_running_loop().create_future(),
            self._clock(),
        )
        self._queue.append(pending)
        self._record("admit", {"queue_depth": len(self._queue)})
        self._wake.set()
        return await pending.future

    async def drain(self, grace_s: "float | None" = None) -> int:
        """Stop admitting, flush everything admitted, stop the dispatcher.

        Returns how many requests were force-answered with a shutdown
        503 because ``grace_s`` expired — 0 in a clean drain, and the
        zero-loss guarantee either way: every admitted future is
        resolved before this returns.
        """
        self._draining = True
        self._wake.set()
        if self._task is None:
            abandoned = self._flush_shutdown()
            self._drained.set()
            return abandoned
        try:
            await asyncio.wait_for(
                self._drained.wait(),
                timeout=grace_s if grace_s and grace_s > 0 else None,
            )
            abandoned = 0
        except asyncio.TimeoutError:
            abandoned = self._flush_shutdown()
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        return abandoned

    def _flush_shutdown(self) -> int:
        """Answer everything still queued with a shutdown 503."""
        count = 0
        while self._queue:
            pending = self._queue.popleft()
            self._resolve(
                pending,
                Response(
                    status=503,
                    payload={
                        "error": "shutting_down",
                        "detail": "drain grace period expired",
                    },
                ),
            )
            count += 1
        return count

    async def _run(self) -> None:
        while True:
            await self._wake.wait()
            if (
                self._queue
                and self._window_s > 0
                and not self._draining
            ):
                # Linger so concurrent arrivals can join this batch.
                await asyncio.sleep(self._window_s)
            self._wake.clear()
            while self._queue:
                await self._dispatch(self._next_batch())
            self._record("depth", {"queue_depth": 0})
            if self._draining:
                self._drained.set()
                return

    def _next_batch(self) -> list[_Pending]:
        """Pop the next batch: front request plus group-key matches."""
        batch: list[_Pending] = []
        rest: "deque[_Pending]" = deque()
        key = None
        while self._queue:
            pending = self._queue.popleft()
            if key is None:
                key = pending.request.group_key
            if (
                len(batch) < self._max_batch
                and pending.request.group_key == key
            ):
                batch.append(pending)
            else:
                rest.append(pending)
        self._queue = rest
        self._record("depth", {"queue_depth": len(self._queue)})
        return batch

    def _resolve(self, pending: _Pending, response: Response) -> None:
        if not pending.future.done():
            pending.future.set_result(response)
        self._record(
            "respond",
            {
                "kind": pending.request.kind,
                "status": response.status,
                "dur_s": self._clock() - pending.admitted_at,
            },
        )

    async def _dispatch(self, batch: Sequence[_Pending]) -> None:
        now = self._clock()
        live: list[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and pending.deadline <= now:
                self._record("expired", {"kind": pending.request.kind})
                self._resolve(
                    pending,
                    Response(
                        status=504,
                        payload={
                            "error": "deadline_exceeded",
                            "detail": (
                                "deadline expired while queued; no kernel "
                                "time was spent"
                            ),
                        },
                    ),
                )
            else:
                live.append(pending)
        if not live:
            return
        budgets = [p.deadline - now for p in live if p.deadline is not None]
        budget_s = min(budgets) if budgets else None
        self._record(
            "batch",
            {"kind": live[0].request.kind, "width": len(live)},
        )
        try:
            responses = await self._execute(
                live[0].request.group_key,
                [pending.request for pending in live],
                budget_s,
            )
        except Exception as error:  # the dispatcher must never die
            responses = [
                Response(
                    status=500,
                    payload={"error": "internal", "detail": repr(error)},
                )
                for _ in live
            ]
        if len(responses) != len(live):
            responses = [
                Response(
                    status=500,
                    payload={
                        "error": "internal",
                        "detail": (
                            f"executor returned {len(responses)} responses "
                            f"for {len(live)} requests"
                        ),
                    },
                )
                for _ in live
            ]
        for pending, response in zip(live, responses):
            self._resolve(pending, response)
