"""A circuit breaker around the execution stack's failure modes.

A long-lived service must not hammer a process pool that is actively
dying: repeated :class:`BrokenProcessPool` rebuilds and exhausted-chunk
retries burn latency budget batch after batch. The breaker watches for
those *infrastructure* failures (a request asking for an unknown sweep
is not one) and, after ``failure_threshold`` consecutive trips, opens:
execution switches to the degraded path (inline, ``on_error="skip"``)
without attempting the primary one. After ``reset_timeout_s`` the
breaker half-opens and admits a single probe batch; one success closes
it, one failure re-opens it.

The clock is injectable so tests drive state transitions
deterministically — the default is :func:`time.monotonic`.
"""

from __future__ import annotations

import concurrent.futures.process
import threading
import time
from typing import Any, Callable

from ..errors import ChunkFailedError, CorruptChunkError

__all__ = ["CircuitBreaker", "is_infrastructure_error"]

#: Failure classes that indicate the execution substrate — not the
#: request — is unhealthy, and therefore count against the breaker.
_TRIP_TYPES = (
    concurrent.futures.process.BrokenProcessPool,
    concurrent.futures.BrokenExecutor,
    ChunkFailedError,
    CorruptChunkError,
)


def is_infrastructure_error(error: BaseException) -> bool:
    """Whether ``error`` should count against the circuit breaker.

    Pool breakage, exhausted chunk retries, and integrity failures
    qualify; request-shaped errors (unknown sweeps, invalid overrides)
    do not — shedding healthy traffic because a client sent garbage
    would invert the breaker's purpose.
    """
    return isinstance(error, _TRIP_TYPES)


class CircuitBreaker:
    """Consecutive-failure breaker: closed → open → half-open → closed.

    Thread-safe; the batch dispatcher consults :meth:`allow` before
    each primary execution and reports the outcome through
    :meth:`record_success` / :meth:`record_failure`.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (after probe admission)."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether the next batch may attempt the primary path.

        While open, returns ``False`` until ``reset_timeout_s`` has
        elapsed; the first call after that transitions to half-open
        and admits exactly one probe.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self._reset_timeout_s:
                    self._state = "half_open"
                    return True
                return False
            # Half-open: one probe is already in flight; further
            # batches stay on the degraded path until it reports.
            return False

    def record_success(self) -> None:
        """A primary execution succeeded: close and reset the count."""
        with self._lock:
            self._state = "closed"
            self._failures = 0

    def record_failure(self) -> None:
        """A primary execution hit an infrastructure failure."""
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or self._failures >= self._threshold:
                if self._state != "open":
                    self._trips += 1
                self._state = "open"
                self._opened_at = self._clock()

    def snapshot(self) -> dict[str, Any]:
        """The breaker's state as a JSON-ready dict (for ``/healthz``)."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "failure_threshold": self._threshold,
                "trips": self._trips,
                "reset_timeout_s": self._reset_timeout_s,
            }
