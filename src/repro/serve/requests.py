"""Request model and batch executors: N requests in, one kernel call out.

This module is the service's correctness core. A parsed
:class:`Request` carries a *group key*: requests with equal group keys
may be answered by one batched kernel call, and the executors below
guarantee the per-request answer is bit-identical to the answer a
direct library call would give — the batch kernels are element-wise
along the scenario axis (pinned by ``tests/test_fleet_batch.py`` and
``tests/test_portfolio*.py``), and the response schema deliberately
excludes anything batch-shaped (no global axis-column selection, no
batch indices), so a request's answer cannot depend on who it shared
a batch with.

Three request kinds exist:

* ``scenario`` — dotted-path overrides on the Facebook-like fleet
  preset, answered with the final simulated year's fleet metrics
  (one :func:`~repro.datacenter.fleet.simulate_fleet_batch` call for
  the whole batch).
* ``portfolio`` — scenario-cell overrides on the default device
  catalog, answered with the fleet-aggregated
  :data:`~repro.portfolio.PORTFOLIO_METRICS` row (one
  :func:`~repro.portfolio.sweep_portfolio` call; requests only group
  when they override the same parameter names, which the portfolio
  grid contract requires).
* ``sweep`` — a registered named sweep by name (optionally with
  ``draws``/``seed``), answered with the sweep's result rows;
  identical concurrent sweep requests collapse into one execution and
  warm results come from the shared :class:`~repro.exec.ResultCache`.

Executors return one :class:`Response` per request, in request order.
Degraded execution (``on_error="skip"``) attaches the
:class:`~repro.exec.FailureReport` to every response it taints and
turns requests whose rows were lost into structured errors instead of
silently dropping them.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..errors import ServiceError
from ..exec import ShardPlan, run_sharded
from ..tabular import Table

__all__ = [
    "Request",
    "Response",
    "parse_request",
    "execute_group",
]

#: Request kinds the service accepts, in documentation order.
KINDS = ("scenario", "portfolio", "sweep")

#: Cache-miss sentinel: cached sweep results may legitimately be falsy.
_MISS = object()


@dataclass(frozen=True)
class Request:
    """One parsed, validated service request.

    ``group_key`` decides batch membership: equal keys may share one
    kernel call. ``deadline_s`` is the client's patience budget in
    seconds from admission; the batcher converts it to an absolute
    monotonic deadline at admission time.
    """

    kind: str
    overrides: "tuple[tuple[str, Any], ...]" = ()
    sweep_name: "str | None" = None
    draws: "int | None" = None
    seed: int = 0
    deadline_s: "float | None" = None

    @property
    def group_key(self) -> tuple:
        """Batch-membership key: equal keys may coalesce."""
        if self.kind == "sweep":
            return ("sweep", self.sweep_name, self.draws, self.seed)
        if self.kind == "portfolio":
            # The portfolio grid requires every scenario to define the
            # same parameters, so only same-shaped requests may share a
            # kernel call.
            return ("portfolio", tuple(name for name, _ in self.overrides))
        return ("scenario",)

    @property
    def override_mapping(self) -> dict[str, Any]:
        """The overrides as the dict the sweep runners consume."""
        return dict(self.overrides)


@dataclass
class Response:
    """One structured reply: an HTTP-ish status plus a JSON payload."""

    status: int
    payload: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the status is a success (2xx)."""
        return 200 <= self.status < 300


def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ServiceError(f"{what} must be a JSON object, got "
                           f"{type(value).__name__}")
    return value


def _parse_overrides(body: Mapping[str, Any]) -> "tuple[tuple[str, Any], ...]":
    overrides = body.get("overrides", {})
    _require_mapping(overrides, "'overrides'")
    parsed = []
    for name in sorted(overrides):
        if not isinstance(name, str) or not name:
            raise ServiceError(f"override names must be non-empty strings, "
                               f"got {name!r}")
        value = overrides[name]
        if isinstance(value, bool) or not isinstance(
            value, (numbers.Real, str)
        ):
            raise ServiceError(
                f"override {name!r} must be a number or string, got "
                f"{type(value).__name__}"
            )
        parsed.append((name, value))
    return tuple(parsed)


def _parse_deadline(body: Mapping[str, Any]) -> "float | None":
    deadline = body.get("deadline_s")
    if deadline is None:
        return None
    if isinstance(deadline, bool) or not isinstance(deadline, numbers.Real):
        raise ServiceError(
            f"'deadline_s' must be a number of seconds, got "
            f"{type(deadline).__name__}"
        )
    if deadline <= 0:
        raise ServiceError(f"'deadline_s' must be positive, got {deadline}")
    return float(deadline)


def parse_request(kind: str, body: Any) -> Request:
    """Validate one decoded JSON body into a :class:`Request`.

    Raises :class:`~repro.errors.ServiceError` (the HTTP layer's 400)
    for unknown kinds, malformed overrides, unregistered sweep names,
    or nonsense deadlines.
    """
    from ..scenarios.runner import sweep_names

    if kind not in KINDS:
        raise ServiceError(f"unknown request kind {kind!r}; have {list(KINDS)}")
    body = _require_mapping(body, "request body")
    deadline = _parse_deadline(body)
    if kind == "sweep":
        name = body.get("name")
        if name not in sweep_names():
            raise ServiceError(
                f"unknown sweep {name!r}; have {sweep_names()}"
            )
        draws = body.get("draws")
        if draws is not None:
            if isinstance(draws, bool) or not isinstance(draws, int) or draws <= 0:
                raise ServiceError(
                    f"'draws' must be a positive integer, got {draws!r}"
                )
        seed = body.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ServiceError(f"'seed' must be an integer, got {seed!r}")
        return Request(
            kind="sweep", sweep_name=name, draws=draws, seed=seed,
            deadline_s=deadline,
        )
    return Request(
        kind=kind, overrides=_parse_overrides(body), deadline_s=deadline
    )


def _json_value(value: Any) -> Any:
    """Coerce a table cell (possibly a numpy scalar) to plain JSON."""
    if isinstance(value, bool):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    return value


def _rows(table: Table, columns: Sequence[str]) -> list[dict[str, Any]]:
    """The table as JSON-ready row dicts over ``columns`` only."""
    data = {name: table.column(name) for name in columns}
    return [
        {name: _json_value(data[name][index]) for name in columns}
        for index in range(table.num_rows)
    ]


def _surviving_indices(total: int, report: Any) -> list[int]:
    """Request indices whose rows survived an ``on_error="skip"`` run."""
    lost: set[int] = set()
    for failure in report.failures:
        lost.update(range(failure.start, failure.stop))
    return [index for index in range(total) if index not in lost]


def _scenario_chunk(payload: tuple, start: int, stop: int) -> Table:
    """Chunk kernel: coalesced scenario requests ``[start, stop)``.

    Module-level so pool workers can import it by name. The
    ``scenario`` index column is dropped *inside* the chunk so the
    response schema carries no trace of batch geometry.
    """
    from ..datacenter.fleet import simulate_fleet_batch
    from ..scenarios.runner import apply_overrides

    base, records = payload
    params = [apply_overrides(base, record) for record in records[start:stop]]
    return simulate_fleet_batch(params).final_year_table().drop("scenario")


#: Metric columns of a portfolio response row — a fixed schema, never
#: the batch-dependent axis columns ``sweep_portfolio`` would attach.
_PORTFOLIO_COLUMNS = (
    "devices",
    "units",
    "embodied_t",
    "use_t",
    "total_t",
    "annual_t",
    "embodied_fraction",
    "break_even_days_mean",
)


def _exec_options(options: Mapping[str, Any]) -> dict[str, Any]:
    """Sharding/fault-tolerance kwargs for the sweep runners."""
    forwarded = dict(options)
    if forwarded.get("jobs", 1) == 1:
        # Inline chunks cannot be cancelled; run_sharded rejects the
        # combination, so an unusable timeout is elided rather than
        # turned into a request-killing error.
        forwarded.pop("timeout", None)
    return forwarded


def _execute_scenarios(
    requests: Sequence[Request], options: Mapping[str, Any]
) -> list[Response]:
    """One ``simulate_fleet_batch`` call for N scenario requests."""
    from ..scenarios.presets import facebook_like_fleet

    records = [request.override_mapping for request in requests]
    forwarded = _exec_options(options)
    plan = ShardPlan.plan(
        len(records), forwarded.pop("chunk_size", None),
        forwarded.get("jobs", 1),
    )
    result = run_sharded(
        _scenario_chunk,
        (facebook_like_fleet(), records),
        plan,
        combine=Table.concat,
        **forwarded,
    )
    degraded = isinstance(result, tuple)
    table, report = result if degraded else (result, None)
    rows = _rows(table, table.column_names)
    responses = []
    if degraded:
        survivors = {
            index: row
            for index, row in zip(_surviving_indices(len(records), report), rows)
        }
        for index, request in enumerate(requests):
            row = survivors.get(index)
            if row is None:
                responses.append(_lost_row_response(request, report))
            else:
                responses.append(_ok_response(
                    request, row=row, degraded=True, report=report
                ))
        return responses
    return [
        _ok_response(request, row=row)
        for request, row in zip(requests, rows)
    ]


def _execute_portfolio(
    requests: Sequence[Request], options: Mapping[str, Any]
) -> list[Response]:
    """One ``sweep_portfolio`` call for N same-shaped cell requests."""
    from ..portfolio import default_catalog, sweep_portfolio

    records = [request.override_mapping for request in requests]
    result = sweep_portfolio(
        default_catalog(), records, **_exec_options(options)
    )
    degraded = isinstance(result, tuple)
    table, report = result if degraded else (result, None)
    rows = _rows(table, _PORTFOLIO_COLUMNS)
    # The portfolio shards its *device* axis: a skipped chunk loses
    # devices, not scenarios, so every request keeps a row — computed
    # over the surviving devices and flagged degraded.
    return [
        _ok_response(
            request, row=row, degraded=degraded,
            report=report if degraded else None,
        )
        for request, row in zip(requests, rows)
    ]


def _execute_sweep(
    requests: Sequence[Request],
    options: Mapping[str, Any],
    cache: Any,
    checkpoint_factory: Any,
) -> list[Response]:
    """One named-sweep execution answering every coalesced duplicate.

    Mirrors the ``repro sweep`` CLI's cache discipline: the key folds
    in the sweep name, mode, and :func:`package_fingerprint`; partial
    (degraded) results are never cached.
    """
    from ..exec.cache import cache_key, package_fingerprint
    from ..scenarios.runner import run_sweep, run_uncertain_sweep

    spec = requests[0]
    if spec.draws is None:
        key = cache_key("sweep", spec.sweep_name, "point", package_fingerprint())
    else:
        key = cache_key(
            "sweep", spec.sweep_name, spec.draws, spec.seed,
            package_fingerprint(),
        )
    cached = False
    report = None
    outcome = None
    if cache is not None:
        value = cache.get(key, _MISS)
        if value is not _MISS:
            outcome, cached = value, True
    if outcome is None:
        forwarded = _exec_options(options)
        if cache is not None and checkpoint_factory is not None:
            forwarded["checkpoint"] = checkpoint_factory(spec)
        if spec.draws is None:
            result = run_sweep(spec.sweep_name, **forwarded)
        else:
            result = run_uncertain_sweep(
                spec.sweep_name, spec.draws, spec.seed, **forwarded
            )
        degraded = isinstance(result, tuple)
        outcome, report = result if degraded else (result, None)
        if cache is not None and not degraded:
            cache.put(key, outcome)
    table = (
        outcome if isinstance(outcome, Table) else outcome.quantile_table()
    )
    rows = _rows(table, table.column_names)
    return [
        _ok_response(
            request,
            rows=rows,
            cached=cached,
            degraded=report is not None,
            report=report,
        )
        for request in requests
    ]


def _ok_response(
    request: Request,
    *,
    row: "dict | None" = None,
    rows: "list | None" = None,
    cached: bool = False,
    degraded: bool = False,
    report: Any = None,
) -> Response:
    payload: dict[str, Any] = {"kind": request.kind}
    if request.kind == "sweep":
        payload["name"] = request.sweep_name
        payload["mode"] = "point" if request.draws is None else "uncertain"
        payload["cached"] = cached
    if row is not None:
        payload["row"] = row
    if rows is not None:
        payload["rows"] = rows
    payload["degraded"] = degraded
    if report is not None:
        payload["failure_report"] = report.to_dict()
    return Response(status=200, payload=payload)


def _lost_row_response(request: Request, report: Any) -> Response:
    """A request whose chunk was skipped: a structured failure, not silence."""
    return Response(
        status=500,
        payload={
            "kind": request.kind,
            "error": "chunk_failed",
            "detail": report.summary(),
            "degraded": True,
            "failure_report": report.to_dict(),
        },
    )


def execute_group(
    requests: Sequence[Request],
    *,
    options: Mapping[str, Any],
    cache: Any = None,
    checkpoint_factory: Any = None,
) -> list[Response]:
    """Answer one coalesced batch (equal group keys) with one kernel call.

    ``options`` are :func:`repro.exec.run_sharded` keywords (``jobs``,
    ``chunk_size``, ``retries``, ``timeout``, ``on_error``); ``cache``
    is the shared :class:`~repro.exec.ResultCache` for sweep requests
    and ``checkpoint_factory(request)`` builds their
    :class:`~repro.exec.CheckpointStore`. Returns one
    :class:`Response` per request, in request order. Raises whatever
    the kernels raise — the service layer owns translating failures
    into degraded retries or error responses.
    """
    if not requests:
        return []
    kind = requests[0].kind
    if any(request.group_key != requests[0].group_key for request in requests):
        raise ServiceError("a batch must share one group key")
    if kind == "scenario":
        return _execute_scenarios(requests, options)
    if kind == "portfolio":
        return _execute_portfolio(requests, options)
    return _execute_sweep(requests, options, cache, checkpoint_factory)
