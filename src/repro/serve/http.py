"""A minimal HTTP/1.1 layer on asyncio streams — stdlib only.

The service needs exactly enough HTTP to be a good citizen: request
line + headers + ``Content-Length`` bodies in, status line + JSON out,
keep-alive by default, and hard caps on header and body sizes so a
misbehaving client cannot balloon memory (the same bounded-resource
discipline the admission queue applies to well-formed traffic).
Anything fancier — chunked encoding, TLS, HTTP/2 — is out of scope on
purpose; the point is a dependency-free serving surface for the
batched kernels.

The router contract is tiny: an async callable
``route(method, path, body_bytes) -> (status, payload_dict, headers)``
— :class:`~repro.serve.service.SweepService` provides it, and tests
can provide a stub.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable, Mapping

__all__ = ["STATUS_REASONS", "read_request", "write_response", "serve_connection"]

#: Reason phrases for every status the service emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_HEADER_LINES = 100


class _HttpError(Exception):
    """A malformed request that still deserves a structured reply."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int
) -> "tuple[str, str, bytes, bool] | None":
    """Parse one request: ``(method, path, body, keep_alive)``.

    Returns ``None`` on a clean EOF before a request line (the client
    closed an idle keep-alive connection). Raises :class:`_HttpError`
    for anything malformed or oversized.
    """
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as error:
        raise _HttpError(400, f"request line too long: {error}") from error
    if not request_line:
        return None
    try:
        method, path, version = request_line.decode("ascii").split()
    except ValueError as error:
        raise _HttpError(
            400, f"malformed request line: {request_line[:80]!r}"
        ) from error
    if not version.startswith("HTTP/1."):
        raise _HttpError(400, f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as error:
            raise _HttpError(400, f"header line too long: {error}") from error
        if line in (b"\r\n", b"\n", b""):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise _HttpError(400, f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HttpError(400, f"more than {_MAX_HEADER_LINES} header lines")
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as error:
        raise _HttpError(
            400, f"malformed content-length: {length_text!r}"
        ) from error
    if length < 0:
        raise _HttpError(400, f"negative content-length: {length}")
    if length > max_body:
        raise _HttpError(
            413, f"body of {length} bytes exceeds the {max_body}-byte cap"
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise _HttpError(
                400, f"body truncated at {len(error.partial)}/{length} bytes"
            ) from error
    return method, path, body, keep_alive


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    *,
    keep_alive: bool = True,
    headers: "Mapping[str, str] | None" = None,
) -> None:
    """Serialize ``payload`` as JSON and write one HTTP/1.1 response."""
    body = json.dumps(payload, default=repr).encode("utf-8")
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
    await writer.drain()


async def serve_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    route: Callable[[str, str, bytes], "Awaitable[tuple[int, Any, dict]]"],
    *,
    max_body: int,
    closing: Callable[[], bool] = lambda: False,
) -> None:
    """Serve one keep-alive connection until EOF, error, or drain.

    ``closing()`` is polled after each response; once it reports true
    the connection is told ``Connection: close`` and the loop exits —
    the request that was already read is still answered (the drain
    zero-loss guarantee extends down to the socket).
    """
    try:
        while True:
            try:
                parsed = await read_request(reader, max_body=max_body)
            except _HttpError as error:
                await write_response(
                    writer,
                    error.status,
                    {"error": "bad_request", "detail": error.detail},
                    keep_alive=False,
                )
                break
            if parsed is None:
                break
            method, path, body, keep_alive = parsed
            status, payload, extra_headers = await route(method, path, body)
            keep_alive = keep_alive and not closing()
            await write_response(
                writer,
                status,
                payload,
                keep_alive=keep_alive,
                headers=extra_headers,
            )
            if not keep_alive:
                break
    except (ConnectionError, asyncio.CancelledError):
        pass  # client went away or the server is tearing down
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
