"""Batched sweep runners: a grid in, a Table of results out.

``sweep_fleet`` expands every scenario into a :class:`FleetParameters`
(dotted override paths reach nested dataclasses) and runs them all
through :func:`simulate_fleet_batch` — one vectorized kernel call, not
one simulation per scenario. ``sweep_provisioning`` does the same for
the heterogeneous-provisioning question. ``SWEEPS`` names a few
ready-made decision-space explorations for the ``repro sweep`` CLI.

Every runner accepts ``jobs=``/``chunk_size=`` and routes through
:func:`repro.exec.run_sharded`: the scenario axis is split into
contiguous chunks (peak kernel memory is bounded by ``chunk_size``
scenarios) evaluated inline or over a process pool, and the chunk
tables are stacked with :meth:`repro.tabular.Table.concat`. Sharded
results are element-identical to monolithic runs for any chunk/job
configuration (``tests/test_sharded_equivalence.py``).

The fault-tolerance knobs ride along: ``retries=`` (int or
:class:`repro.exec.RetryPolicy`), per-chunk ``timeout=``,
``on_error="skip"`` (partial results plus a
:class:`repro.exec.FailureReport`), and ``checkpoint=`` (a
:class:`repro.exec.CheckpointStore` for crash-resumable chunk
persistence) all forward to :func:`repro.exec.run_sharded`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.embodied import EmbodiedModel
from ..data.grids import US_GRID
from ..datacenter.fleet import (
    FleetBatchResult,
    FleetParameters,
    simulate_fleet_batch,
)
from ..datacenter.heterogeneity import (
    ServerType,
    WorkloadClass,
    provision_heterogeneous_batch,
    provision_homogeneous_batch,
)
from ..errors import SimulationError
from ..exec import ShardPlan, run_sharded
from ..obs.recorder import active_recorder
from ..tabular import Table
from ..units import CarbonIntensity
from .grid import ScenarioGrid
from .presets import example_service_mix, facebook_like_fleet

__all__ = [
    "apply_overrides",
    "OverridePlan",
    "fleet_scenario_parameters",
    "sweep_fleet",
    "sweep_provisioning",
    "sweep_temporal_shifting",
    "SweepSpec",
    "SWEEPS",
    "sweep_names",
    "run_sweep",
    "run_uncertain_sweep",
]

#: Field-name sets per dataclass type; override application is the
#: (scenarios × draws) hot loop of the uncertainty engine, and
#: rebuilding the set on every path lookup dominated it.
_FIELD_NAMES: dict[type, frozenset[str]] = {}


def _field_names(obj: Any) -> frozenset[str]:
    cls = type(obj)
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = (
            frozenset(field.name for field in dataclasses.fields(obj))
            if dataclasses.is_dataclass(obj)
            else frozenset()
        )
        _FIELD_NAMES[cls] = names
    return names


def apply_overrides(base: Any, overrides: Mapping[str, Any]) -> Any:
    """Return ``base`` with dotted-path dataclass fields replaced.

    ``apply_overrides(params, {"server.lifetime_years": 3.0})`` rebuilds
    the nested frozen dataclasses along the path; every other field is
    shared with ``base``.
    """
    result = base
    for path, value in overrides.items():
        result = _replace_path(result, path, value)
    return result


def _replace_path(obj: Any, path: str, value: Any) -> Any:
    head, _, rest = path.partition(".")
    if head not in _field_names(obj):
        raise SimulationError(
            f"cannot override {path!r}: {type(obj).__name__} has no field "
            f"{head!r}"
        )
    if rest:
        value = _replace_path(getattr(obj, head), rest, value)
    return dataclasses.replace(obj, **{head: value})


class OverridePlan:
    """Compiled dotted-path overrides for one fixed set of paths.

    ``apply_overrides`` walks and validates each path on every call and
    rebuilds every dataclass along it per path; applying the *same*
    paths tens of thousands of times — the (scenarios × draws)
    expansion in :mod:`repro.uncertainty` — wants that work hoisted.
    The plan validates the paths against a template object once,
    groups them by the nested object they touch, and then applies all
    of a draw's values with one ``dataclasses.replace`` per touched
    object. For disjoint paths the result is value-identical to
    sequential :func:`apply_overrides`.
    """

    def __init__(self, template: Any, paths: Sequence[str]) -> None:
        self._paths = tuple(paths)
        self._path_set = frozenset(self._paths)
        if len(self._path_set) != len(self._paths):
            raise SimulationError(f"duplicate override paths in {list(paths)}")
        self._tree = self._compile(template, self._paths, "")

    @property
    def paths(self) -> tuple[str, ...]:
        return self._paths

    @staticmethod
    def _compile(
        template: Any, paths: Sequence[str], prefix: str
    ) -> dict[str, Any]:
        """Group paths into a field tree: leaf -> None, node -> subtree."""
        by_head: dict[str, list[str]] = {}
        for path in paths:
            head, _, rest = path.partition(".")
            if head not in _field_names(template):
                full = f"{prefix}{path}"
                raise SimulationError(
                    f"cannot override {full!r}: "
                    f"{type(template).__name__} has no field {head!r}"
                )
            by_head.setdefault(head, []).append(rest)
        tree: dict[str, Any] = {}
        for head, rests in by_head.items():
            if all(rests):
                tree[head] = OverridePlan._compile(
                    getattr(template, head), rests, f"{prefix}{head}."
                )
            elif len(rests) == 1:
                tree[head] = None
            else:
                raise SimulationError(
                    f"conflicting override paths: {prefix}{head!r} overlaps "
                    + str([
                        f"{prefix}{head}.{rest}" for rest in rests if rest
                    ])
                )
        return tree

    def apply(self, base: Any, values: Mapping[str, Any]) -> Any:
        """``base`` with every planned path replaced by ``values[path]``."""
        if values.keys() != self._path_set:
            raise SimulationError(
                f"plan covers {list(self._paths)}, got values for "
                f"{list(values)}"
            )
        return self._apply(base, self._tree, "", values)

    def _apply(
        self, obj: Any, tree: dict[str, Any], prefix: str, values: Mapping[str, Any]
    ) -> Any:
        kwargs = {}
        for head, subtree in tree.items():
            path = f"{prefix}{head}"
            if subtree is None:
                kwargs[head] = values[path]
            else:
                kwargs[head] = self._apply(
                    getattr(obj, head), subtree, f"{path}.", values
                )
        return dataclasses.replace(obj, **kwargs)


def _reject_distribution_values(scenarios: Sequence[Mapping[str, Any]]) -> None:
    """Deterministic runners cannot evaluate distribution-tagged axes."""
    from ..analysis.uncertainty import is_distribution

    for index, scenario in enumerate(scenarios):
        tagged = [name for name, value in scenario.items() if is_distribution(value)]
        if tagged:
            raise SimulationError(
                f"scenario {index} tags {tagged} with distributions; "
                "deterministic sweeps need point values — run it through "
                "repro.uncertainty (sweep_fleet_uncertain / "
                "'repro sweep --draws N') instead"
            )


def fleet_scenario_parameters(
    base: FleetParameters, scenarios: Iterable[Mapping[str, Any]]
) -> list[FleetParameters]:
    """One :class:`FleetParameters` per scenario dict."""
    records = [dict(scenario) for scenario in scenarios]
    _reject_distribution_values(records)
    return [apply_overrides(base, scenario) for scenario in records]


def _fleet_chunk(payload: tuple, start: int, stop: int) -> Table:
    """Chunk kernel: scenarios ``[start, stop)`` of a fleet sweep.

    Module-level so :func:`repro.exec.run_sharded` workers can import
    it by name; axis-column selection (``keep``) is decided over the
    *full* record list, so every chunk emits identical columns.
    """
    base, records, embodied, keep = payload
    chunk = records[start:stop]
    batch = simulate_fleet_batch(
        [apply_overrides(base, record) for record in chunk], embodied
    )
    return _attach_axes(chunk, batch.final_year_table(), keep=keep)


def sweep_fleet(
    base: FleetParameters,
    scenarios: Iterable[Mapping[str, Any]],
    embodied: EmbodiedModel | None = None,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> Table:
    """Run a fleet scenario sweep through the batched kernel.

    Returns one row per scenario: the scenario's axis values followed
    by its final simulated year's fleet metrics. ``jobs``/``chunk_size``
    shard the scenario axis through :func:`repro.exec.run_sharded`;
    the result is element-identical for every configuration. The
    fault-tolerance knobs (``retries``/``timeout``/``on_error``/
    ``checkpoint``) forward to the sharded driver; under
    ``on_error="skip"`` the return value becomes a ``(Table,
    FailureReport)`` pair covering only the surviving scenarios.
    """
    records = [dict(scenario) for scenario in scenarios]
    if not records:
        raise SimulationError("need at least one scenario")
    _reject_distribution_values(records)
    plan = ShardPlan.plan(len(records), chunk_size, jobs)
    payload = (base, records, embodied, _scalar_axis_names(records))
    with active_recorder().span(
        "batch", fn="sweep_fleet", scenarios=len(records)
    ):
        return run_sharded(
            _fleet_chunk,
            payload,
            plan,
            jobs=jobs,
            combine=Table.concat,
            retries=retries,
            timeout=timeout,
            on_error=on_error,
            checkpoint=checkpoint,
        )


def _reject_distribution_axis(name: str, values: np.ndarray) -> None:
    """Array axes of a deterministic sweep must be numeric."""
    if values.dtype == object:
        raise SimulationError(
            f"axis {name!r} holds non-numeric values (distribution-tagged "
            "axes go through repro.uncertainty.sweep_provisioning_uncertain "
            "or 'repro sweep --draws N')"
        )


def _scalar_axis_names(
    records: Sequence[Mapping[str, Any]],
    label: Callable[[Any], Any] = lambda value: value,
) -> list[str]:
    """Axis names whose values are plain scalars in *every* scenario.

    Axis values may be rich objects (portfolios, servers); only scalar
    axes become result columns. The decision is global so chunked runs
    keep exactly the columns a monolithic run would. ``label`` maps
    values before the check — the uncertain sweeps pass
    :func:`repro.uncertainty.axis_label` so distribution tags (which
    render as strings) also qualify.
    """
    return [
        name
        for name in records[0]
        if all(
            isinstance(label(record[name]), (int, float, str, bool))
            for record in records
        )
    ]


def _attach_axes(
    records: Sequence[Mapping[str, Any]],
    results: Table,
    keep: Sequence[str] | None = None,
) -> Table:
    """Prefix result rows with their scenario's axis values."""
    if not records:
        raise SimulationError("need at least one scenario")
    if keep is None:
        keep = _scalar_axis_names(records)
    columns: dict[str, Any] = {
        name.replace(".", "_"): [record[name] for record in records]
        for name in keep
    }
    for name in results.column_names:
        if name != "scenario":
            columns[name] = results.column(name)
    return Table(columns)


def _provisioning_chunk(payload: tuple, start: int, stop: int) -> Table:
    """Chunk kernel: scenarios ``[start, stop)`` of a provisioning sweep.

    The provisioning kernels are elementwise along the scenario axis,
    so slicing the (target, scale) arrays yields exactly the rows a
    monolithic call would produce for those scenarios.
    """
    workloads, general, server_types, target_axis, scale_axis, grid, model = (
        payload
    )
    targets = target_axis[start:stop]
    scales = scale_axis[start:stop]
    homogeneous = provision_homogeneous_batch(
        workloads, general, targets, scales
    )
    heterogeneous = provision_heterogeneous_batch(
        workloads, server_types, targets, scales
    )
    homo_total = homogeneous.total_per_year_grams(grid, model)
    hetero_total = heterogeneous.total_per_year_grams(grid, model)
    return Table(
        {
            "utilization_target": targets,
            "demand_scale": scales,
            "servers_homogeneous": homogeneous.total_servers(),
            "servers_heterogeneous": heterogeneous.total_servers(),
            "total_t_homogeneous": homo_total / 1e6,
            "total_t_heterogeneous": hetero_total / 1e6,
            "carbon_saving_fraction": 1.0 - hetero_total / homo_total,
        }
    )


def sweep_provisioning(
    workloads: Sequence[WorkloadClass],
    general: ServerType,
    server_types: Sequence[ServerType],
    utilization_targets: "float | Sequence[float]" = 0.6,
    demand_scales: "float | Sequence[float]" = 1.0,
    grid: CarbonIntensity | None = None,
    model: EmbodiedModel | None = None,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> Table:
    """Homogeneous vs heterogeneous provisioning across scenarios.

    Scenario axes are the cartesian product of utilization targets and
    demand scale factors; both fleets are provisioned by the batched
    kernels and priced in embodied + operational carbon.
    ``jobs``/``chunk_size`` shard the scenario axis through
    :func:`repro.exec.run_sharded` with element-identical results;
    ``retries``/``timeout``/``on_error``/``checkpoint`` forward to the
    fault-tolerant driver.
    """
    grid = grid or US_GRID.intensity
    model = model or EmbodiedModel()
    _reject_distribution_axis(
        "utilization_targets", np.atleast_1d(np.asarray(utilization_targets))
    )
    _reject_distribution_axis(
        "demand_scales", np.atleast_1d(np.asarray(demand_scales))
    )
    targets = np.atleast_1d(np.asarray(utilization_targets, dtype=np.float64))
    scales = np.atleast_1d(np.asarray(demand_scales, dtype=np.float64))
    target_axis = np.repeat(targets, len(scales))
    scale_axis = np.tile(scales, len(targets))
    plan = ShardPlan.plan(int(target_axis.shape[0]), chunk_size, jobs)
    payload = (
        tuple(workloads),
        general,
        tuple(server_types),
        target_axis,
        scale_axis,
        grid,
        model,
    )
    with active_recorder().span(
        "batch", fn="sweep_provisioning", scenarios=int(target_axis.shape[0])
    ):
        return run_sharded(
            _provisioning_chunk,
            payload,
            plan,
            jobs=jobs,
            combine=Table.concat,
            retries=retries,
            timeout=timeout,
            on_error=on_error,
            checkpoint=checkpoint,
        )


def sweep_temporal_shifting(
    hours: int = 72,
    *,
    capacity_kw: float = 2500.0,
    stochastic_seeds: "tuple[int, ...]" = (0, 1),
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> Table:
    """Carbon-aware scheduling across the bundled trace catalog.

    Runs the default policy spectrum (agnostic / aware / slack-bounded)
    over every bundled intensity profile and two canonical workload
    streams through the batched evaluator — the temporal analogue of
    the fleet and provisioning sweeps. The canonical workloads span
    two days, so the horizon must cover at least 48 hours.
    ``jobs``/``chunk_size`` shard the trace axis of the evaluator;
    ``retries``/``timeout``/``on_error``/``checkpoint`` forward to the
    fault-tolerant driver.
    """
    from ..traces import canonical_workloads, evaluate_policies, profile_catalog

    if hours < 48:
        raise SimulationError(
            "the temporal-shifting sweep's workloads span two days; "
            f"need hours >= 48, got {hours}"
        )
    catalog = profile_catalog(hours, stochastic_seeds=stochastic_seeds)
    return evaluate_policies(
        catalog,
        canonical_workloads(),
        capacity_kw=capacity_kw,
        jobs=jobs,
        chunk_size=chunk_size,
        retries=retries,
        timeout=timeout,
        on_error=on_error,
        checkpoint=checkpoint,
    )


@dataclass(frozen=True)
class SweepSpec:
    """A named, CLI-runnable decision-space exploration.

    ``build`` runs the deterministic point-estimate sweep;
    ``build_uncertain(draws, seed)``, when present, runs the same
    decision space with its elusive parameters tagged as distributions
    and returns an :class:`repro.uncertainty.UncertainResult`
    (``repro sweep NAME --draws N``). Both callables accept
    ``jobs=``/``chunk_size=`` keywords and forward them to the sharded
    runners.

    ``axis_size``, when present, reports the length of the axis the
    sweep's sharded runner actually chunks when that is *not* the
    result row count — the ``portfolio`` sweep shards its device
    catalog, not its scenario grid — so fault-injection tooling can
    compute valid chunk starts.
    """

    name: str
    description: str
    build: Callable[..., Table]
    build_uncertain: "Callable[..., Any] | None" = None
    axis_size: "Callable[[], int] | None" = None


def _fleet_growth_lifetime(**exec_options: Any) -> Table:
    grid = ScenarioGrid(
        **{
            "annual_growth": [0.0, 0.1, 0.25, 0.5],
            "server.lifetime_years": [2.0, 3.0, 4.0, 6.0],
        }
    )
    return sweep_fleet(facebook_like_fleet(), grid, **exec_options)


def _fleet_pue_utilization(**exec_options: Any) -> Table:
    grid = ScenarioGrid(
        **{
            "facility.pue": [1.07, 1.1, 1.25, 1.5],
            "utilization": [0.25, 0.45, 0.65, 0.85],
        }
    )
    return sweep_fleet(facebook_like_fleet(), grid, **exec_options)


def _provisioning_mix(**exec_options: Any) -> Table:
    workloads, general, server_types = example_service_mix()
    return sweep_provisioning(
        workloads,
        general,
        server_types,
        utilization_targets=[0.4, 0.5, 0.6, 0.7, 0.8],
        demand_scales=[0.5, 1.0, 2.0, 4.0],
        **exec_options,
    )


def _fleet_growth_lifetime_uncertain(
    draws: int, seed: int, **exec_options: Any
):
    """Growth × lifetime axes with PUE and utilization left elusive."""
    from ..analysis.uncertainty import Normal, Triangular
    from ..uncertainty import sweep_fleet_uncertain

    grid = ScenarioGrid(
        **{
            "annual_growth": [0.0, 0.1, 0.25, 0.5],
            "server.lifetime_years": [2.0, 3.0, 4.0, 6.0],
            "facility.pue": [Triangular(1.07, 1.10, 1.30)],
            "utilization": [Normal(0.45, 0.05)],
        }
    )
    return sweep_fleet_uncertain(
        facebook_like_fleet(),
        grid,
        draws=draws,
        seed=seed,
        **exec_options,
    )


def _fleet_pue_utilization_uncertain(
    draws: int, seed: int, **exec_options: Any
):
    """PUE × utilization axes with growth and lifetime left elusive."""
    from ..analysis.uncertainty import Mixture, Normal
    from ..uncertainty import sweep_fleet_uncertain

    grid = ScenarioGrid(
        **{
            "facility.pue": [1.07, 1.1, 1.25, 1.5],
            "utilization": [0.25, 0.45, 0.65, 0.85],
            "annual_growth": [Normal(0.25, 0.05)],
            "server.lifetime_years": [
                Mixture.discrete({3.0: 0.3, 4.0: 0.5, 6.0: 0.2})
            ],
        }
    )
    return sweep_fleet_uncertain(
        facebook_like_fleet(),
        grid,
        draws=draws,
        seed=seed,
        **exec_options,
    )


def _provisioning_mix_uncertain(
    draws: int, seed: int, **exec_options: Any
):
    """Utilization-target axis with a log-normal demand forecast."""
    from ..analysis.uncertainty import LogNormal
    from ..uncertainty import sweep_provisioning_uncertain

    workloads, general, server_types = example_service_mix()
    return sweep_provisioning_uncertain(
        workloads,
        general,
        server_types,
        utilization_targets=[0.4, 0.5, 0.6, 0.7, 0.8],
        demand_scales=[LogNormal.from_median(1.0, 0.35)],
        draws=draws,
        seed=seed,
        **exec_options,
    )


def _temporal_shifting_uncertain(
    draws: int, seed: int, **exec_options: Any
):
    """Policy savings bands across seeded weather/demand noise draws."""
    from ..uncertainty import sweep_temporal_shifting_uncertain

    return sweep_temporal_shifting_uncertain(
        draws=draws, seed=seed, **exec_options
    )


def _device_portfolio(**exec_options: Any) -> Table:
    """Default catalog across node-shrink, fab-grid, and lifetime axes."""
    from ..portfolio import default_catalog, sweep_portfolio

    grid = ScenarioGrid(
        **{
            "node_shift": [0.0, 1.0, 2.0],
            "fab_intensity_g_per_kwh": [583.0, 250.0],
            "lifetime_scale": [1.0, 1.5],
        }
    )
    return sweep_portfolio(default_catalog(), grid, **exec_options)


def _device_portfolio_uncertain(
    draws: int, seed: int, **exec_options: Any
):
    """Node-shrink axis with fab-yield and lifetime left elusive."""
    from ..analysis.uncertainty import LogNormal, Triangular
    from ..portfolio import default_catalog, sweep_portfolio_uncertain

    grid = ScenarioGrid(
        **{
            "node_shift": [0.0, 1.0, 2.0],
            "defect_density_scale": [LogNormal.from_median(1.0, 0.25)],
            "lifetime_scale": [Triangular(0.8, 1.0, 1.4)],
        }
    )
    return sweep_portfolio_uncertain(
        default_catalog(), grid, draws=draws, seed=seed, **exec_options
    )


def _device_portfolio_axis_size() -> int:
    """The portfolio sweep shards its device catalog, not its grid."""
    from ..portfolio import default_catalog

    return len(default_catalog())


SWEEPS: dict[str, SweepSpec] = {
    spec.name: spec
    for spec in (
        SweepSpec(
            name="fleet_growth_lifetime",
            description=(
                "Final-year opex/capex split of the Facebook-like fleet "
                "across growth rates and server lifetimes"
            ),
            build=_fleet_growth_lifetime,
            build_uncertain=_fleet_growth_lifetime_uncertain,
        ),
        SweepSpec(
            name="fleet_pue_utilization",
            description=(
                "Final-year fleet footprint across facility PUE and "
                "steady-state utilization"
            ),
            build=_fleet_pue_utilization,
            build_uncertain=_fleet_pue_utilization_uncertain,
        ),
        SweepSpec(
            name="provisioning_mix",
            description=(
                "Homogeneous vs heterogeneous provisioning carbon across "
                "utilization targets and demand scales"
            ),
            build=_provisioning_mix,
            build_uncertain=_provisioning_mix_uncertain,
        ),
        SweepSpec(
            name="temporal_shifting",
            description=(
                "Carbon-aware scheduling policies across the bundled "
                "intensity-trace catalog and canonical workloads"
            ),
            build=sweep_temporal_shifting,
            build_uncertain=_temporal_shifting_uncertain,
        ),
        SweepSpec(
            name="portfolio",
            description=(
                "Fleet embodied + use-phase carbon of the default device "
                "catalog across node-shrink, fab-grid, and lifetime axes"
            ),
            build=_device_portfolio,
            build_uncertain=_device_portfolio_uncertain,
            axis_size=_device_portfolio_axis_size,
        ),
    )
}


def sweep_names() -> list[str]:
    """The registered sweep names, in registry order."""
    return list(SWEEPS)


def _run_options(
    jobs: int,
    chunk_size: int | None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> dict[str, Any]:
    """Execution kwargs for a sweep builder, defaults elided.

    Default settings pass no keywords at all, so a registered
    ``SweepSpec`` whose builders predate the execution layer (zero-arg
    ``build``, ``build_uncertain(draws, seed)``) keeps working until
    someone actually asks it to shard or survive faults.
    """
    options: dict[str, Any] = {}
    if jobs != 1:
        options["jobs"] = jobs
    if chunk_size is not None:
        options["chunk_size"] = chunk_size
    if retries is not None:
        options["retries"] = retries
    if timeout is not None:
        options["timeout"] = timeout
    if on_error != "raise":
        options["on_error"] = on_error
    if checkpoint is not None:
        options["checkpoint"] = checkpoint
    return options


def run_sweep(
    name: str,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> Table:
    """Run one named sweep and return its result table.

    ``jobs``/``chunk_size`` shard the sweep's scenario axis (see
    :mod:`repro.exec`); the table is identical for every setting. The
    fault-tolerance knobs forward to the sharded driver; under
    ``on_error="skip"`` the return value becomes a ``(Table,
    FailureReport)`` pair.
    """
    if name not in SWEEPS:
        raise SimulationError(
            f"unknown sweep {name!r}; have {sweep_names()}"
        )
    with active_recorder().span("sweep", name=name, mode="point") as span:
        result = SWEEPS[name].build(
            **_run_options(
                jobs, chunk_size, retries, timeout, on_error, checkpoint
            )
        )
        table = result[0] if isinstance(result, tuple) else result
        rows = getattr(table, "num_rows", None)
        if rows is not None:
            span.note(rows=rows)
        return result


def run_uncertain_sweep(
    name: str,
    draws: int,
    seed: int = 0,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> Any:
    """Run one named sweep's distribution-tagged variant.

    Returns the :class:`repro.uncertainty.UncertainResult`; raises for
    sweeps that have no uncertain variant registered. Sharding via
    ``jobs``/``chunk_size`` preserves the per-scenario seeded draw
    streams, so the samples are bit-identical for every setting — and
    the fault-tolerance knobs extend that guarantee across recovered
    worker failures.
    """
    if name not in SWEEPS:
        raise SimulationError(
            f"unknown sweep {name!r}; have {sweep_names()}"
        )
    spec = SWEEPS[name]
    if spec.build_uncertain is None:
        raise SimulationError(
            f"sweep {name!r} has no distribution-tagged variant; "
            "run it without --draws"
        )
    with active_recorder().span(
        "sweep", name=name, mode="uncertain", draws=draws, seed=seed
    ) as span:
        result = spec.build_uncertain(
            draws,
            seed,
            **_run_options(
                jobs, chunk_size, retries, timeout, on_error, checkpoint
            ),
        )
        outcome = result[0] if isinstance(result, tuple) else result
        scenarios = getattr(outcome, "num_scenarios", None)
        if scenarios is not None:
            span.note(rows=scenarios * outcome.draws)
        return result
