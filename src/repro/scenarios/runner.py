"""Batched sweep runners: a grid in, a Table of results out.

``sweep_fleet`` expands every scenario into a :class:`FleetParameters`
(dotted override paths reach nested dataclasses) and runs them all
through :func:`simulate_fleet_batch` — one vectorized kernel call, not
one simulation per scenario. ``sweep_provisioning`` does the same for
the heterogeneous-provisioning question. ``SWEEPS`` names a few
ready-made decision-space explorations for the ``repro sweep`` CLI.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.embodied import EmbodiedModel
from ..data.grids import US_GRID
from ..datacenter.fleet import (
    FleetBatchResult,
    FleetParameters,
    simulate_fleet_batch,
)
from ..datacenter.heterogeneity import (
    ServerType,
    WorkloadClass,
    provision_heterogeneous_batch,
    provision_homogeneous_batch,
)
from ..errors import SimulationError
from ..tabular import Table
from ..units import CarbonIntensity
from .grid import ScenarioGrid
from .presets import example_service_mix, facebook_like_fleet

__all__ = [
    "apply_overrides",
    "fleet_scenario_parameters",
    "sweep_fleet",
    "sweep_provisioning",
    "sweep_temporal_shifting",
    "SweepSpec",
    "SWEEPS",
    "sweep_names",
    "run_sweep",
]


def apply_overrides(base: Any, overrides: Mapping[str, Any]) -> Any:
    """Return ``base`` with dotted-path dataclass fields replaced.

    ``apply_overrides(params, {"server.lifetime_years": 3.0})`` rebuilds
    the nested frozen dataclasses along the path; every other field is
    shared with ``base``.
    """
    result = base
    for path, value in overrides.items():
        result = _replace_path(result, path, value)
    return result


def _replace_path(obj: Any, path: str, value: Any) -> Any:
    head, _, rest = path.partition(".")
    if not dataclasses.is_dataclass(obj) or head not in {
        field.name for field in dataclasses.fields(obj)
    }:
        raise SimulationError(
            f"cannot override {path!r}: {type(obj).__name__} has no field "
            f"{head!r}"
        )
    if rest:
        value = _replace_path(getattr(obj, head), rest, value)
    return dataclasses.replace(obj, **{head: value})


def fleet_scenario_parameters(
    base: FleetParameters, scenarios: Iterable[Mapping[str, Any]]
) -> list[FleetParameters]:
    """One :class:`FleetParameters` per scenario dict."""
    return [apply_overrides(base, scenario) for scenario in scenarios]


def sweep_fleet(
    base: FleetParameters,
    scenarios: Iterable[Mapping[str, Any]],
    embodied: EmbodiedModel | None = None,
) -> Table:
    """Run a fleet scenario sweep through the batched kernel.

    Returns one row per scenario: the scenario's axis values followed
    by its final simulated year's fleet metrics.
    """
    records = [dict(scenario) for scenario in scenarios]
    batch = simulate_fleet_batch(
        fleet_scenario_parameters(base, records), embodied
    )
    return _attach_axes(records, batch.final_year_table())


def _attach_axes(records: Sequence[Mapping[str, Any]], results: Table) -> Table:
    """Prefix result rows with their scenario's axis values."""
    if not records:
        raise SimulationError("need at least one scenario")
    columns: dict[str, Any] = {}
    for name in records[0]:
        values = [record[name] for record in records]
        # Axis values may be rich objects (portfolios, servers); only
        # scalar axes become columns.
        if all(isinstance(value, (int, float, str, bool)) for value in values):
            columns[name.replace(".", "_")] = values
    for name in results.column_names:
        if name != "scenario":
            columns[name] = results.column(name)
    return Table(columns)


def sweep_provisioning(
    workloads: Sequence[WorkloadClass],
    general: ServerType,
    server_types: Sequence[ServerType],
    utilization_targets: "float | Sequence[float]" = 0.6,
    demand_scales: "float | Sequence[float]" = 1.0,
    grid: CarbonIntensity | None = None,
    model: EmbodiedModel | None = None,
) -> Table:
    """Homogeneous vs heterogeneous provisioning across scenarios.

    Scenario axes are the cartesian product of utilization targets and
    demand scale factors; both fleets are provisioned by the batched
    kernels and priced in embodied + operational carbon.
    """
    grid = grid or US_GRID.intensity
    model = model or EmbodiedModel()
    targets = np.atleast_1d(np.asarray(utilization_targets, dtype=np.float64))
    scales = np.atleast_1d(np.asarray(demand_scales, dtype=np.float64))
    target_axis = np.repeat(targets, len(scales))
    scale_axis = np.tile(scales, len(targets))

    homogeneous = provision_homogeneous_batch(
        workloads, general, target_axis, scale_axis
    )
    heterogeneous = provision_heterogeneous_batch(
        workloads, server_types, target_axis, scale_axis
    )
    homo_total = homogeneous.total_per_year_grams(grid, model)
    hetero_total = heterogeneous.total_per_year_grams(grid, model)
    return Table(
        {
            "utilization_target": target_axis,
            "demand_scale": scale_axis,
            "servers_homogeneous": homogeneous.total_servers(),
            "servers_heterogeneous": heterogeneous.total_servers(),
            "total_t_homogeneous": homo_total / 1e6,
            "total_t_heterogeneous": hetero_total / 1e6,
            "carbon_saving_fraction": 1.0 - hetero_total / homo_total,
        }
    )


def sweep_temporal_shifting(
    hours: int = 72,
    *,
    capacity_kw: float = 2500.0,
    stochastic_seeds: "tuple[int, ...]" = (0, 1),
) -> Table:
    """Carbon-aware scheduling across the bundled trace catalog.

    Runs the default policy spectrum (agnostic / aware / slack-bounded)
    over every bundled intensity profile and two canonical workload
    streams through the batched evaluator — the temporal analogue of
    the fleet and provisioning sweeps. The canonical workloads span
    two days, so the horizon must cover at least 48 hours.
    """
    from ..traces import (
        diurnal_workload,
        evaluate_policies,
        profile_catalog,
        training_workload,
    )

    if hours < 48:
        raise SimulationError(
            "the temporal-shifting sweep's workloads span two days; "
            f"need hours >= 48, got {hours}"
        )
    catalog = profile_catalog(hours, stochastic_seeds=stochastic_seeds)
    workloads = [
        diurnal_workload(days=2),
        training_workload(num_jobs=8, horizon_hours=48),
    ]
    return evaluate_policies(catalog, workloads, capacity_kw=capacity_kw)


@dataclass(frozen=True)
class SweepSpec:
    """A named, CLI-runnable decision-space exploration."""

    name: str
    description: str
    build: Callable[[], Table]


def _fleet_growth_lifetime() -> Table:
    grid = ScenarioGrid(
        **{
            "annual_growth": [0.0, 0.1, 0.25, 0.5],
            "server.lifetime_years": [2.0, 3.0, 4.0, 6.0],
        }
    )
    return sweep_fleet(facebook_like_fleet(), grid)


def _fleet_pue_utilization() -> Table:
    grid = ScenarioGrid(
        **{
            "facility.pue": [1.07, 1.1, 1.25, 1.5],
            "utilization": [0.25, 0.45, 0.65, 0.85],
        }
    )
    return sweep_fleet(facebook_like_fleet(), grid)


def _provisioning_mix() -> Table:
    workloads, general, server_types = example_service_mix()
    return sweep_provisioning(
        workloads,
        general,
        server_types,
        utilization_targets=[0.4, 0.5, 0.6, 0.7, 0.8],
        demand_scales=[0.5, 1.0, 2.0, 4.0],
    )


SWEEPS: dict[str, SweepSpec] = {
    spec.name: spec
    for spec in (
        SweepSpec(
            name="fleet_growth_lifetime",
            description=(
                "Final-year opex/capex split of the Facebook-like fleet "
                "across growth rates and server lifetimes"
            ),
            build=_fleet_growth_lifetime,
        ),
        SweepSpec(
            name="fleet_pue_utilization",
            description=(
                "Final-year fleet footprint across facility PUE and "
                "steady-state utilization"
            ),
            build=_fleet_pue_utilization,
        ),
        SweepSpec(
            name="provisioning_mix",
            description=(
                "Homogeneous vs heterogeneous provisioning carbon across "
                "utilization targets and demand scales"
            ),
            build=_provisioning_mix,
        ),
        SweepSpec(
            name="temporal_shifting",
            description=(
                "Carbon-aware scheduling policies across the bundled "
                "intensity-trace catalog and canonical workloads"
            ),
            build=sweep_temporal_shifting,
        ),
    )
}


def sweep_names() -> list[str]:
    """The registered sweep names, in registry order."""
    return list(SWEEPS)


def run_sweep(name: str) -> Table:
    """Run one named sweep and return its result table."""
    if name not in SWEEPS:
        raise SimulationError(
            f"unknown sweep {name!r}; have {sweep_names()}"
        )
    return SWEEPS[name].build()
