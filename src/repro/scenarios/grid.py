"""Parameter grids: the scenario axes of a sweep.

A scenario is a flat mapping from parameter path to value (dotted
paths reach into nested dataclasses: ``"server.lifetime_years"``).
:class:`ScenarioGrid` enumerates the cartesian product of named axes;
:class:`ScenarioSet` holds an explicit (e.g. zipped) list of
scenarios. Both are ordered, sized iterables of dicts, which is all
the batched runners in :mod:`repro.scenarios.runner` require.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Mapping, Sequence

from ..errors import SimulationError
from ..tabular import Table

__all__ = ["ScenarioGrid", "ScenarioSet"]


def _check_axes(axes: Mapping[str, Sequence[Any]]) -> dict[str, list[Any]]:
    if not axes:
        raise SimulationError("a scenario grid needs at least one axis")
    checked: dict[str, list[Any]] = {}
    for name, values in axes.items():
        if not isinstance(name, str) or not name:
            raise SimulationError(
                f"axis names must be non-empty strings, got {name!r}"
            )
        values = list(values)
        if not values:
            raise SimulationError(f"axis {name!r} has no values")
        checked[name] = values
    return checked


class ScenarioGrid:
    """The cartesian product of named parameter axes.

    Iterates scenarios in row-major order (the last axis varies
    fastest), so the scenario index is a mixed-radix encoding of the
    axis positions — stable across runs and easy to reason about in
    result tables.

    >>> grid = ScenarioGrid(growth=[0.1, 0.2], lifetime=[3, 4, 5])
    >>> len(grid)
    6
    >>> next(iter(grid))
    {'growth': 0.1, 'lifetime': 3}
    """

    def __init__(self, **axes: Sequence[Any]) -> None:
        self._axes = _check_axes(axes)

    @property
    def names(self) -> list[str]:
        return list(self._axes)

    @property
    def axes(self) -> dict[str, list[Any]]:
        return {name: list(values) for name, values in self._axes.items()}

    def __len__(self) -> int:
        size = 1
        for values in self._axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[dict[str, Any]]:
        names = self.names
        for combo in itertools.product(*self._axes.values()):
            yield dict(zip(names, combo))

    def scenarios(self) -> list[dict[str, Any]]:
        return list(self)

    def to_table(self) -> Table:
        """One row per scenario, one column per axis."""
        return Table.from_records(self.scenarios())

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}[{len(values)}]" for name, values in self._axes.items()
        )
        return f"ScenarioGrid({sizes}; {len(self)} scenarios)"


class ScenarioSet:
    """An explicit, ordered list of scenarios.

    Use :meth:`zipped` when axes should advance in lockstep instead of
    multiplying out (e.g. a (growth, matching-ramp) trajectory), or
    :meth:`from_records` for hand-picked scenario lists.
    """

    def __init__(self, scenarios: Sequence[Mapping[str, Any]]) -> None:
        records = [dict(record) for record in scenarios]
        if not records:
            raise SimulationError("a scenario set needs at least one scenario")
        names = list(records[0])
        for record in records:
            if list(record) != names:
                raise SimulationError(
                    "every scenario must define the same parameters in the "
                    f"same order; expected {names}, got {list(record)}"
                )
        self._records = records
        self._names = names

    @classmethod
    def zipped(cls, **axes: Sequence[Any]) -> "ScenarioSet":
        """Zip equally sized axes into one scenario per position."""
        checked = _check_axes(axes)
        lengths = {len(values) for values in checked.values()}
        if len(lengths) != 1:
            raise SimulationError(
                "zipped axes must be equally sized, got "
                + ", ".join(
                    f"{name}[{len(values)}]" for name, values in checked.items()
                )
            )
        names = list(checked)
        return cls(
            [dict(zip(names, combo)) for combo in zip(*checked.values())]
        )

    @classmethod
    def from_records(
        cls, records: Sequence[Mapping[str, Any]]
    ) -> "ScenarioSet":
        return cls(records)

    @property
    def names(self) -> list[str]:
        return list(self._names)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for record in self._records:
            yield dict(record)

    def scenarios(self) -> list[dict[str, Any]]:
        return list(self)

    def to_table(self) -> Table:
        return Table.from_records(self._records)

    def __repr__(self) -> str:
        return f"ScenarioSet({len(self)} scenarios over {self._names})"
