"""Scenario engine: sweep thousands of fleet what-ifs in one call.

The paper's capex-dominance claim becomes a design tool once growth
rates, lifetimes, PUE, renewable ramps, and SKU mixes can be swept as
grids instead of edited one simulation at a time. This package
supplies the axes (:class:`ScenarioGrid`, :class:`ScenarioSet`), the
batched runners (:func:`sweep_fleet`, :func:`sweep_provisioning`,
:func:`sweep_temporal_shifting`) built on the struct-of-arrays
datacenter and trace kernels, and the named sweeps behind the
``repro sweep`` CLI.
"""

from .grid import ScenarioGrid, ScenarioSet
from .presets import example_service_mix, facebook_like_fleet, wind_solar_portfolio
from .runner import (
    SWEEPS,
    OverridePlan,
    SweepSpec,
    apply_overrides,
    fleet_scenario_parameters,
    run_sweep,
    run_uncertain_sweep,
    sweep_fleet,
    sweep_names,
    sweep_provisioning,
    sweep_temporal_shifting,
)

__all__ = [
    "ScenarioGrid",
    "ScenarioSet",
    "facebook_like_fleet",
    "example_service_mix",
    "wind_solar_portfolio",
    "apply_overrides",
    "OverridePlan",
    "fleet_scenario_parameters",
    "sweep_fleet",
    "sweep_provisioning",
    "sweep_temporal_shifting",
    "SweepSpec",
    "SWEEPS",
    "sweep_names",
    "run_sweep",
    "run_uncertain_sweep",
]
