"""Canonical base configurations the named sweeps perturb.

These used to live inside individual experiment drivers; the scenario
engine hoists them one layer down so sweeps, experiments, and examples
share a single source of truth. The experiment modules re-export them
under their historical names.
"""

from __future__ import annotations

from ..data.energy_sources import source_by_name
from ..data.grids import US_GRID
from ..datacenter.facility import Facility
from ..datacenter.fleet import FleetParameters
from ..datacenter.heterogeneity import ServerType, WorkloadClass
from ..datacenter.renewable import PPAContract, RenewablePortfolio
from ..datacenter.server import AI_TRAINING_SERVER, STORAGE_SERVER, WEB_SERVER
from ..units import Carbon, Energy

__all__ = [
    "wind_solar_portfolio",
    "facebook_like_fleet",
    "example_service_mix",
]


def wind_solar_portfolio(wind_gwh: float, solar_gwh: float) -> RenewablePortfolio:
    """A PPA book with the hyperscalers' wind-heavy tilt."""
    contracts: list[PPAContract] = []
    if wind_gwh > 0.0:
        contracts.append(
            PPAContract("wind_ppa", source_by_name("wind"), Energy.gwh(wind_gwh))
        )
    if solar_gwh > 0.0:
        contracts.append(
            PPAContract("solar_ppa", source_by_name("solar"), Energy.gwh(solar_gwh))
        )
    return RenewablePortfolio(tuple(contracts))


def facebook_like_fleet() -> FleetParameters:
    """A 2014-2019 fleet with an aggressive renewable ramp (ext04)."""
    facility = Facility(
        name="prineville_like",
        pue=1.10,
        construction_carbon=Carbon.kilotonnes(120.0),
    )
    return FleetParameters(
        server=WEB_SERVER,
        facility=facility,
        location_intensity=US_GRID.intensity,
        initial_servers=50_000,
        annual_growth=0.25,
        utilization=0.45,
        years=6,
        start_year=2014,
        # The ramp leans into wind (11 g/kWh) the way the hyperscalers'
        # PPA books do; by the final year contracts cover all demand.
        renewable_ramp={
            0: wind_solar_portfolio(30.0, 10.0),
            1: wind_solar_portfolio(80.0, 30.0),
            2: wind_solar_portfolio(160.0, 60.0),
            3: wind_solar_portfolio(320.0, 80.0),
            4: wind_solar_portfolio(600.0, 80.0),
            5: wind_solar_portfolio(1200.0, 100.0),
        },
    )


def example_service_mix() -> tuple[list[WorkloadClass], ServerType, list[ServerType]]:
    """A three-service mix plus general and specialized SKUs (ext08).

    The general SKU runs everything but is slow at AI and video; the
    accelerator SKU is ~12x faster at AI inference, the storage SKU
    ~3x at video. Throughputs are requests (or streams) per second.
    """
    workloads = [
        WorkloadClass("web", demand_rps=900_000.0),
        WorkloadClass("ai_inference", demand_rps=400_000.0),
        WorkloadClass("video", demand_rps=60_000.0),
    ]
    general = ServerType(
        config=WEB_SERVER,
        throughput_rps={"web": 1_500.0, "ai_inference": 120.0, "video": 25.0},
    )
    accelerator = ServerType(
        config=AI_TRAINING_SERVER,
        throughput_rps={"ai_inference": 4_000.0},
    )
    video_sku = ServerType(
        config=STORAGE_SERVER,
        throughput_rps={"video": 80.0},
    )
    return workloads, general, [general, accelerator, video_sku]
