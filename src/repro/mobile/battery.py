"""Battery and usage-profile model for the mobile use phase.

Vendor LCAs compute the use stage from a modeled usage profile, the
regional grid, and the charging chain's efficiency (the paper's
"battery-efficiency overhead in mobile platforms", Section II-B). This
module builds that stage bottom-up so the curated LCA use fractions can
be cross-validated instead of taken on faith.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..units import Carbon, CarbonIntensity, Energy, Power, SECONDS_PER_HOUR

__all__ = ["Battery", "UsageProfile", "DEFAULT_SMARTPHONE_PROFILE",
           "annual_wall_energy", "use_phase_bottom_up"]

_HOURS_PER_DAY = 24.0
_DAYS_PER_YEAR = 365.0


@dataclass(frozen=True, slots=True)
class Battery:
    """A device battery and its charging chain.

    ``charge_efficiency`` is the wall-to-battery round-trip efficiency
    (charger losses, conversion, battery heat) — typically 0.70-0.85
    for phones.
    """

    capacity_wh: float
    charge_efficiency: float = 0.75
    cycle_life: int = 800

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0.0:
            raise SimulationError("battery capacity must be positive")
        if not 0.0 < self.charge_efficiency <= 1.0:
            raise SimulationError("charge efficiency must be in (0, 1]")
        if self.cycle_life <= 0:
            raise SimulationError("cycle life must be positive")

    def wall_energy_for(self, device_energy: Energy) -> Energy:
        """Grid energy needed to deliver ``device_energy`` to the device."""
        return device_energy * (1.0 / self.charge_efficiency)

    def cycles_for(self, device_energy: Energy) -> float:
        """Equivalent full charge cycles consumed by ``device_energy``."""
        return device_energy.watt_hours_value / self.capacity_wh

    def lifetime_years_by_cycles(self, annual_device_energy: Energy) -> float:
        """Years until the battery's rated cycles are exhausted."""
        cycles_per_year = self.cycles_for(annual_device_energy)
        if cycles_per_year <= 0.0:
            raise SimulationError("annual device energy must be positive")
        return self.cycle_life / cycles_per_year


@dataclass(frozen=True, slots=True)
class UsageProfile:
    """How a device is used, for the use-phase model."""

    active_hours_per_day: float
    active_power: Power
    standby_power: Power

    def __post_init__(self) -> None:
        if not 0.0 <= self.active_hours_per_day <= _HOURS_PER_DAY:
            raise SimulationError("active hours must be within a day")
        if self.active_power.watts_value < self.standby_power.watts_value:
            raise SimulationError("active power below standby power")

    def daily_device_energy(self) -> Energy:
        active = self.active_power.energy_over(
            self.active_hours_per_day * SECONDS_PER_HOUR
        )
        standby = self.standby_power.energy_over(
            (_HOURS_PER_DAY - self.active_hours_per_day) * SECONDS_PER_HOUR
        )
        return active + standby

    def annual_device_energy(self) -> Energy:
        return self.daily_device_energy() * _DAYS_PER_YEAR


#: A heavy-but-plausible smartphone profile, calibrated so the
#: bottom-up use phase lands near the vendor-reported iPhone 11 use
#: stage (~9 kWh/yr at the wall).
DEFAULT_SMARTPHONE_PROFILE = UsageProfile(
    active_hours_per_day=5.5,
    active_power=Power.watts(3.2),
    standby_power=Power.watts(0.04),
)


def annual_wall_energy(
    profile: UsageProfile, battery: Battery
) -> Energy:
    """Grid-side annual energy for a usage profile through a battery."""
    return battery.wall_energy_for(profile.annual_device_energy())


def use_phase_bottom_up(
    profile: UsageProfile,
    battery: Battery,
    grid: CarbonIntensity,
    lifetime_years: float,
) -> Carbon:
    """Bottom-up use-stage carbon over a device lifetime."""
    if lifetime_years <= 0.0:
        raise SimulationError("lifetime must be positive")
    per_year = grid.carbon_for(annual_wall_energy(profile, battery))
    return per_year * lifetime_years
