"""Mobile SoC and processor models.

A :class:`MobileSoC` aggregates the compute units the paper exercises
(CPU cluster, GPU, DSP) with enough microarchitectural detail for a
roofline latency estimate: peak arithmetic throughput, memory
bandwidth, and achievable efficiency. The shipped instance mirrors the
Qualcomm Snapdragon 845 in the Google Pixel 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import DataValidationError

__all__ = ["MobileProcessor", "MobileSoC", "SNAPDRAGON_845"]


@dataclass(frozen=True, slots=True)
class MobileProcessor:
    """One compute unit on a mobile SoC.

    ``peak_gflops`` is the unit's theoretical arithmetic peak for the
    numeric format CNN inference uses on it (fp32 on CPU/GPU, int8 on
    DSP — we fold format differences into the peak).
    ``compute_efficiency`` is the fraction of that peak real CNN layers
    achieve; ``bandwidth_efficiency`` likewise for DRAM streaming.
    """

    name: str
    kind: str
    peak_gflops: float
    memory_bandwidth_gbs: float
    typical_active_power_w: float
    compute_efficiency: float = 0.35
    bandwidth_efficiency: float = 0.60

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu", "dsp"):
            raise DataValidationError(f"{self.name}: unknown kind {self.kind!r}")
        for field_name in (
            "peak_gflops",
            "memory_bandwidth_gbs",
            "typical_active_power_w",
        ):
            if getattr(self, field_name) <= 0.0:
                raise DataValidationError(f"{self.name}: {field_name} must be positive")
        for field_name in ("compute_efficiency", "bandwidth_efficiency"):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise DataValidationError(
                    f"{self.name}: {field_name} must be in (0, 1]"
                )

    @property
    def effective_gflops(self) -> float:
        return self.peak_gflops * self.compute_efficiency

    @property
    def effective_bandwidth_gbs(self) -> float:
        return self.memory_bandwidth_gbs * self.bandwidth_efficiency


@dataclass(frozen=True)
class MobileSoC:
    """A mobile system-on-chip: die, node, and compute units."""

    name: str
    process_node_name: str
    die_area_mm2: float
    processors: Mapping[str, MobileProcessor] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.die_area_mm2 <= 0.0:
            raise DataValidationError(f"{self.name}: die area must be positive")
        if not self.processors:
            raise DataValidationError(f"{self.name}: needs at least one processor")
        for key, processor in self.processors.items():
            if key != processor.kind:
                raise DataValidationError(
                    f"{self.name}: processor keyed {key!r} has kind "
                    f"{processor.kind!r}"
                )
        object.__setattr__(self, "processors", dict(self.processors))

    def processor(self, kind: str) -> MobileProcessor:
        if kind not in self.processors:
            raise DataValidationError(
                f"{self.name}: no {kind!r} unit; have {sorted(self.processors)}"
            )
        return self.processors[kind]


#: The Pixel 3's SoC. Peaks are the commonly cited figures; the DSP
#: peak reflects its int8 tensor throughput.
SNAPDRAGON_845 = MobileSoC(
    name="snapdragon_845",
    process_node_name="10nm",
    die_area_mm2=94.0,
    processors={
        "cpu": MobileProcessor(
            name="kryo_385",
            kind="cpu",
            # Folded peak: 4x A75 @ 2.8 GHz with NEON int8 dot products
            # (NN runtimes quantize), ~180 GOPS.
            peak_gflops=180.0,
            memory_bandwidth_gbs=29.8,
            typical_active_power_w=4.0,
            compute_efficiency=0.50,
        ),
        "gpu": MobileProcessor(
            name="adreno_630",
            kind="gpu",
            peak_gflops=727.0,
            memory_bandwidth_gbs=29.8,
            typical_active_power_w=4.5,
            compute_efficiency=0.25,
        ),
        "dsp": MobileProcessor(
            name="hexagon_685",
            kind="dsp",
            peak_gflops=1024.0,
            memory_bandwidth_gbs=29.8,
            typical_active_power_w=2.5,
            compute_efficiency=0.20,
        ),
    },
)
