"""Monsoon power-monitor simulator.

The paper measured Pixel 3 power with a Monsoon high-voltage power
monitor: a shunt in the battery path sampled at 5 kHz. We have no
phone or monitor, so this module synthesizes the traces the monitor
would record: an idle floor, square-wave inference bursts at the
calibrated sustained power, and multiplicative sampling noise from a
seeded generator. Downstream code integrates the trace exactly as a
lab script would — numerically, via the trapezoid rule — so the full
measurement code path is exercised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..units import Energy, Power
from .inference import InferenceEstimate

__all__ = ["PowerTrace", "MonsoonSimulator"]

#: The Monsoon HV monitor's sampling rate.
DEFAULT_SAMPLE_RATE_HZ = 5000.0


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power waveform (watts at a fixed sample rate)."""

    samples_w: np.ndarray
    sample_rate_hz: float

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0.0:
            raise SimulationError("sample rate must be positive")
        samples = np.asarray(self.samples_w, dtype=float)
        if samples.ndim != 1 or samples.size < 2:
            raise SimulationError("a trace needs at least two samples")
        if np.any(samples < 0.0):
            raise SimulationError("power samples must be non-negative")
        object.__setattr__(self, "samples_w", samples)

    @property
    def duration_s(self) -> float:
        return (self.samples_w.size - 1) / self.sample_rate_hz

    @property
    def average_power(self) -> Power:
        return Power.watts(float(np.mean(self.samples_w)))

    @property
    def peak_power(self) -> Power:
        return Power.watts(float(np.max(self.samples_w)))

    def energy(self) -> Energy:
        """Trapezoid-rule integral of the waveform."""
        dt = 1.0 / self.sample_rate_hz
        joules = float(np.trapezoid(self.samples_w, dx=dt))
        return Energy(joules)

    def above(self, threshold_w: float) -> float:
        """Fraction of samples above a power threshold (burst detection)."""
        return float(np.mean(self.samples_w > threshold_w))

    def detect_bursts(self, threshold_w: float) -> list[tuple[float, float]]:
        """Contiguous intervals above ``threshold_w``.

        Returns (start_s, end_s) pairs — the lab procedure for
        counting inference bursts in a recorded trace and checking the
        run matched the intended workload.
        """
        mask = self.samples_w > threshold_w
        if not mask.any():
            return []
        bursts: list[tuple[float, float]] = []
        dt = 1.0 / self.sample_rate_hz
        in_burst = False
        start_index = 0
        for index, active in enumerate(mask):
            if active and not in_burst:
                in_burst = True
                start_index = index
            elif not active and in_burst:
                in_burst = False
                bursts.append((start_index * dt, index * dt))
        if in_burst:
            bursts.append((start_index * dt, (len(mask) - 1) * dt))
        return bursts

    def downsample(self, factor: int) -> "PowerTrace":
        """Average consecutive blocks of ``factor`` samples.

        Preserves the trace's mean power (and hence its energy) up to
        the truncated tail block — the standard way to shrink a 5 kHz
        Monsoon capture for storage.
        """
        if factor <= 0:
            raise SimulationError("downsample factor must be positive")
        if factor == 1:
            return self
        usable = (self.samples_w.size // factor) * factor
        if usable < 2 * factor:
            raise SimulationError("trace too short for that downsample factor")
        blocks = self.samples_w[:usable].reshape(-1, factor)
        return PowerTrace(blocks.mean(axis=1), self.sample_rate_hz / factor)


class MonsoonSimulator:
    """Generates the traces a Monsoon monitor would record."""

    def __init__(
        self,
        sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ,
        noise_fraction: float = 0.02,
        seed: int = 0,
    ) -> None:
        if sample_rate_hz <= 0.0:
            raise SimulationError("sample rate must be positive")
        if not 0.0 <= noise_fraction < 1.0:
            raise SimulationError("noise fraction must be in [0, 1)")
        self.sample_rate_hz = sample_rate_hz
        self.noise_fraction = noise_fraction
        self._rng = np.random.default_rng(seed)

    def _noisy(self, ideal: np.ndarray) -> np.ndarray:
        if self.noise_fraction == 0.0:
            return ideal
        noise = self._rng.normal(1.0, self.noise_fraction, size=ideal.shape)
        return np.clip(ideal * noise, 0.0, None)

    def constant(self, power: Power, duration_s: float) -> PowerTrace:
        """A steady draw (idle screen-off phone, or a saturated burst)."""
        if duration_s <= 0.0:
            raise SimulationError("duration must be positive")
        count = max(int(duration_s * self.sample_rate_hz) + 1, 2)
        ideal = np.full(count, power.watts_value)
        return PowerTrace(self._noisy(ideal), self.sample_rate_hz)

    def inference_burst(
        self,
        estimate: InferenceEstimate,
        num_inferences: int,
        idle_power_w: float,
        inter_arrival_s: float = 0.0,
    ) -> PowerTrace:
        """Bursts of inference at sustained power over an idle floor.

        ``inter_arrival_s`` inserts idle gaps between inferences
        (continuous back-to-back inference when zero, the Figure 10
        assumption).
        """
        if num_inferences <= 0:
            raise SimulationError("number of inferences must be positive")
        if idle_power_w < 0.0:
            raise SimulationError("idle power must be non-negative")
        if inter_arrival_s < 0.0:
            raise SimulationError("inter-arrival gap must be non-negative")
        active_samples = max(int(estimate.latency_s * self.sample_rate_hz), 1)
        gap_samples = int(inter_arrival_s * self.sample_rate_hz)
        period = []
        for index in range(num_inferences):
            period.append(np.full(active_samples, estimate.power.watts_value))
            if gap_samples and index != num_inferences - 1:
                period.append(np.full(gap_samples, idle_power_w))
        ideal = np.concatenate(period)
        if ideal.size < 2:
            ideal = np.repeat(ideal, 2)
        return PowerTrace(self._noisy(ideal), self.sample_rate_hz)

    def measure_energy_per_inference(
        self,
        estimate: InferenceEstimate,
        num_inferences: int,
        idle_power_w: float,
    ) -> Energy:
        """Lab procedure: record a burst, integrate, subtract the idle
        floor, divide by the inference count."""
        trace = self.inference_burst(estimate, num_inferences, idle_power_w)
        gross = trace.energy()
        idle = Power.watts(idle_power_w).energy_over(trace.duration_s)
        net_joules = max(gross.joules - idle.joules, 0.0)
        return Energy(net_joules / num_inferences)
