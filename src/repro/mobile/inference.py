"""CNN inference simulator for mobile SoCs.

Layers two models:

* a **roofline estimate** — latency is bounded below by compute time
  (model flops over the unit's effective arithmetic rate) and memory
  time (weight traffic over effective bandwidth);
* a **calibration table** — measured (latency, power) records override
  the roofline where available, exactly the way a lab pairs an
  analytical model with Monsoon measurements. The shipped table is
  :data:`repro.data.measurements.PIXEL3_MEASUREMENTS`.

The simulator answers the questions Figures 9 and 10 ask: latency,
energy per inference, throughput, and sustained power per
(model, processor) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..data.measurements import PIXEL3_MEASUREMENTS, MeasurementRecord
from ..data.workloads import CNNModel, cnn_by_name
from ..errors import CalibrationError, SimulationError
from ..units import Energy, Power
from .processors import MobileSoC, SNAPDRAGON_845

__all__ = ["InferenceEstimate", "InferenceSimulator"]


@dataclass(frozen=True, slots=True)
class InferenceEstimate:
    """What the simulator reports for one (model, processor) pair."""

    model: str
    processor: str
    latency_s: float
    power: Power
    calibrated: bool

    @property
    def throughput_ips(self) -> float:
        return 1.0 / self.latency_s

    @property
    def energy_per_inference(self) -> Energy:
        return self.power.energy_over(self.latency_s)


class InferenceSimulator:
    """Latency/energy model for CNN inference on a mobile SoC."""

    def __init__(
        self,
        soc: MobileSoC = SNAPDRAGON_845,
        calibration: Iterable[MeasurementRecord] = PIXEL3_MEASUREMENTS,
    ) -> None:
        self.soc = soc
        self._calibration: dict[tuple[str, str], MeasurementRecord] = {}
        for record in calibration:
            key = (record.model, record.processor)
            if key in self._calibration:
                raise CalibrationError(f"duplicate calibration record for {key}")
            self._calibration[key] = record

    # ------------------------------------------------------------------
    # Roofline model
    # ------------------------------------------------------------------
    def roofline_latency_s(self, model: CNNModel, processor_kind: str) -> float:
        """Analytic lower-bound latency from flops and weight traffic."""
        unit = self.soc.processor(processor_kind)
        compute_s = model.gflops / unit.effective_gflops
        memory_s = model.model_bytes / (unit.effective_bandwidth_gbs * 1e9)
        return max(compute_s, memory_s)

    def roofline_power(self, processor_kind: str) -> Power:
        return Power.watts(self.soc.processor(processor_kind).typical_active_power_w)

    # ------------------------------------------------------------------
    # Calibrated estimates
    # ------------------------------------------------------------------
    def estimate(self, model_name: str, processor_kind: str) -> InferenceEstimate:
        """Best available estimate: calibrated if measured, else roofline."""
        key = (model_name, processor_kind)
        if key in self._calibration:
            record = self._calibration[key]
            return InferenceEstimate(
                model=model_name,
                processor=processor_kind,
                latency_s=record.latency_s,
                power=record.power,
                calibrated=True,
            )
        model = cnn_by_name(model_name)
        return InferenceEstimate(
            model=model_name,
            processor=processor_kind,
            latency_s=self.roofline_latency_s(model, processor_kind),
            power=self.roofline_power(processor_kind),
            calibrated=False,
        )

    def latency_s(self, model_name: str, processor_kind: str) -> float:
        return self.estimate(model_name, processor_kind).latency_s

    def energy_per_inference(self, model_name: str, processor_kind: str) -> Energy:
        return self.estimate(model_name, processor_kind).energy_per_inference

    def throughput_ips(self, model_name: str, processor_kind: str) -> float:
        return self.estimate(model_name, processor_kind).throughput_ips

    def sustained_power(self, model_name: str, processor_kind: str) -> Power:
        return self.estimate(model_name, processor_kind).power

    # ------------------------------------------------------------------
    # Batch runs and calibration diagnostics
    # ------------------------------------------------------------------
    def run(
        self, model_name: str, processor_kind: str, num_inferences: int
    ) -> tuple[float, Energy]:
        """Duration and energy of a back-to-back inference burst."""
        if num_inferences <= 0:
            raise SimulationError("number of inferences must be positive")
        estimate = self.estimate(model_name, processor_kind)
        duration_s = estimate.latency_s * num_inferences
        energy = estimate.power.energy_over(duration_s)
        return duration_s, energy

    def calibration_residual(self, model_name: str, processor_kind: str) -> float:
        """Measured latency over roofline latency (>= 1 when sane).

        The residual is the framework/overhead factor the analytic model
        misses; the tests assert it never drops below 1 (a measurement
        beating the roofline bound would mean a calibration bug).
        """
        key = (model_name, processor_kind)
        if key not in self._calibration:
            raise CalibrationError(f"no calibration record for {key}")
        model = cnn_by_name(model_name)
        bound = self.roofline_latency_s(model, processor_kind)
        if bound <= 0.0:
            raise CalibrationError(f"degenerate roofline bound for {key}")
        return self._calibration[key].latency_s / bound

    def calibrated_pairs(self) -> list[tuple[str, str]]:
        return sorted(self._calibration.keys())

    def comparison_table(
        self, model_names: Iterable[str], processor_kinds: Iterable[str]
    ) -> list[Mapping[str, object]]:
        """Figure 9 rows: latency and energy per (model, processor)."""
        rows: list[Mapping[str, object]] = []
        for model_name in model_names:
            for kind in processor_kinds:
                estimate = self.estimate(model_name, kind)
                rows.append(
                    {
                        "model": model_name,
                        "processor": kind,
                        "latency_ms": estimate.latency_s * 1e3,
                        "energy_mj": estimate.energy_per_inference.joules * 1e3,
                        "power_w": estimate.power.watts_value,
                        "throughput_ips": estimate.throughput_ips,
                        "calibrated": estimate.calibrated,
                    }
                )
        return rows
