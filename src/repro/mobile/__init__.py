"""Mobile-platform substrate: SoC, inference, and power measurement.

Reproduces the paper's Pixel 3 case study (Figures 9 and 10) without
the physical phone or Monsoon power monitor: a Snapdragon-845-like SoC
model, a roofline-flavored inference simulator calibrated to the
paper's measurements, a power-monitor simulator that produces sampled
traces, and a device model that ties the SoC to its life-cycle record
for break-even analysis.
"""

from .processors import MobileProcessor, MobileSoC, SNAPDRAGON_845
from .inference import InferenceSimulator, InferenceEstimate
from .power_monitor import MonsoonSimulator, PowerTrace
from .device import MobilePhone, pixel3
from .battery import (
    Battery,
    UsageProfile,
    DEFAULT_SMARTPHONE_PROFILE,
    annual_wall_energy,
    use_phase_bottom_up,
)

__all__ = [
    "MobileProcessor",
    "MobileSoC",
    "SNAPDRAGON_845",
    "InferenceSimulator",
    "InferenceEstimate",
    "MonsoonSimulator",
    "PowerTrace",
    "MobilePhone",
    "pixel3",
    "Battery",
    "UsageProfile",
    "DEFAULT_SMARTPHONE_PROFILE",
    "annual_wall_energy",
    "use_phase_bottom_up",
]
