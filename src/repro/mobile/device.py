"""Whole-phone model: life cycle plus inference energy (Figure 10).

:class:`MobilePhone` ties a product's LCA record to an inference
simulator so the paper's break-even questions become one-liners:

>>> phone = pixel3()
>>> round(phone.break_even_images("mobilenet_v3", "cpu") / 1e9, 1)
5.0
>>> round(phone.break_even_days("mobilenet_v3", "cpu"))
350

The break-even methods are batch-friendly: a ``grid`` wrapping a 1-D
numpy draw array yields one break-even per draw, with no intermediate
coercion through Python floats — element ``i`` of the array result is
bit-identical to a scalar call at ``grid[i]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.amortization import (
    AmortizationSchedule,
    break_even_days,
    break_even_units,
)
from ..core.lca import ProductLCA
from ..data.devices import device_by_name
from ..data.grids import US_GRID
from ..errors import SimulationError
from ..units import Carbon, CarbonIntensity, SECONDS_PER_DAY
from .inference import InferenceSimulator
from .processors import MobileSoC, SNAPDRAGON_845

__all__ = ["MobilePhone", "pixel3"]


@dataclass(frozen=True)
class MobilePhone:
    """A phone with a life cycle record and an inference simulator."""

    lca: ProductLCA
    soc: MobileSoC
    simulator: InferenceSimulator
    grid: CarbonIntensity = field(default_factory=lambda: US_GRID.intensity)

    # ------------------------------------------------------------------
    # Embodied carbon attribution
    # ------------------------------------------------------------------
    @property
    def ic_capex(self) -> Carbon:
        """Embodied carbon of the integrated circuits.

        Uses the LCA's component split when present, otherwise the
        paper's fallback assumption that half of production emissions
        are integrated circuits.
        """
        if "integrated_circuits" in self.lca.component_fractions:
            return self.lca.component_carbon("integrated_circuits")
        return self.lca.production_carbon * 0.5

    # ------------------------------------------------------------------
    # Break-even analysis (Figure 10)
    # ------------------------------------------------------------------
    def carbon_per_inference(self, model_name: str, processor_kind: str) -> Carbon:
        energy = self.simulator.energy_per_inference(model_name, processor_kind)
        return self.grid.carbon_for(energy)

    def break_even_images(
        self, model_name: str, processor_kind: str
    ) -> "float | np.ndarray":
        """Inferences until operational carbon equals the IC capex.

        Array-valued grids return one break-even per draw.
        """
        return break_even_units(
            self.ic_capex, self.carbon_per_inference(model_name, processor_kind)
        )

    def break_even_days(
        self, model_name: str, processor_kind: str
    ) -> "float | np.ndarray":
        """Days of continuous inference until opex equals IC capex.

        Array-valued grids return one break-even per draw.
        """
        power = self.simulator.sustained_power(model_name, processor_kind)
        return break_even_days(self.ic_capex, power, self.grid)

    def amortization(self, model_name: str, processor_kind: str) -> AmortizationSchedule:
        return AmortizationSchedule(
            capex=self.ic_capex,
            power=self.simulator.sustained_power(model_name, processor_kind),
            grid=self.grid,
        )

    def amortizes_within_lifetime(
        self, model_name: str, processor_kind: str
    ) -> "bool | np.ndarray":
        """Does break-even land inside the device's service life?

        Scalar grids return a plain ``bool``; array-valued grids return
        an elementwise boolean array, one verdict per draw.
        """
        lifetime_s = self.lca.lifetime_years * 365.0 * SECONDS_PER_DAY
        if lifetime_s <= 0.0:
            raise SimulationError("device lifetime must be positive")
        verdict = (
            self.break_even_days(model_name, processor_kind) * SECONDS_PER_DAY
            <= lifetime_s
        )
        if isinstance(verdict, np.ndarray):
            return verdict
        return bool(verdict)


def pixel3(grid: CarbonIntensity | None = None) -> MobilePhone:
    """The paper's measurement platform, fully wired."""
    return MobilePhone(
        lca=device_by_name("pixel_3"),
        soc=SNAPDRAGON_845,
        simulator=InferenceSimulator(),
        grid=grid if grid is not None else US_GRID.intensity,
    )
