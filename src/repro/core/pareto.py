"""Pareto-frontier tools for performance-vs-carbon tradeoffs.

Figure 8 plots MobileNet v1 inference throughput (maximize) against
manufacturing carbon footprint (minimize) for a corpus of phones and
draws two Pareto frontiers (devices through 2017, devices through
2019). This module extracts such frontiers, tests dominance, and
quantifies how a frontier moved between two years — the paper's
observation that the frontier shifted *right* (more performance)
rather than *down* (less carbon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import SimulationError

__all__ = ["ParetoPoint", "dominates", "pareto_frontier", "frontier_shift"]


@dataclass(frozen=True, slots=True)
class ParetoPoint:
    """A labeled point in (performance, cost) space.

    ``performance`` is maximized (e.g., inferences per second) and
    ``cost`` is minimized (e.g., kg CO2e of manufacturing).
    """

    label: str
    performance: float
    cost: float

    def __post_init__(self) -> None:
        if self.performance < 0.0 or self.cost < 0.0:
            raise SimulationError(
                f"{self.label}: performance and cost must be non-negative"
            )


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` on both axes and
    strictly better on at least one."""
    at_least_as_good = a.performance >= b.performance and a.cost <= b.cost
    strictly_better = a.performance > b.performance or a.cost < b.cost
    return at_least_as_good and strictly_better


def pareto_frontier(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by ascending cost.

    Within the frontier, performance is strictly increasing with cost —
    a property the tests rely on.
    """
    candidates = list(points)
    if not candidates:
        return []
    frontier = [
        point
        for point in candidates
        if not any(dominates(other, point) for other in candidates)
    ]
    # Deduplicate identical coordinates (keep first label).
    seen: dict[tuple[float, float], ParetoPoint] = {}
    for point in frontier:
        seen.setdefault((point.cost, point.performance), point)
    return sorted(seen.values(), key=lambda point: (point.cost, point.performance))


def frontier_shift(
    earlier: Sequence[ParetoPoint], later: Sequence[ParetoPoint]
) -> dict[str, float]:
    """Quantify how a frontier moved between two snapshots.

    Returns:

    * ``performance_gain`` — ratio of the later frontier's best
      performance to the earlier frontier's best performance (>1 means
      the frontier extended right).
    * ``cost_reduction`` — ratio of the earlier frontier's lowest cost
      to the later frontier's lowest cost (>1 means the frontier
      extended down, i.e. cheaper carbon became available).

    The paper's finding is performance_gain >> cost_reduction.
    """
    if not earlier or not later:
        raise SimulationError("both frontiers need at least one point")
    earlier_best_perf = max(point.performance for point in earlier)
    later_best_perf = max(point.performance for point in later)
    earlier_min_cost = min(point.cost for point in earlier)
    later_min_cost = min(point.cost for point in later)
    if earlier_best_perf <= 0.0 or later_min_cost <= 0.0:
        raise SimulationError("frontier extremes must be positive for ratios")
    return {
        "performance_gain": later_best_perf / earlier_best_perf,
        "cost_reduction": earlier_min_cost / later_min_cost,
    }
