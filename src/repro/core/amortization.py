"""Break-even analysis between embodied (capex) and operational (opex) carbon.

Implements the Figure 10 math: given a manufacturing footprint and an
operational emission rate, when does cumulative operational carbon
equal the embodied carbon? The paper expresses the answer three ways —
number of inferences, days of continuous operation, and a comparison
against the device lifetime — and this module supports all three plus
full amortization schedules.

The break-even functions are batch-friendly: quantities may wrap 1-D
numpy draw arrays (see :mod:`repro.units`), in which case each function
returns an array of break-evens — one per draw. This is what
``monte_carlo(..., vectorized=True)`` relies on to evaluate a model
once over every sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..units import SECONDS_PER_DAY, SECONDS_PER_YEAR, Carbon, CarbonIntensity, Energy, Power

__all__ = [
    "break_even_units",
    "break_even_seconds",
    "break_even_days",
    "break_even_years",
    "AmortizationSchedule",
]


def _any(condition: "bool | np.ndarray") -> bool:
    """Truth of a validation predicate over a scalar or a draw array,
    without paying numpy dispatch on the scalar fast path."""
    if isinstance(condition, np.ndarray):
        return bool(condition.any())
    return bool(condition)


def break_even_units(capex: Carbon, carbon_per_unit: Carbon) -> float:
    """How many units of work until operational carbon equals ``capex``.

    A "unit" is whatever the caller's rate describes — one inference for
    Figure 10 (top).
    """
    if _any(capex.grams < 0.0):
        raise SimulationError("capex must be non-negative")
    if _any(carbon_per_unit.grams <= 0.0):
        raise SimulationError("per-unit carbon must be positive")
    return capex.grams / carbon_per_unit.grams


def break_even_seconds(capex: Carbon, power: Power, grid: CarbonIntensity) -> float:
    """Seconds of continuous draw at ``power`` until opex equals capex."""
    if _any(capex.grams < 0.0):
        raise SimulationError("capex must be non-negative")
    if _any(power.watts_value <= 0.0):
        raise SimulationError("power must be positive")
    if _any(grid.grams_per_kwh <= 0.0):
        raise SimulationError(
            "grid intensity must be positive for a finite break-even"
        )
    grams_per_second = grid.carbon_for(power.energy_over(1.0)).grams
    return capex.grams / grams_per_second


def break_even_days(capex: Carbon, power: Power, grid: CarbonIntensity) -> float:
    """Days of continuous operation until opex equals capex (Fig. 10 bottom)."""
    return break_even_seconds(capex, power, grid) / SECONDS_PER_DAY


def break_even_years(capex: Carbon, power: Power, grid: CarbonIntensity) -> float:
    """Years of continuous operation until opex equals capex."""
    return break_even_seconds(capex, power, grid) / SECONDS_PER_YEAR


@dataclass(frozen=True)
class AmortizationSchedule:
    """Cumulative opex vs fixed capex over elapsed operating time.

    >>> schedule = AmortizationSchedule(
    ...     capex=Carbon.kg(25.0),
    ...     power=Power.watts(5.0),
    ...     grid=CarbonIntensity.g_per_kwh(380.0),
    ... )
    >>> schedule.opex_after(schedule.break_even_seconds()).kilograms  # == capex
    25.0
    """

    capex: Carbon
    power: Power
    grid: CarbonIntensity

    def __post_init__(self) -> None:
        if self.capex.grams < 0.0:
            raise SimulationError("capex must be non-negative")
        if self.power.watts_value <= 0.0:
            raise SimulationError("power must be positive")

    def energy_after(self, seconds: float) -> Energy:
        if seconds < 0.0:
            raise SimulationError("elapsed time must be non-negative")
        return self.power.energy_over(seconds)

    def opex_after(self, seconds: float) -> Carbon:
        return self.grid.carbon_for(self.energy_after(seconds))

    def total_after(self, seconds: float) -> Carbon:
        return self.capex + self.opex_after(seconds)

    def opex_share_after(self, seconds: float) -> float:
        """Opex fraction of total footprint after ``seconds`` of use."""
        opex = self.opex_after(seconds)
        total = self.capex + opex
        if total.grams == 0.0:
            raise SimulationError("zero total footprint; share undefined")
        return opex.grams / total.grams

    def break_even_seconds(self) -> float:
        return break_even_seconds(self.capex, self.power, self.grid)

    def break_even_days(self) -> float:
        return break_even_days(self.capex, self.power, self.grid)

    def amortized_within(self, lifetime_seconds: float) -> bool:
        """True when the break-even falls inside the device lifetime."""
        if lifetime_seconds <= 0.0:
            raise SimulationError("lifetime must be positive")
        return self.break_even_seconds() <= lifetime_seconds
