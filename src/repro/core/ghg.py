"""GHG Protocol accounting: scopes, categories, inventories, series.

The paper's organization-level analysis (Section II-A, Figures 11 and
12, Table I) follows the Greenhouse Gas Protocol. This module provides:

* :class:`Scope` — Scope 1, Scope 2 (location- and market-based), and
  Scope 3 (upstream / downstream).
* :class:`GHGEntry` — one ledger line: scope, category, mass of CO2e,
  and its opex/capex classification.
* :class:`GHGInventory` — an organization-year of entries with scope
  totals, category breakdowns, and the opex/capex split the paper
  builds its argument on.
* :class:`ReportSeries` — a multi-year sequence of inventories (one
  Figure 11 panel).
* :class:`ScopeTaxonomy` — the qualitative Table I mapping from company
  type to the salient emissions in each scope.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..errors import AccountingError
from ..tabular import Table
from ..units import Carbon

__all__ = [
    "Scope",
    "OpexCapex",
    "GHGEntry",
    "GHGInventory",
    "ReportSeries",
    "ScopeTaxonomy",
    "default_classification",
]


class Scope(enum.Enum):
    """GHG Protocol emission scopes.

    Scope 2 is split into its location-based and market-based variants
    because the renewable-energy story of Figure 11 lives exactly in the
    gap between the two.
    """

    SCOPE1 = "scope1"
    SCOPE2_LOCATION = "scope2_location"
    SCOPE2_MARKET = "scope2_market"
    SCOPE3_UPSTREAM = "scope3_upstream"
    SCOPE3_DOWNSTREAM = "scope3_downstream"

    @property
    def is_scope3(self) -> bool:
        return self in (Scope.SCOPE3_UPSTREAM, Scope.SCOPE3_DOWNSTREAM)

    @property
    def is_scope2(self) -> bool:
        return self in (Scope.SCOPE2_LOCATION, Scope.SCOPE2_MARKET)


class OpexCapex(enum.Enum):
    """The paper's opex/capex decomposition of emissions.

    OPEX covers hardware use and operational energy consumption; CAPEX
    covers infrastructure construction and hardware manufacturing;
    OTHER covers activities outside the computing life cycle (business
    travel, commuting).
    """

    OPEX = "opex"
    CAPEX = "capex"
    OTHER = "other"


def default_classification(scope: Scope, category: str) -> OpexCapex:
    """Classify an entry per the paper's opex/capex definitions.

    Scope 1 and Scope 2 (operational fuel and purchased energy) are
    opex-related. Scope 3 is capex-related (supply chain: hardware
    manufacturing, construction, capital and purchased goods) except
    for travel/commuting-style categories and the downstream use of
    sold products, which is opex of somebody else's hardware.
    """
    lowered = category.lower().replace("_", " ")
    if scope in (Scope.SCOPE1, Scope.SCOPE2_LOCATION, Scope.SCOPE2_MARKET):
        return OpexCapex.OPEX
    if any(token in lowered for token in ("travel", "commut")):
        return OpexCapex.OTHER
    if "use of sold" in lowered or "product use" in lowered:
        return OpexCapex.OPEX
    return OpexCapex.CAPEX


@dataclass(frozen=True, slots=True)
class GHGEntry:
    """One line of an organization's emission ledger."""

    scope: Scope
    category: str
    carbon: Carbon
    classification: OpexCapex

    def __post_init__(self) -> None:
        if not self.category:
            raise AccountingError("a ledger entry needs a category")
        if self.carbon.grams < 0.0:
            raise AccountingError(
                f"entry {self.category!r} has negative emissions"
            )


class GHGInventory:
    """All ledger entries for one organization in one reporting year.

    The inventory keeps both Scope 2 variants; totals never mix them.
    ``total(market_based=True)`` is the figure organizations headline
    (and the one Figure 11's "impact of buying renewable energy"
    annotations refer to).
    """

    def __init__(
        self,
        organization: str,
        year: int,
        entries: Iterable[GHGEntry] = (),
        classifier: Callable[[Scope, str], OpexCapex] = default_classification,
    ) -> None:
        if not organization:
            raise AccountingError("an inventory needs an organization name")
        self.organization = organization
        self.year = int(year)
        self._classifier = classifier
        self._entries: list[GHGEntry] = list(entries)

    # ------------------------------------------------------------------
    # Ledger construction
    # ------------------------------------------------------------------
    def add(
        self,
        scope: Scope,
        category: str,
        carbon: Carbon,
        classification: OpexCapex | None = None,
    ) -> GHGEntry:
        """Append a ledger entry; classification defaults per the paper."""
        if classification is None:
            classification = self._classifier(scope, category)
        entry = GHGEntry(scope, category, carbon, classification)
        self._entries.append(entry)
        return entry

    @property
    def entries(self) -> list[GHGEntry]:
        return list(self._entries)

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def scope_total(self, scope: Scope) -> Carbon:
        return _total(entry.carbon for entry in self._entries if entry.scope is scope)

    def scope3_total(self) -> Carbon:
        return _total(
            entry.carbon for entry in self._entries if entry.scope.is_scope3
        )

    def total(self, market_based: bool = True) -> Carbon:
        """Grand total; picks exactly one Scope 2 variant."""
        excluded = Scope.SCOPE2_LOCATION if market_based else Scope.SCOPE2_MARKET
        return _total(
            entry.carbon
            for entry in self._entries
            if entry.scope is not excluded
        )

    def scope3_to_scope2_ratio(self, market_based: bool = True) -> float:
        """The paper's headline ratio (23x for Facebook 2019)."""
        scope2 = self.scope_total(
            Scope.SCOPE2_MARKET if market_based else Scope.SCOPE2_LOCATION
        )
        if scope2.grams == 0.0:
            raise AccountingError(
                f"{self.organization} {self.year}: Scope 2 total is zero; "
                "ratio undefined"
            )
        return self.scope3_total().grams / scope2.grams

    def opex_capex_split(self, market_based: bool = True) -> dict[OpexCapex, Carbon]:
        """Totals per opex/capex class, honoring the Scope 2 variant."""
        excluded = Scope.SCOPE2_LOCATION if market_based else Scope.SCOPE2_MARKET
        split = {kind: Carbon.zero() for kind in OpexCapex}
        for entry in self._entries:
            if entry.scope is excluded:
                continue
            split[entry.classification] = split[entry.classification] + entry.carbon
        return split

    def opex_fraction(self, market_based: bool = True) -> float:
        """Fraction of the opex+capex total that is opex-related."""
        split = self.opex_capex_split(market_based=market_based)
        opex = split[OpexCapex.OPEX].grams
        capex = split[OpexCapex.CAPEX].grams
        if opex + capex == 0.0:
            raise AccountingError(
                f"{self.organization} {self.year}: no opex/capex emissions recorded"
            )
        return opex / (opex + capex)

    def capex_fraction(self, market_based: bool = True) -> float:
        return 1.0 - self.opex_fraction(market_based=market_based)

    def category_breakdown(self, scope: Scope | None = None) -> Table:
        """Per-category totals (optionally within one scope) with shares."""
        entries = [
            entry
            for entry in self._entries
            if scope is None or entry.scope is scope
        ]
        if not entries:
            raise AccountingError(
                f"{self.organization} {self.year}: no entries"
                + (f" in {scope.value}" if scope else "")
            )
        totals: dict[str, float] = {}
        for entry in entries:
            totals[entry.category] = totals.get(entry.category, 0.0) + entry.carbon.grams
        grand = sum(totals.values())
        records = [
            {
                "category": category,
                "tonnes": grams / 1e6,
                "share": grams / grand if grand else 0.0,
            }
            for category, grams in sorted(
                totals.items(), key=lambda item: item[1], reverse=True
            )
        ]
        return Table.from_records(records)


class ReportSeries:
    """A multi-year sequence of inventories for one organization."""

    def __init__(self, organization: str, inventories: Iterable[GHGInventory]) -> None:
        self.organization = organization
        self._by_year: dict[int, GHGInventory] = {}
        for inventory in inventories:
            if inventory.organization != organization:
                raise AccountingError(
                    f"inventory for {inventory.organization!r} added to "
                    f"{organization!r} series"
                )
            if inventory.year in self._by_year:
                raise AccountingError(
                    f"duplicate year {inventory.year} in {organization!r} series"
                )
            self._by_year[inventory.year] = inventory

    @property
    def years(self) -> list[int]:
        return sorted(self._by_year.keys())

    def inventory(self, year: int) -> GHGInventory:
        if year not in self._by_year:
            raise AccountingError(
                f"{self.organization}: no inventory for {year}; have {self.years}"
            )
        return self._by_year[year]

    def scope_table(self) -> Table:
        """The Figure 11 panel: per-year totals of each scope, in tonnes."""
        records = []
        for year in self.years:
            inventory = self._by_year[year]
            records.append(
                {
                    "year": year,
                    "scope1_t": inventory.scope_total(Scope.SCOPE1).tonnes_value,
                    "scope2_location_t": inventory.scope_total(
                        Scope.SCOPE2_LOCATION
                    ).tonnes_value,
                    "scope2_market_t": inventory.scope_total(
                        Scope.SCOPE2_MARKET
                    ).tonnes_value,
                    "scope3_t": inventory.scope3_total().tonnes_value,
                }
            )
        return Table.from_records(records)


@dataclass(frozen=True)
class ScopeTaxonomy:
    """Table I: which emissions matter per scope for each company type."""

    company_type: str
    scope1: Sequence[str]
    scope2: Sequence[str]
    scope3: Sequence[str]

    def as_record(self) -> Mapping[str, str]:
        return {
            "company_type": self.company_type,
            "scope1": "; ".join(self.scope1),
            "scope2": "; ".join(self.scope2),
            "scope3": "; ".join(self.scope3),
        }


def _total(carbons: Iterable[Carbon]) -> Carbon:
    total = Carbon.zero()
    for carbon in carbons:
        total = total + carbon
    return total
