"""Core carbon-accounting machinery.

The paper's primary contribution: GHG-Protocol organizational
accounting, product life-cycle assessment, carbon-intensity modeling,
bottom-up embodied carbon, opex/capex break-even analysis, and
performance-vs-carbon Pareto tools.
"""

from .intensity import (
    EnergySource,
    GridRegion,
    GridMix,
    market_based_intensity,
    renewable_scaling_factor,
)
from .ghg import (
    Scope,
    OpexCapex,
    GHGEntry,
    GHGInventory,
    ReportSeries,
    ScopeTaxonomy,
    default_classification,
)
from .lca import (
    LifeCycleStage,
    DeviceClass,
    PowerClass,
    ProductLCA,
    use_phase_carbon,
    power_class_for,
    CAPEX_STAGES,
)
from .embodied import (
    MemoryCoefficients,
    DEFAULT_MEMORY_COEFFICIENTS,
    EmbodiedModel,
    BillOfMaterials,
)
from .amortization import (
    break_even_units,
    break_even_seconds,
    break_even_days,
    break_even_years,
    AmortizationSchedule,
)
from .pareto import ParetoPoint, dominates, pareto_frontier, frontier_shift

__all__ = [
    "EnergySource",
    "GridRegion",
    "GridMix",
    "market_based_intensity",
    "renewable_scaling_factor",
    "Scope",
    "OpexCapex",
    "GHGEntry",
    "GHGInventory",
    "ReportSeries",
    "ScopeTaxonomy",
    "default_classification",
    "LifeCycleStage",
    "DeviceClass",
    "PowerClass",
    "ProductLCA",
    "use_phase_carbon",
    "power_class_for",
    "CAPEX_STAGES",
    "MemoryCoefficients",
    "DEFAULT_MEMORY_COEFFICIENTS",
    "EmbodiedModel",
    "BillOfMaterials",
    "break_even_units",
    "break_even_seconds",
    "break_even_days",
    "break_even_years",
    "AmortizationSchedule",
    "ParetoPoint",
    "dominates",
    "pareto_frontier",
    "frontier_shift",
]
