"""Product life-cycle assessment (LCA) for hardware systems.

Models the four-phase hardware life cycle of Section II-B / Figure 4:
production, transport, use, and end-of-life. Each consumer device in
the paper's 30+-product corpus (Figure 6/7) becomes a
:class:`ProductLCA` with a total footprint and a per-stage split, and
the paper's opex/capex lens maps onto the stages:

* opex-related: the *use* stage (operational energy consumption);
* capex-related: production + transport + end-of-life.

The narrower "manufacturing fraction" quoted for Figure 7 (iPhone 3GS
40% -> iPhone XR 75%) is the *production* stage alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import DataValidationError
from ..units import Carbon, CarbonIntensity, Energy

__all__ = [
    "LifeCycleStage",
    "DeviceClass",
    "PowerClass",
    "ProductLCA",
    "use_phase_carbon",
]

_FRACTION_TOLERANCE = 1e-6


class LifeCycleStage(enum.Enum):
    """The four LCA phases of Figure 4."""

    PRODUCTION = "production"
    TRANSPORT = "transport"
    USE = "use"
    END_OF_LIFE = "end_of_life"


#: Stages the paper counts as capex-related.
CAPEX_STAGES = (
    LifeCycleStage.PRODUCTION,
    LifeCycleStage.TRANSPORT,
    LifeCycleStage.END_OF_LIFE,
)


class DeviceClass(enum.Enum):
    """Product categories used across Figures 6-8."""

    PHONE = "phone"
    TABLET = "tablet"
    WEARABLE = "wearable"
    LAPTOP = "laptop"
    DESKTOP = "desktop"
    DESKTOP_WITH_DISPLAY = "desktop_with_display"
    SPEAKER = "speaker"
    GAME_CONSOLE = "game_console"
    SERVER = "server"


class PowerClass(enum.Enum):
    """Figure 6's split between battery-powered and always-connected."""

    BATTERY_POWERED = "battery_powered"
    ALWAYS_CONNECTED = "always_connected"


#: Device classes that run on battery (Figure 6, top-left group).
_BATTERY_CLASSES = frozenset(
    {
        DeviceClass.PHONE,
        DeviceClass.TABLET,
        DeviceClass.WEARABLE,
        DeviceClass.LAPTOP,
    }
)


def power_class_for(device_class: DeviceClass) -> PowerClass:
    """Default battery/always-connected classification per device class."""
    if device_class in _BATTERY_CLASSES:
        return PowerClass.BATTERY_POWERED
    return PowerClass.ALWAYS_CONNECTED


@dataclass(frozen=True)
class ProductLCA:
    """A single product's life-cycle assessment.

    ``stage_fractions`` must cover all four stages and sum to 1.
    ``component_fractions`` optionally splits the *production* stage
    into components (integrated circuits, display, aluminum, ...) as in
    Figure 5; component fractions are of the production stage, not of
    the total, and must sum to <= 1 (the remainder is "unattributed").
    """

    product: str
    vendor: str
    year: int
    device_class: DeviceClass
    total: Carbon
    stage_fractions: Mapping[LifeCycleStage, float]
    lifetime_years: float = 3.0
    component_fractions: Mapping[str, float] = field(default_factory=dict)
    provenance: str = "reported"

    def __post_init__(self) -> None:
        if not self.product:
            raise DataValidationError("an LCA needs a product name")
        if self.total.grams <= 0.0:
            raise DataValidationError(
                f"{self.product}: total footprint must be positive"
            )
        if self.lifetime_years <= 0.0:
            raise DataValidationError(
                f"{self.product}: lifetime must be positive"
            )
        missing = set(LifeCycleStage) - set(self.stage_fractions)
        if missing:
            raise DataValidationError(
                f"{self.product}: missing stages {sorted(s.value for s in missing)}"
            )
        for stage, fraction in self.stage_fractions.items():
            if not 0.0 <= fraction <= 1.0:
                raise DataValidationError(
                    f"{self.product}: stage {stage.value} fraction {fraction} "
                    "outside [0, 1]"
                )
        total_fraction = sum(self.stage_fractions.values())
        if abs(total_fraction - 1.0) > 1e-3:
            raise DataValidationError(
                f"{self.product}: stage fractions sum to {total_fraction}, expected 1"
            )
        component_total = sum(self.component_fractions.values())
        if component_total > 1.0 + _FRACTION_TOLERANCE:
            raise DataValidationError(
                f"{self.product}: component fractions sum to {component_total} > 1"
            )
        object.__setattr__(self, "stage_fractions", dict(self.stage_fractions))
        object.__setattr__(
            self, "component_fractions", dict(self.component_fractions)
        )

    # ------------------------------------------------------------------
    # Stage decomposition
    # ------------------------------------------------------------------
    def stage_carbon(self, stage: LifeCycleStage) -> Carbon:
        return self.total * self.stage_fractions[stage]

    @property
    def production_carbon(self) -> Carbon:
        return self.stage_carbon(LifeCycleStage.PRODUCTION)

    @property
    def use_carbon(self) -> Carbon:
        return self.stage_carbon(LifeCycleStage.USE)

    @property
    def manufacturing_fraction(self) -> float:
        """Production share of total (the Figure 7 metric)."""
        return self.stage_fractions[LifeCycleStage.PRODUCTION]

    @property
    def use_fraction(self) -> float:
        return self.stage_fractions[LifeCycleStage.USE]

    # ------------------------------------------------------------------
    # Opex/capex lens
    # ------------------------------------------------------------------
    @property
    def capex_fraction(self) -> float:
        """Production + transport + end-of-life share (Figure 2 metric)."""
        return sum(self.stage_fractions[stage] for stage in CAPEX_STAGES)

    @property
    def opex_fraction(self) -> float:
        return self.stage_fractions[LifeCycleStage.USE]

    @property
    def capex_carbon(self) -> Carbon:
        return self.total * self.capex_fraction

    @property
    def opex_carbon(self) -> Carbon:
        return self.total * self.opex_fraction

    # ------------------------------------------------------------------
    # Components and amortization
    # ------------------------------------------------------------------
    @property
    def power_class(self) -> PowerClass:
        return power_class_for(self.device_class)

    def component_carbon(self, component: str) -> Carbon:
        """Production-stage carbon attributed to one component."""
        if component not in self.component_fractions:
            raise DataValidationError(
                f"{self.product}: no component {component!r}; "
                f"have {sorted(self.component_fractions)}"
            )
        return self.production_carbon * self.component_fractions[component]

    def amortized_per_year(self) -> Carbon:
        """Total footprint spread evenly over the device lifetime."""
        return self.total * (1.0 / self.lifetime_years)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_stage_carbon(
        cls,
        product: str,
        vendor: str,
        year: int,
        device_class: DeviceClass,
        stages: Mapping[LifeCycleStage, Carbon],
        **kwargs: object,
    ) -> "ProductLCA":
        """Build from absolute per-stage masses instead of fractions."""
        missing = set(LifeCycleStage) - set(stages)
        if missing:
            raise DataValidationError(
                f"{product}: missing stages {sorted(s.value for s in missing)}"
            )
        total_grams = sum(carbon.grams for carbon in stages.values())
        if total_grams <= 0.0:
            raise DataValidationError(f"{product}: total footprint must be positive")
        fractions = {
            stage: carbon.grams / total_grams for stage, carbon in stages.items()
        }
        return cls(
            product=product,
            vendor=vendor,
            year=year,
            device_class=device_class,
            total=Carbon(total_grams),
            stage_fractions=fractions,
            **kwargs,  # type: ignore[arg-type]
        )


def use_phase_carbon(
    annual_energy: Energy, grid: CarbonIntensity, lifetime_years: float
) -> Carbon:
    """Operational carbon over a device lifetime.

    This mirrors how vendor LCAs compute the use phase: modeled annual
    energy consumption times the regional grid intensity times the
    service lifetime.
    """
    if lifetime_years <= 0.0:
        raise DataValidationError("lifetime must be positive")
    per_year = grid.carbon_for(annual_energy)
    return per_year * lifetime_years
