"""Carbon intensity of energy: sources, grids, and mixes.

Implements the machinery behind Table II (per-source carbon intensity
and energy-payback time), Table III (geographic grid intensity), and
every renewable-energy what-if in the paper (Figures 13 and 14):

* :class:`EnergySource` — a generation technology with a life-cycle
  carbon intensity (g CO2e per kWh produced).
* :class:`GridRegion` — a geographic electricity grid with an average
  intensity and a dominant source.
* :class:`GridMix` — a weighted blend of sources whose intensity is the
  share-weighted average; supports shifting share toward a cleaner
  source, which is how we model renewable-energy procurement.
* :func:`market_based_intensity` — the GHG-Protocol market-based Scope 2
  computation given contractual renewable coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import DataValidationError, UnitError
from ..units import Carbon, CarbonIntensity, Energy

__all__ = [
    "EnergySource",
    "GridRegion",
    "GridMix",
    "market_based_intensity",
    "renewable_scaling_factor",
]


@dataclass(frozen=True, slots=True)
class EnergySource:
    """A generation technology (Table II row).

    ``payback_months`` is the energy-payback time: how long the plant
    must operate to generate the energy its construction consumed.
    ``None`` means not reported.
    """

    name: str
    intensity: CarbonIntensity
    payback_months: float | None = None
    renewable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise DataValidationError("energy source needs a name")
        if self.payback_months is not None and self.payback_months < 0:
            raise DataValidationError(
                f"payback for {self.name!r} must be non-negative"
            )

    def carbon_for(self, energy: Energy) -> Carbon:
        return self.intensity.carbon_for(energy)


@dataclass(frozen=True, slots=True)
class GridRegion:
    """A geographic electricity grid (Table III row)."""

    name: str
    intensity: CarbonIntensity
    dominant_source: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise DataValidationError("grid region needs a name")

    def carbon_for(self, energy: Energy) -> Carbon:
        return self.intensity.carbon_for(energy)


@dataclass(frozen=True)
class GridMix:
    """A weighted blend of energy sources.

    Shares must be non-negative and sum to 1 (within tolerance). The
    mix's intensity is the share-weighted average of its sources.
    """

    shares: Mapping[EnergySource, float] = field(default_factory=dict)

    _TOLERANCE = 1e-6

    def __post_init__(self) -> None:
        if not self.shares:
            raise DataValidationError("a grid mix needs at least one source")
        total = 0.0
        for source, share in self.shares.items():
            if share < 0.0:
                raise DataValidationError(
                    f"share for {source.name!r} must be non-negative, got {share}"
                )
            total += share
        if abs(total - 1.0) > self._TOLERANCE:
            raise DataValidationError(f"mix shares must sum to 1, got {total}")
        object.__setattr__(self, "shares", dict(self.shares))

    @classmethod
    def single(cls, source: EnergySource) -> "GridMix":
        return cls({source: 1.0})

    @property
    def intensity(self) -> CarbonIntensity:
        value = sum(
            source.intensity.grams_per_kwh * share
            for source, share in self.shares.items()
        )
        return CarbonIntensity.g_per_kwh(value)

    @property
    def renewable_share(self) -> float:
        return sum(
            share for source, share in self.shares.items() if source.renewable
        )

    def carbon_for(self, energy: Energy) -> Carbon:
        return self.intensity.carbon_for(energy)

    def shift_toward(self, clean: EnergySource, added_share: float) -> "GridMix":
        """Move ``added_share`` of the blend into ``clean``.

        Existing sources are scaled down proportionally; this models
        procuring renewable energy that displaces the incumbent mix.
        """
        if not 0.0 <= added_share <= 1.0:
            raise UnitError(f"added share must be within [0, 1], got {added_share}")
        remaining = 1.0 - added_share
        shares: dict[EnergySource, float] = {
            source: share * remaining for source, share in self.shares.items()
        }
        shares[clean] = shares.get(clean, 0.0) + added_share
        return GridMix(shares)


def market_based_intensity(
    location: CarbonIntensity,
    renewable_coverage: float,
    renewable: CarbonIntensity | None = None,
) -> CarbonIntensity:
    """GHG-Protocol market-based Scope 2 intensity.

    ``renewable_coverage`` is the fraction of consumed energy matched by
    contractual instruments (PPAs, RECs); that fraction is accounted at
    the contracted source's intensity (zero by convention when the
    instrument conveys a zero-emission claim, which is how Facebook and
    Google report). ``renewable_coverage`` may be a 1-D coverage array,
    in which case the result is an array-valued intensity.
    """
    if isinstance(renewable_coverage, np.ndarray):
        # Negated form so NaN fails like it does on the scalar path.
        if np.any(~((renewable_coverage >= 0.0) & (renewable_coverage <= 1.0))):
            raise UnitError("renewable coverage must be within [0, 1] everywhere")
    elif not 0.0 <= renewable_coverage <= 1.0:
        raise UnitError(
            f"renewable coverage must be within [0, 1], got {renewable_coverage}"
        )
    contracted = renewable.grams_per_kwh if renewable is not None else 0.0
    value = (
        location.grams_per_kwh * (1.0 - renewable_coverage)
        + contracted * renewable_coverage
    )
    return CarbonIntensity.g_per_kwh(value)


def renewable_scaling_factor(
    baseline: CarbonIntensity, improvement: float
) -> CarbonIntensity:
    """Divide a baseline intensity by an ``improvement`` factor.

    Figure 14 sweeps 1x..64x improvements of the energy powering a fab;
    this helper keeps that sweep dimensional.
    """
    if improvement <= 0.0:
        raise UnitError(f"improvement factor must be positive, got {improvement}")
    return CarbonIntensity.g_per_kwh(baseline.grams_per_kwh / improvement)
