"""Bottom-up embodied-carbon model for chips and systems.

The paper argues architects need manufacturing carbon as a first-class
design metric (Section VI); its successor tool (ACT, ISCA'22) built the
bottom-up model this module implements:

    per-die carbon = wafer carbon-per-area x die area / die yield
    + memory/storage capacity x per-GB coefficients
    + packaging and integration overheads

Component coefficients are estimates calibrated against the public
device LCAs in :mod:`repro.data.devices`; the
``test_bench_ablation_embodied`` benchmark compares this bottom-up
model against reported totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import DataValidationError, SimulationError
from ..units import Carbon, CarbonIntensity
from ..fab.process import ProcessNode
from ..fab.wafer import WaferFootprintModel
from ..fab.yields import murphy_yield, poisson_yield

__all__ = [
    "MemoryCoefficients",
    "DEFAULT_MEMORY_COEFFICIENTS",
    "EmbodiedModel",
    "BillOfMaterials",
]


@dataclass(frozen=True, slots=True)
class MemoryCoefficients:
    """Per-capacity embodied carbon of memory and storage.

    Units: kg CO2e per GB for DRAM and NAND, per TB for HDD. Values are
    ACT-flavored estimates (DRAM is the most carbon-intense per byte,
    NAND an order of magnitude lighter, spinning storage lighter still
    per byte).
    """

    dram_kg_per_gb: float = 0.45
    nand_kg_per_gb: float = 0.09
    hdd_kg_per_tb: float = 6.0

    def __post_init__(self) -> None:
        for name in ("dram_kg_per_gb", "nand_kg_per_gb", "hdd_kg_per_tb"):
            if getattr(self, name) < 0.0:
                raise DataValidationError(f"{name} must be non-negative")


DEFAULT_MEMORY_COEFFICIENTS = MemoryCoefficients()


@dataclass(frozen=True)
class EmbodiedModel:
    """Computes embodied carbon for dies, memories, and whole systems.

    ``fab_intensity`` is the electricity intensity of the logic fab
    (defaults to a Taiwan-like 583 g/kWh, Table III); ``yield_model``
    selects between Murphy (default) and Poisson die-yield models.
    """

    fab_intensity: CarbonIntensity = CarbonIntensity.g_per_kwh(583.0)
    memory: MemoryCoefficients = DEFAULT_MEMORY_COEFFICIENTS
    yield_model: str = "murphy"
    packaging_kg_per_die: float = 0.15

    def __post_init__(self) -> None:
        if self.yield_model not in ("murphy", "poisson"):
            raise SimulationError(f"unknown yield model {self.yield_model!r}")
        if self.packaging_kg_per_die < 0.0:
            raise DataValidationError("packaging overhead must be non-negative")

    # ------------------------------------------------------------------
    # Per-component pieces
    # ------------------------------------------------------------------
    def die_yield(self, die_area_mm2: float, node: ProcessNode) -> float:
        if self.yield_model == "murphy":
            return murphy_yield(die_area_mm2, node.defect_density_per_cm2)
        return poisson_yield(die_area_mm2, node.defect_density_per_cm2)

    def logic_carbon(self, die_area_mm2: float, node: ProcessNode) -> Carbon:
        """Embodied carbon of one *good* logic die (yield-adjusted)."""
        if die_area_mm2 <= 0.0:
            raise SimulationError("die area must be positive")
        wafer = WaferFootprintModel.from_node(node, self.fab_intensity)
        per_cm2 = wafer.carbon_per_cm2()
        area_cm2 = die_area_mm2 / 100.0
        raw = per_cm2 * area_cm2
        fraction_good = self.die_yield(die_area_mm2, node)
        if fraction_good <= 0.0:
            raise SimulationError(
                f"zero yield for {die_area_mm2} mm^2 on {node.name}"
            )
        packaged = Carbon.kg(self.packaging_kg_per_die)
        return raw * (1.0 / fraction_good) + packaged

    def dram_carbon(self, capacity_gb: float) -> Carbon:
        if capacity_gb < 0.0:
            raise SimulationError("DRAM capacity must be non-negative")
        return Carbon.kg(self.memory.dram_kg_per_gb * capacity_gb)

    def nand_carbon(self, capacity_gb: float) -> Carbon:
        if capacity_gb < 0.0:
            raise SimulationError("NAND capacity must be non-negative")
        return Carbon.kg(self.memory.nand_kg_per_gb * capacity_gb)

    def hdd_carbon(self, capacity_tb: float) -> Carbon:
        if capacity_tb < 0.0:
            raise SimulationError("HDD capacity must be non-negative")
        return Carbon.kg(self.memory.hdd_kg_per_tb * capacity_tb)

    # ------------------------------------------------------------------
    # Whole systems
    # ------------------------------------------------------------------
    def build(self, bill: "BillOfMaterials") -> dict[str, Carbon]:
        """Per-component embodied carbon for a bill of materials."""
        breakdown: dict[str, Carbon] = {}
        for name, (area_mm2, node) in bill.logic_dies.items():
            breakdown[name] = self.logic_carbon(area_mm2, node)
        if bill.dram_gb:
            breakdown["dram"] = self.dram_carbon(bill.dram_gb)
        if bill.nand_gb:
            breakdown["nand"] = self.nand_carbon(bill.nand_gb)
        if bill.hdd_tb:
            breakdown["hdd"] = self.hdd_carbon(bill.hdd_tb)
        for name, kg in bill.fixed_kg.items():
            breakdown[name] = Carbon.kg(kg)
        return breakdown

    def total(self, bill: "BillOfMaterials") -> Carbon:
        total = Carbon.zero()
        for carbon in self.build(bill).values():
            total = total + carbon
        return total


@dataclass(frozen=True)
class BillOfMaterials:
    """What goes into a system, from the embodied model's view.

    * ``logic_dies`` — name -> (die area mm^2, process node);
    * ``dram_gb`` / ``nand_gb`` / ``hdd_tb`` — memory capacities;
    * ``fixed_kg`` — name -> kg CO2e for components modeled as fixed
      totals (display, enclosure, battery, mainboard, assembly...).
    """

    name: str
    logic_dies: Mapping[str, tuple[float, ProcessNode]] = field(default_factory=dict)
    dram_gb: float = 0.0
    nand_gb: float = 0.0
    hdd_tb: float = 0.0
    fixed_kg: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise DataValidationError("a bill of materials needs a name")
        for capacity_name in ("dram_gb", "nand_gb", "hdd_tb"):
            if getattr(self, capacity_name) < 0.0:
                raise DataValidationError(f"{capacity_name} must be non-negative")
        for component, kg in self.fixed_kg.items():
            if kg < 0.0:
                raise DataValidationError(
                    f"{self.name}: fixed component {component!r} is negative"
                )
        object.__setattr__(self, "logic_dies", dict(self.logic_dies))
        object.__setattr__(self, "fixed_kg", dict(self.fixed_kg))
