"""Struct-of-arrays batch kernels for the device-portfolio model.

The scalar reference (:func:`repro.portfolio.device.simulate_device`)
composes ``repro.fab`` and ``repro.mobile`` primitives one device at a
time. The kernels here evaluate a whole catalog against a whole
scenario axis in a handful of numpy expressions, mirroring the scalar
arithmetic *operation for operation* — including the unit round-trips
(``(x * 3.6e6) / 3.6e6``) the quantity types perform — so every element
of a batch result is bit-identical to the corresponding scalar call.
``tests/test_portfolio_batch_equivalence.py`` pins that contract.

Parameters are laid out as broadcastable 2-D arrays: device-varying
columns are ``(devices, 1)``, scenario-varying overrides are
``(1, cells)``, and every elementwise kernel broadcast lands on
``(devices, cells)`` without materializing per-cell dataclasses.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import SimulationError
from ..fab.process import NODE_ROADMAP
from ..fab.yields import dies_per_wafer, murphy_yield, poisson_yield
from ..obs.recorder import active_recorder
from ..tabular import Table
from ..units import (
    DAYS_PER_YEAR,
    GRAMS_PER_KG,
    JOULES_PER_KWH,
    SECONDS_PER_HOUR,
)
from .catalog import OVERRIDABLE_FIELDS, DeviceSpec
from .device import DEVICE_METRICS

__all__ = ["simulate_device_batch"]

#: Roadmap coefficients as gather tables, indexed by roadmap position.
_NODE_NAMES = tuple(node.name for node in NODE_ROADMAP)
_NODE_INDEX = {name: index for index, name in enumerate(_NODE_NAMES)}
_ENERGY_KWH_PER_CM2 = np.array(
    [node.energy_kwh_per_cm2 for node in NODE_ROADMAP], dtype=np.float64
)
_GAS_KG_PER_CM2 = np.array(
    [node.gas_kg_per_cm2 for node in NODE_ROADMAP], dtype=np.float64
)
_MATERIAL_KG_PER_CM2 = np.array(
    [node.material_kg_per_cm2 for node in NODE_ROADMAP], dtype=np.float64
)
_DEFECT_PER_CM2 = np.array(
    [node.defect_density_per_cm2 for node in NODE_ROADMAP], dtype=np.float64
)

#: Numeric DeviceSpec fields that become parameter arrays ("node" is
#: resolved to a roadmap index separately; identity fields are labels).
_NUMERIC_FIELDS = tuple(
    spec_field.name
    for spec_field in dataclasses.fields(DeviceSpec)
    if spec_field.name not in ("name", "manufacturer", "node", "yield_model")
)

#: Figure 14 gas split and material split, as in ``from_node``.
_PFC_SHARE = 0.50
_CHEM_SHARE = 0.37
_BULK_SHARE = 0.13
_RAW_SHARE = 0.65
_OTHER_SHARE = 0.35


def _node_index(name: Any) -> int:
    if name not in _NODE_INDEX:
        raise SimulationError(
            f"unknown process node {name!r}; roadmap has {list(_NODE_NAMES)}"
        )
    return _NODE_INDEX[name]


def _parameter_grid(
    specs: Sequence[DeviceSpec],
    records: Sequence[Mapping[str, Any]],
    matrix: Any = None,
) -> tuple:
    """Broadcastable parameter arrays for (devices × scenario cells).

    Device columns come out ``(devices, 1)``; scenario-record overrides
    replace them with ``(1, cells)`` rows, where ``cells`` is
    ``scenarios`` for point sweeps or ``scenarios × draws`` when a
    :class:`~repro.uncertainty.draws.DrawMatrix` is supplied (its
    sampled rows flatten scenario-major, draw-minor — the shared axis
    convention). Returns ``(params, node_axis, murphy_mask, names,
    scenario_fields)``.
    """
    if not specs:
        raise SimulationError("need at least one device in the portfolio")
    if not records:
        raise SimulationError("need at least one scenario")
    draws = matrix.draws if matrix is not None else 1
    params: dict[str, np.ndarray] = {
        name: np.array(
            [float(getattr(spec, name)) for spec in specs], dtype=np.float64
        ).reshape(-1, 1)
        for name in _NUMERIC_FIELDS
    }
    node_axis = np.array(
        [float(_NODE_INDEX[spec.node]) for spec in specs], dtype=np.float64
    ).reshape(-1, 1)
    murphy_mask = np.array(
        [spec.yield_model == "murphy" for spec in specs], dtype=bool
    ).reshape(-1, 1)
    names = [spec.name for spec in specs]
    scenario_fields: set[str] = set()
    for name in records[0]:
        if name not in OVERRIDABLE_FIELDS:
            raise SimulationError(
                f"cannot sweep {name!r}: portfolio scenarios may override "
                f"{sorted(OVERRIDABLE_FIELDS)}"
            )
        scenario_fields.add(name)
        if name == "node":
            indices = np.array(
                [float(_node_index(record[name])) for record in records],
                dtype=np.float64,
            )
            node_axis = np.repeat(indices, draws).reshape(1, -1)
            continue
        if matrix is not None and name in matrix.values:
            params[name] = matrix.values[name].reshape(1, -1)
            continue
        values = []
        for index, record in enumerate(records):
            value = record[name]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SimulationError(
                    f"portfolio scenario {index}: axis {name!r} holds "
                    f"non-numeric {value!r}"
                )
            values.append(float(value))
        params[name] = np.repeat(
            np.array(values, dtype=np.float64), draws
        ).reshape(1, -1)
    return params, node_axis, murphy_mask, names, scenario_fields


def _complain(
    field: str,
    array: np.ndarray,
    mask: np.ndarray,
    names: Sequence[str],
    scenario_fields: "set[str]",
    what: str,
) -> None:
    """Raise for the first violating cell, naming device or scenario."""
    device, cell = (int(index) for index in np.argwhere(mask)[0])
    value = array[device, cell] if array.ndim == 2 else array[device]
    if field in scenario_fields:
        raise SimulationError(
            f"portfolio scenario cell {cell}: {field} {what}, got {value!r}"
        )
    raise SimulationError(
        f"device {names[device]!r}: {field} {what}, got {value!r}"
    )


_POSITIVE_FIELDS = (
    "die_area_mm2",
    "wafer_diameter_mm",
    "fab_intensity_g_per_kwh",
    "use_intensity_g_per_kwh",
    "battery_capacity_wh",
    "active_power_w",
    "lifetime_years",
    "lifetime_scale",
    "replacement_cycle_years",
)
_NON_NEGATIVE_FIELDS = (
    "non_ic_kg",
    "defect_density_scale",
    "standby_power_w",
    "units",
)


def _validate_params(
    params: Mapping[str, np.ndarray],
    names: Sequence[str],
    scenario_fields: "set[str]",
) -> None:
    """Elementwise re-validation of (possibly overridden) parameters.

    The scalar path revalidates through ``DeviceSpec.__post_init__`` on
    every override application; the batch path mirrors those checks on
    the parameter arrays so bad scenario values fail loudly — naming
    the offending device or scenario cell — instead of flowing NaNs
    into fleet aggregates.
    """
    for field, array in params.items():
        finite = np.isfinite(array)
        if not finite.all():
            _complain(
                field, array, ~finite, names, scenario_fields, "is non-finite"
            )
    for field in _POSITIVE_FIELDS:
        bad = params[field] <= 0.0
        if bad.any():
            _complain(
                field, params[field], bad, names, scenario_fields,
                "must be positive",
            )
    for field in _NON_NEGATIVE_FIELDS:
        bad = params[field] < 0.0
        if bad.any():
            _complain(
                field, params[field], bad, names, scenario_fields,
                "must be non-negative",
            )
    for field in ("abatement_coverage", "abatement_efficiency"):
        bad = (params[field] < 0.0) | (params[field] > 1.0)
        if bad.any():
            _complain(
                field, params[field], bad, names, scenario_fields,
                "must be in [0, 1]",
            )
    bad = (params["charge_efficiency"] <= 0.0) | (
        params["charge_efficiency"] > 1.0
    )
    if bad.any():
        _complain(
            "charge_efficiency", params["charge_efficiency"], bad, names,
            scenario_fields, "must be in (0, 1]",
        )
    hours = params["active_hours_per_day"]
    bad = (hours < 0.0) | (hours > 24.0)
    if bad.any():
        _complain(
            "active_hours_per_day", hours, bad, names, scenario_fields,
            "must be within a day",
        )
    bad = params["active_power_w"] < params["standby_power_w"]
    if bad.any():
        _complain(
            "active_power_w",
            np.broadcast_to(params["active_power_w"], bad.shape),
            bad, names, scenario_fields, "is below standby power",
        )
    shift = params["node_shift"]
    bad = shift != np.trunc(shift)
    if bad.any():
        _complain(
            "node_shift", shift, bad, names, scenario_fields,
            "must be an integral number of roadmap steps",
        )


def _metrics(
    params: Mapping[str, np.ndarray],
    node_axis: np.ndarray,
    murphy_mask: np.ndarray,
    names: Sequence[str],
    scenario_fields: "set[str]",
) -> "dict[str, np.ndarray]":
    """Per-(device, cell) metric arrays, mirroring the scalar reference.

    Every expression replicates ``simulate_device``'s float operations
    in the same order and grouping — including the quantity types' unit
    round-trips — so elements are bit-identical to scalar calls.
    """
    _validate_params(params, names, scenario_fields)

    # Node resolution: clamped roadmap shift, then coefficient gathers.
    resolved = np.clip(
        node_axis + params["node_shift"], 0.0, float(len(NODE_ROADMAP) - 1)
    ).astype(np.intp)
    energy_coeff = _ENERGY_KWH_PER_CM2[resolved]
    gas_coeff = _GAS_KG_PER_CM2[resolved]
    material_coeff = _MATERIAL_KG_PER_CM2[resolved]
    defect = _DEFECT_PER_CM2[resolved] * params["defect_density_scale"]

    # Wafer footprint: WaferFootprintModel.from_node + AbatementPolicy.
    wafer_diameter = params["wafer_diameter_mm"]
    radius_cm = wafer_diameter / 20.0
    area_cm2 = np.pi * radius_cm * radius_cm
    energy_g = params["fab_intensity_g_per_kwh"] * (
        ((energy_coeff * area_cm2) * JOULES_PER_KWH) / JOULES_PER_KWH
    )
    gas_g = (gas_coeff * area_cm2) * GRAMS_PER_KG
    material_g = (material_coeff * area_cm2) * GRAMS_PER_KG
    keep = 1.0 - (
        params["abatement_coverage"] * params["abatement_efficiency"]
    )
    pfc_g = (gas_g * _PFC_SHARE) * keep
    chem_g = (gas_g * _CHEM_SHARE) * keep
    bulk_g = (gas_g * _BULK_SHARE) * keep
    raw_g = material_g * _RAW_SHARE
    other_g = material_g * _OTHER_SHARE
    wafer_g = (
        ((((0.0 + energy_g) + pfc_g) + chem_g) + bulk_g) + raw_g
    ) + other_g

    # Yield: good dies per wafer, per-device model choice.
    die_area = params["die_area_mm2"]
    candidates = dies_per_wafer(wafer_diameter, die_area)
    fraction = np.where(
        murphy_mask,
        murphy_yield(die_area, defect),
        poisson_yield(die_area, defect),
    )
    good = candidates * fraction
    dead = good <= 0.0
    if dead.any():
        device, cell = (int(index) for index in np.argwhere(dead)[0])
        raise SimulationError(
            f"device {names[device]!r}: zero good dies per wafer at "
            f"scenario cell {cell}"
        )
    ic_kg = (wafer_g / good) / GRAMS_PER_KG
    embodied_kg = ic_kg + params["non_ic_kg"]

    # Use phase: UsageProfile / Battery / use_phase_bottom_up.
    hours = params["active_hours_per_day"]
    active_j = params["active_power_w"] * (hours * SECONDS_PER_HOUR)
    standby_j = params["standby_power_w"] * ((24.0 - hours) * SECONDS_PER_HOUR)
    annual_j = (active_j + standby_j) * DAYS_PER_YEAR
    wall_j = annual_j * (1.0 / params["charge_efficiency"])
    per_year_g = params["use_intensity_g_per_kwh"] * (wall_j / JOULES_PER_KWH)
    lifetime_years = params["lifetime_years"] * params["lifetime_scale"]
    use_g = per_year_g * lifetime_years
    use_kg = use_g / GRAMS_PER_KG
    daily_use_g = per_year_g / DAYS_PER_YEAR

    total_kg = embodied_kg + use_kg
    embodied_fraction = embodied_kg / total_kg
    break_even_days = (embodied_kg * GRAMS_PER_KG) / daily_use_g
    amortizes = break_even_days <= lifetime_years * DAYS_PER_YEAR
    annual_kg = (
        embodied_kg / params["replacement_cycle_years"]
        + use_kg / lifetime_years
    )
    metrics = {
        "ic_kg": ic_kg,
        "embodied_kg": embodied_kg,
        "use_kg": use_kg,
        "total_kg": total_kg,
        "embodied_fraction": embodied_fraction,
        "break_even_days": break_even_days,
        "amortizes": amortizes,
        "annual_kg": annual_kg,
    }
    for metric in ("total_kg", "break_even_days", "annual_kg"):
        finite = np.isfinite(metrics[metric])
        if not finite.all():
            device, cell = (int(index) for index in np.argwhere(~finite)[0])
            raise SimulationError(
                f"device {names[device]!r}: metric {metric!r} is non-finite "
                f"at scenario cell {cell}"
            )
    return metrics


def _flat(array: np.ndarray, shape: "tuple[int, int]") -> np.ndarray:
    """Broadcast a parameter/metric to ``shape`` and flatten row-major."""
    return np.ascontiguousarray(np.broadcast_to(array, shape)).reshape(-1)


def simulate_device_batch(specs: Sequence[DeviceSpec]) -> Table:
    """Simulate a catalog of devices in one struct-of-arrays call.

    Returns one row per device — identity columns (``device``,
    ``manufacturer``, ``node`` as fabbed after the clamped node shift),
    the fleet ``units`` count, then the :data:`DEVICE_METRICS` — with
    every float bit-identical to :func:`~repro.portfolio.device
    .simulate_device` on the same spec.
    """
    specs = tuple(specs)
    params, node_axis, murphy_mask, names, scenario_fields = _parameter_grid(
        specs, [{}]
    )
    with active_recorder().span(
        "batch", fn="simulate_device_batch", scenarios=len(specs)
    ):
        metrics = _metrics(
            params, node_axis, murphy_mask, names, scenario_fields
        )
        resolved = np.clip(
            node_axis + params["node_shift"],
            0.0,
            float(len(NODE_ROADMAP) - 1),
        ).astype(np.intp)
        columns: dict[str, Any] = {
            "device": list(names),
            "manufacturer": [spec.manufacturer for spec in specs],
            "node": [_NODE_NAMES[int(index)] for index in resolved[:, 0]],
            "units": params["units"].reshape(-1),
        }
        for metric in DEVICE_METRICS:
            columns[metric] = metrics[metric].reshape(-1)
        return Table(columns)
