"""Scalar reference simulation of one portfolio device.

Composes the existing ``repro.fab`` and ``repro.mobile`` primitives —
:meth:`~repro.fab.WaferFootprintModel.from_node`,
:class:`~repro.fab.AbatementPolicy`,
:func:`~repro.fab.good_dies_per_wafer`, and
:func:`~repro.mobile.battery.use_phase_bottom_up` — into one embodied +
use-phase bottom line per device. This is the *reference
implementation*: the batch kernels in :mod:`repro.portfolio.batch`
mirror its arithmetic operation for operation and are pinned
element-identical to it by ``tests/test_portfolio_batch_equivalence.py``.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..fab.abatement import AbatementPolicy
from ..fab.process import NODE_ROADMAP, ProcessNode
from ..fab.wafer import WaferFootprintModel
from ..fab.yields import good_dies_per_wafer
from ..mobile.battery import (
    Battery,
    UsageProfile,
    annual_wall_energy,
    use_phase_bottom_up,
)
from ..units import DAYS_PER_YEAR, GRAMS_PER_KG, CarbonIntensity, Power
from .catalog import DeviceSpec, resolved_node_index

__all__ = ["resolve_node", "simulate_device", "DEVICE_METRICS"]

#: Metric keys of one simulated device, in result-column order.
DEVICE_METRICS = (
    "ic_kg",
    "embodied_kg",
    "use_kg",
    "total_kg",
    "embodied_fraction",
    "break_even_days",
    "amortizes",
    "annual_kg",
)


def resolve_node(spec: DeviceSpec) -> ProcessNode:
    """The roadmap node ``spec`` fabs at, after its clamped node shift."""
    return NODE_ROADMAP[resolved_node_index(spec)]


def simulate_device(spec: DeviceSpec) -> "dict[str, float]":
    """One device's life-cycle carbon, from the scalar primitives.

    Returns the :data:`DEVICE_METRICS` dict: per-unit IC, embodied
    (IC + non-IC production), use-phase, and total carbon in kg; the
    embodied share of the total; usage-based break-even days (days of
    the device's own usage profile until use-phase carbon equals the
    embodied footprint) with its within-lifetime verdict; and the
    replacement-cycle-annualized footprint
    ``embodied/replacement_cycle + use/lifetime``.
    """
    node = resolve_node(spec)
    defect = node.defect_density_per_cm2 * spec.defect_density_scale
    fab_grid = CarbonIntensity.g_per_kwh(spec.fab_intensity_g_per_kwh)
    wafer = WaferFootprintModel.from_node(
        node, fab_grid, wafer_diameter_mm=spec.wafer_diameter_mm
    )
    policy = AbatementPolicy(
        spec.abatement_coverage, spec.abatement_efficiency
    )
    breakdown = policy.apply(wafer.baseline)
    good = good_dies_per_wafer(
        spec.wafer_diameter_mm, spec.die_area_mm2, defect, spec.yield_model
    )
    if good <= 0.0:
        raise SimulationError(
            f"device {spec.name!r}: zero good dies per wafer "
            f"({spec.die_area_mm2} mm2 dies on a {spec.wafer_diameter_mm} mm "
            f"wafer at defect density {defect} /cm2)"
        )
    ic_kg = (breakdown.total.grams / good) / GRAMS_PER_KG
    embodied_kg = ic_kg + spec.non_ic_kg

    lifetime_years = spec.lifetime_years * spec.lifetime_scale
    profile = UsageProfile(
        active_hours_per_day=spec.active_hours_per_day,
        active_power=Power.watts(spec.active_power_w),
        standby_power=Power.watts(spec.standby_power_w),
    )
    battery = Battery(
        capacity_wh=spec.battery_capacity_wh,
        charge_efficiency=spec.charge_efficiency,
    )
    use_grid = CarbonIntensity.g_per_kwh(spec.use_intensity_g_per_kwh)
    use_kg = use_phase_bottom_up(
        profile, battery, use_grid, lifetime_years
    ).kilograms
    per_year_g = use_grid.carbon_for(annual_wall_energy(profile, battery)).grams
    daily_use_g = per_year_g / DAYS_PER_YEAR

    total_kg = embodied_kg + use_kg
    embodied_fraction = embodied_kg / total_kg
    break_even = (embodied_kg * GRAMS_PER_KG) / daily_use_g
    annual_kg = (
        embodied_kg / spec.replacement_cycle_years + use_kg / lifetime_years
    )
    return {
        "ic_kg": ic_kg,
        "embodied_kg": embodied_kg,
        "use_kg": use_kg,
        "total_kg": total_kg,
        "embodied_fraction": embodied_fraction,
        "break_even_days": break_even,
        "amortizes": bool(break_even <= lifetime_years * DAYS_PER_YEAR),
        "annual_kg": annual_kg,
    }
