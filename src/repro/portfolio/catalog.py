"""Device catalogs: the portfolio model's unit of account.

A :class:`DeviceSpec` describes one consumer-device archetype with the
axes the paper's consumer-device story turns on — process node, total
silicon area, wafer size, fab and use-phase grid intensities, PFC
abatement, usage profile, service lifetime, and replacement cycle —
plus a fleet ``units`` count so catalogs scale to the hundreds of
millions of devices Figure 2 is about. Every field is a flat scalar,
so the scenario engine's ``apply_overrides`` works on a spec directly
and validation reruns on every override.

``default_catalog`` is the registered ``portfolio`` sweep's fleet: a
handful of archetypes spanning manufacturers, nodes (65 nm to 7 nm),
both common wafer sizes, and replacement cycles from yearly-churn
wearables to four-year laptops.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from ..errors import SimulationError
from ..fab.process import NODE_ROADMAP

__all__ = [
    "DeviceSpec",
    "OVERRIDABLE_FIELDS",
    "resolved_node_index",
    "default_catalog",
]

#: Roadmap node names in order, for ``node_shift`` resolution.
_NODE_NAMES = tuple(node.name for node in NODE_ROADMAP)
_NODE_INDEX = {name: index for index, name in enumerate(_NODE_NAMES)}

_YIELD_MODELS = ("murphy", "poisson")


@dataclass(frozen=True)
class DeviceSpec:
    """One device archetype of a portfolio.

    ``die_area_mm2`` is the device's *total* packaged silicon (SoC,
    memory, RF, ...), the area the bottom-up fab model prices.
    ``node_shift`` moves the device along :data:`repro.fab.NODE_ROADMAP`
    relative to its named ``node`` (clamped at the roadmap ends) — the
    node-shrink scenario axis of Figure 14. ``defect_density_scale``
    and ``lifetime_scale`` are the fab-yield and lifetime uncertainty
    knobs the distribution-tagged sweeps draw on. ``units`` is the
    fleet count this archetype contributes to portfolio aggregates.
    """

    name: str
    manufacturer: str
    node: str
    die_area_mm2: float
    non_ic_kg: float
    battery_capacity_wh: float
    active_hours_per_day: float
    active_power_w: float
    use_intensity_g_per_kwh: float
    lifetime_years: float
    replacement_cycle_years: float
    wafer_diameter_mm: float = 300.0
    fab_intensity_g_per_kwh: float = 583.0
    abatement_coverage: float = 0.0
    abatement_efficiency: float = 0.95
    defect_density_scale: float = 1.0
    yield_model: str = "murphy"
    node_shift: float = 0.0
    standby_power_w: float = 0.0
    charge_efficiency: float = 0.75
    lifetime_scale: float = 1.0
    units: float = 1.0

    def __post_init__(self) -> None:
        label = f"device {self.name!r}"
        if not self.name:
            raise SimulationError("device name must be non-empty")
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, (int, float)) and not math.isfinite(
                float(value)
            ):
                raise SimulationError(
                    f"{label}: field {spec_field.name!r} is non-finite "
                    f"({value!r})"
                )
        if self.node not in _NODE_INDEX:
            raise SimulationError(
                f"{label}: unknown process node {self.node!r}; "
                f"roadmap has {list(_NODE_NAMES)}"
            )
        if self.yield_model not in _YIELD_MODELS:
            raise SimulationError(
                f"{label}: unknown yield model {self.yield_model!r}; "
                f"have {list(_YIELD_MODELS)}"
            )
        if not float(self.node_shift).is_integer():
            raise SimulationError(
                f"{label}: node_shift must be an integral number of "
                f"roadmap steps, got {self.node_shift!r}"
            )
        positive = (
            "die_area_mm2",
            "wafer_diameter_mm",
            "fab_intensity_g_per_kwh",
            "use_intensity_g_per_kwh",
            "battery_capacity_wh",
            "active_power_w",
            "lifetime_years",
            "lifetime_scale",
            "replacement_cycle_years",
        )
        for field_name in positive:
            if getattr(self, field_name) <= 0.0:
                raise SimulationError(
                    f"{label}: {field_name} must be positive, "
                    f"got {getattr(self, field_name)!r}"
                )
        non_negative = (
            "non_ic_kg",
            "defect_density_scale",
            "standby_power_w",
            "units",
        )
        for field_name in non_negative:
            if getattr(self, field_name) < 0.0:
                raise SimulationError(
                    f"{label}: {field_name} must be non-negative, "
                    f"got {getattr(self, field_name)!r}"
                )
        if not 0.0 <= self.abatement_coverage <= 1.0:
            raise SimulationError(
                f"{label}: abatement coverage must be in [0, 1], "
                f"got {self.abatement_coverage!r}"
            )
        if not 0.0 <= self.abatement_efficiency <= 1.0:
            raise SimulationError(
                f"{label}: abatement efficiency must be in [0, 1], "
                f"got {self.abatement_efficiency!r}"
            )
        if not 0.0 < self.charge_efficiency <= 1.0:
            raise SimulationError(
                f"{label}: charge efficiency must be in (0, 1], "
                f"got {self.charge_efficiency!r}"
            )
        if not 0.0 <= self.active_hours_per_day <= 24.0:
            raise SimulationError(
                f"{label}: active hours must be within a day, "
                f"got {self.active_hours_per_day!r}"
            )
        if self.active_power_w < self.standby_power_w:
            raise SimulationError(
                f"{label}: active power ({self.active_power_w!r} W) below "
                f"standby power ({self.standby_power_w!r} W)"
            )


#: DeviceSpec fields a scenario record may override. Identity fields
#: (name/manufacturer) and the yield-model choice are per-device, not
#: per-scenario; everything numeric plus the node name is fair game.
OVERRIDABLE_FIELDS = frozenset(
    spec_field.name
    for spec_field in dataclasses.fields(DeviceSpec)
    if spec_field.name not in ("name", "manufacturer", "yield_model")
)


def resolved_node_index(spec: DeviceSpec) -> int:
    """The roadmap index ``spec`` fabs at, after its clamped node shift."""
    base = _NODE_INDEX[spec.node]
    shifted = base + int(spec.node_shift)
    return min(max(shifted, 0), len(NODE_ROADMAP) - 1)


def default_catalog() -> "tuple[DeviceSpec, ...]":
    """The registered ``portfolio`` sweep's device fleet.

    Eight archetypes spanning the catalog axes: manufacturers, nodes
    from 65 nm feature phones to 7 nm flagships, 200 mm and 300 mm
    wafers, lifetimes of 2-5 years, and replacement cycles from yearly
    churn to laptop-grade four-year holds. Unit counts are
    stylized-but-plausible annual fleet sizes (tens of millions).
    """
    return (
        DeviceSpec(
            name="flagship_phone",
            manufacturer="vertex",
            node="7nm",
            die_area_mm2=600.0,
            non_ic_kg=38.0,
            battery_capacity_wh=15.8,
            active_hours_per_day=5.5,
            active_power_w=3.2,
            standby_power_w=0.04,
            use_intensity_g_per_kwh=450.0,
            lifetime_years=3.0,
            replacement_cycle_years=2.0,
            units=40e6,
        ),
        DeviceSpec(
            name="midrange_phone",
            manufacturer="solstice",
            node="10nm",
            die_area_mm2=450.0,
            non_ic_kg=30.0,
            battery_capacity_wh=11.2,
            active_hours_per_day=4.5,
            active_power_w=2.4,
            standby_power_w=0.04,
            use_intensity_g_per_kwh=560.0,
            lifetime_years=3.5,
            replacement_cycle_years=3.0,
            units=110e6,
        ),
        DeviceSpec(
            name="tablet",
            manufacturer="vertex",
            node="10nm",
            die_area_mm2=700.0,
            non_ic_kg=55.0,
            battery_capacity_wh=28.6,
            active_hours_per_day=3.0,
            active_power_w=6.0,
            standby_power_w=0.10,
            use_intensity_g_per_kwh=450.0,
            lifetime_years=4.0,
            replacement_cycle_years=4.0,
            units=18e6,
        ),
        DeviceSpec(
            name="laptop",
            manufacturer="aurora",
            node="10nm",
            die_area_mm2=800.0,
            non_ic_kg=120.0,
            battery_capacity_wh=56.0,
            active_hours_per_day=6.0,
            active_power_w=18.0,
            standby_power_w=0.5,
            use_intensity_g_per_kwh=430.0,
            lifetime_years=4.0,
            replacement_cycle_years=4.0,
            charge_efficiency=0.85,
            units=25e6,
        ),
        DeviceSpec(
            name="smartwatch",
            manufacturer="vertex",
            node="28nm",
            die_area_mm2=120.0,
            non_ic_kg=8.0,
            battery_capacity_wh=1.1,
            active_hours_per_day=2.0,
            active_power_w=0.4,
            standby_power_w=0.01,
            use_intensity_g_per_kwh=450.0,
            lifetime_years=2.5,
            replacement_cycle_years=2.5,
            units=12e6,
        ),
        DeviceSpec(
            name="earbuds",
            manufacturer="solstice",
            node="45nm",
            die_area_mm2=60.0,
            non_ic_kg=4.0,
            battery_capacity_wh=0.5,
            active_hours_per_day=3.0,
            active_power_w=0.1,
            standby_power_w=0.005,
            use_intensity_g_per_kwh=560.0,
            lifetime_years=2.0,
            replacement_cycle_years=2.0,
            wafer_diameter_mm=200.0,
            units=30e6,
        ),
        DeviceSpec(
            name="smart_speaker",
            manufacturer="aurora",
            node="28nm",
            die_area_mm2=180.0,
            non_ic_kg=7.0,
            battery_capacity_wh=5.0,
            active_hours_per_day=4.0,
            active_power_w=3.0,
            standby_power_w=2.0,
            use_intensity_g_per_kwh=430.0,
            lifetime_years=5.0,
            replacement_cycle_years=5.0,
            charge_efficiency=0.9,
            units=9e6,
        ),
        DeviceSpec(
            name="feature_phone",
            manufacturer="meadow",
            node="65nm",
            die_area_mm2=90.0,
            non_ic_kg=10.0,
            battery_capacity_wh=4.0,
            active_hours_per_day=2.0,
            active_power_w=0.8,
            standby_power_w=0.02,
            use_intensity_g_per_kwh=620.0,
            lifetime_years=4.0,
            replacement_cycle_years=4.0,
            wafer_diameter_mm=200.0,
            yield_model="poisson",
            units=15e6,
        ),
    )
