"""Device-portfolio embodied carbon at fleet scale.

The portfolio layer turns the repo's per-wafer fab model and
bottom-up mobile use-phase model into a *fleet* model: a catalog of
:class:`DeviceSpec` archetypes (manufacturer / process node / wafer
size / lifetime / replacement cycle) evaluated across scenario grids,
for millions of devices at a time.

Two implementations, pinned element-identical to each other:

- :func:`simulate_device` — the scalar reference, composed from the
  existing ``repro.fab`` and ``repro.mobile`` primitives one device at
  a time.
- :func:`simulate_device_batch` / :func:`sweep_portfolio` /
  :func:`sweep_portfolio_uncertain` — struct-of-arrays batch kernels
  vectorized over devices × scenario cells (× draws), sharded over the
  device axis through ``repro.exec`` and reduced with exactly rounded
  sums.

``tests/test_portfolio_batch_equivalence.py`` enforces the pin
bit-for-bit for deterministic, uncertain, and sharded runs.
"""

from __future__ import annotations

from .batch import simulate_device_batch
from .catalog import (
    OVERRIDABLE_FIELDS,
    DeviceSpec,
    default_catalog,
    resolved_node_index,
)
from .device import DEVICE_METRICS, resolve_node, simulate_device
from .sweep import (
    PORTFOLIO_METRICS,
    sweep_portfolio,
    sweep_portfolio_uncertain,
)

__all__ = [
    "DeviceSpec",
    "OVERRIDABLE_FIELDS",
    "DEVICE_METRICS",
    "PORTFOLIO_METRICS",
    "default_catalog",
    "resolve_node",
    "resolved_node_index",
    "simulate_device",
    "simulate_device_batch",
    "sweep_portfolio",
    "sweep_portfolio_uncertain",
]
