"""Fleet-level portfolio sweeps: millions of devices, exact aggregation.

``sweep_portfolio`` evaluates a device catalog against a scenario grid
and aggregates to one row per scenario — fleet embodied / use / total /
replacement-cycle-annualized carbon in tonnes, the embodied share, and
the catalog-mean break-even days. ``sweep_portfolio_uncertain`` runs
the same decision space with distribution-tagged axes (fab-yield and
lifetime bands through the shared :mod:`repro.uncertainty.draws` path)
and returns an :class:`~repro.uncertainty.UncertainResult`.

Sharding is over the *device* axis (scenarios stay whole): each chunk
emits per-(device, cell) detail rows, ``Table.concat`` stacks them —
bit-identical for any chunk/job geometry by construction — and the
driver reduces over devices with :func:`math.fsum`. ``fsum`` is exactly
rounded, so fleet aggregates are not merely reproducible but
*permutation-invariant* over the device axis and independent of chunk
geometry, down to the last bit. The fault-tolerance knobs
(``retries``/``timeout``/``on_error``/``checkpoint``) forward to
:func:`repro.exec.run_sharded` unchanged.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..analysis.uncertainty import is_distribution
from ..errors import SimulationError
from ..exec import ShardPlan, run_sharded
from ..obs.recorder import active_recorder
from ..scenarios.runner import (
    _attach_axes,
    _reject_distribution_values,
    _scalar_axis_names,
)
from ..tabular import Table
from ..uncertainty.draws import _check_records, build_draw_matrix
from ..uncertainty.result import UncertainResult
from ..uncertainty.sweeps import _axes_table, _kept_axis_names, _reshape_metrics
from .batch import _flat, _metrics, _parameter_grid
from .catalog import OVERRIDABLE_FIELDS, DeviceSpec

__all__ = ["PORTFOLIO_METRICS", "sweep_portfolio", "sweep_portfolio_uncertain"]

_KG_PER_TONNE = 1e3

#: Fleet metrics of the aggregated sweep (and the uncertain samples).
PORTFOLIO_METRICS = (
    "embodied_t",
    "use_t",
    "total_t",
    "annual_t",
    "embodied_fraction",
    "break_even_days_mean",
)

#: Per-(device, cell) detail columns the chunk kernels emit.
_DETAIL_METRICS = ("embodied_kg", "use_kg", "annual_kg", "break_even_days")


def _validate_axis_names(records: Sequence[Mapping[str, Any]]) -> None:
    for name in records[0]:
        if name not in OVERRIDABLE_FIELDS:
            raise SimulationError(
                f"cannot sweep {name!r}: portfolio scenarios may override "
                f"{sorted(OVERRIDABLE_FIELDS)}"
            )
    for index, record in enumerate(records):
        if "node" in record and is_distribution(record["node"]):
            raise SimulationError(
                f"scenario {index}: the 'node' axis is categorical and "
                "cannot be distribution-tagged"
            )


def _detail_table(
    start: int, stop: int, cells: int, grid: tuple
) -> Table:
    """Detail rows for devices ``[start, stop)``: device-major flatten."""
    params, node_axis, murphy_mask, names, scenario_fields = grid
    metrics = _metrics(params, node_axis, murphy_mask, names, scenario_fields)
    shape = (stop - start, cells)
    columns: dict[str, Any] = {
        "device": np.repeat(np.arange(start, stop, dtype=np.int64), cells),
        "cell": np.tile(np.arange(cells, dtype=np.int64), stop - start),
        "units": _flat(params["units"], shape),
    }
    for metric in _DETAIL_METRICS:
        columns[metric] = _flat(metrics[metric], shape)
    return Table(columns)


def _portfolio_chunk(payload: tuple, start: int, stop: int) -> Table:
    """Chunk kernel: devices ``[start, stop)`` × every scenario.

    Module-level so :func:`repro.exec.run_sharded` workers can import
    it by name; scenarios are never sharded, so every chunk shares the
    full scenario axis and detail rows concat device-major.
    """
    specs, records = payload
    chunk = specs[start:stop]
    return _detail_table(
        start, stop, len(records), _parameter_grid(chunk, records)
    )


def _portfolio_uncertain_chunk(payload: tuple, start: int, stop: int) -> Table:
    """Chunk kernel: devices ``[start, stop)`` × every (scenario, draw).

    The draw matrix is rebuilt from the full scenario records —
    per-scenario seeded streams make it identical in every chunk — so
    sharding the device axis never perturbs the samples.
    """
    specs, records, draws, seed = payload
    chunk = specs[start:stop]
    matrix = build_draw_matrix(records, draws, seed)
    return _detail_table(
        start, stop, len(records) * draws,
        _parameter_grid(chunk, records, matrix),
    )


def _column_sums(matrix: np.ndarray) -> np.ndarray:
    """Exactly rounded per-column sums over the device axis.

    :func:`math.fsum` is correctly rounded, so the result is the same
    for *any* ordering or chunking of the device rows — the foundation
    of the portfolio's permutation- and shard-invariance guarantees.
    """
    return np.array(
        [
            math.fsum(column)
            for column in np.ascontiguousarray(matrix.T).tolist()
        ],
        dtype=np.float64,
    )


def _aggregate_detail(detail: Table, cells: int) -> "dict[str, np.ndarray]":
    """Reduce per-device detail rows to per-cell fleet aggregates."""
    if cells <= 0 or detail.num_rows % cells:
        raise SimulationError(
            f"detail table has {detail.num_rows} rows, not a multiple of "
            f"{cells} scenario cells"
        )
    devices = detail.num_rows // cells

    def grid_of(name: str) -> np.ndarray:
        return np.asarray(detail.column(name), dtype=np.float64).reshape(
            devices, cells
        )

    units = grid_of("units")
    embodied_sum = _column_sums(grid_of("embodied_kg") * units)
    use_sum = _column_sums(grid_of("use_kg") * units)
    annual_sum = _column_sums(grid_of("annual_kg") * units)
    embodied_t = embodied_sum / _KG_PER_TONNE
    use_t = use_sum / _KG_PER_TONNE
    return {
        "devices": np.full(cells, devices, dtype=np.int64),
        "units": _column_sums(units),
        "embodied_t": embodied_t,
        "use_t": use_t,
        "total_t": embodied_t + use_t,
        "annual_t": annual_sum / _KG_PER_TONNE,
        "embodied_fraction": embodied_sum / (embodied_sum + use_sum),
        "break_even_days_mean": _column_sums(grid_of("break_even_days"))
        / devices,
    }


def _portfolio_table(
    detail: Table, records: Sequence[Mapping[str, Any]], keep: Sequence[str]
) -> Table:
    return _attach_axes(records, Table(_aggregate_detail(detail, len(records))), keep=keep)


def sweep_portfolio(
    catalog: Iterable[DeviceSpec],
    scenarios: Iterable[Mapping[str, Any]],
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> Table:
    """Run a device catalog through a scenario grid, fleet-aggregated.

    Returns one row per scenario: the scenario's scalar axis values,
    then ``devices`` (catalog size), fleet ``units``, and the
    :data:`PORTFOLIO_METRICS` — embodied / use / total /
    replacement-cycle-annualized fleet carbon in tonnes, the embodied
    share of the fleet total, and the catalog-mean break-even days.
    Scenario axes override any numeric :class:`DeviceSpec` field (plus
    the ``node`` name) fleet-wide.

    ``jobs``/``chunk_size`` shard the *device* axis through
    :func:`repro.exec.run_sharded`; results are element-identical for
    every geometry and invariant under catalog permutation (exactly
    rounded device sums). Under ``on_error="skip"`` the return value
    becomes a ``(Table, FailureReport)`` pair aggregating only the
    devices whose chunks survived.
    """
    specs = tuple(catalog)
    if not specs:
        raise SimulationError("need at least one device in the portfolio")
    records = _check_records(list(scenarios))
    _reject_distribution_values(records)
    _validate_axis_names(records)
    keep = _scalar_axis_names(records)
    plan = ShardPlan.plan(len(specs), chunk_size, jobs)
    payload = (specs, records)
    with active_recorder().span(
        "batch",
        fn="sweep_portfolio",
        scenarios=len(records),
        devices=len(specs),
    ):
        result = run_sharded(
            _portfolio_chunk,
            payload,
            plan,
            jobs=jobs,
            combine=Table.concat,
            retries=retries,
            timeout=timeout,
            on_error=on_error,
            checkpoint=checkpoint,
        )
    if isinstance(result, tuple):
        detail, report = result
        return _portfolio_table(detail, records, keep), report
    return _portfolio_table(result, records, keep)


def _portfolio_uncertain_result(
    detail: Table,
    records: Sequence[Mapping[str, Any]],
    kept: Sequence[str],
    draws: int,
    seed: int,
) -> UncertainResult:
    aggregates = _aggregate_detail(detail, len(records) * draws)
    flat = Table({metric: aggregates[metric] for metric in PORTFOLIO_METRICS})
    return UncertainResult(
        axes=_axes_table(records, keep=kept),
        samples=_reshape_metrics(
            flat, PORTFOLIO_METRICS, len(records), draws
        ),
        draws=draws,
        seed=seed,
    )


def sweep_portfolio_uncertain(
    catalog: Iterable[DeviceSpec],
    scenarios: Iterable[Mapping[str, Any]],
    *,
    draws: int = 256,
    seed: int = 0,
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> UncertainResult:
    """Portfolio sweep with distribution-tagged scenario axes.

    Tagged axes (fab-yield via ``defect_density_scale``, lifetime via
    ``lifetime_scale``, or any other numeric :class:`DeviceSpec` field)
    are sampled through the shared seeded
    :func:`~repro.uncertainty.draws.build_draw_matrix` path — the same
    per-scenario ``default_rng(seed)`` streams the scalar reference
    consumes — and every (device, scenario, draw) cell goes through the
    batch kernels in one broadcast. Fleet aggregates reduce over
    devices with exactly rounded sums, giving a
    :class:`~repro.uncertainty.UncertainResult` whose
    :data:`PORTFOLIO_METRICS` samples are bit-identical for every
    ``jobs``/``chunk_size`` geometry (the *device* axis is what
    shards). Under ``on_error="skip"`` returns an
    ``(UncertainResult, FailureReport)`` pair over surviving devices.
    """
    specs = tuple(catalog)
    if not specs:
        raise SimulationError("need at least one device in the portfolio")
    records = _check_records(list(scenarios))
    _validate_axis_names(records)
    if draws <= 0:
        raise SimulationError("draw count must be positive")
    kept = _kept_axis_names(records)
    plan = ShardPlan.plan(len(specs), chunk_size, jobs)
    payload = (specs, records, draws, seed)
    with active_recorder().span(
        "batch",
        fn="sweep_portfolio_uncertain",
        scenarios=len(records),
        draws=draws,
        devices=len(specs),
    ):
        result = run_sharded(
            _portfolio_uncertain_chunk,
            payload,
            plan,
            jobs=jobs,
            combine=Table.concat,
            retries=retries,
            timeout=timeout,
            on_error=on_error,
            checkpoint=checkpoint,
        )
    if isinstance(result, tuple):
        detail, report = result
        return (
            _portfolio_uncertain_result(detail, records, kept, draws, seed),
            report,
        )
    return _portfolio_uncertain_result(result, records, kept, draws, seed)
