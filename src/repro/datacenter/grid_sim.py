"""Diurnal grid carbon-intensity generator.

Carbon-aware scheduling (Section VI) needs a grid whose intensity
varies over the day: solar floods the midday grid with clean energy,
evenings lean on gas peakers. This module generates deterministic
hourly intensity profiles with an optional seeded noise term.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SimulationError
from ..units import CarbonIntensity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..traces.intensity import IntensityTrace

__all__ = ["DiurnalGridModel"]

#: ``cleanest_hour`` deprecation is announced once per process: batched
#: sweeps call the forward in tight loops, and one warning per call
#: drowns real diagnostics (Python's per-location registry does not
#: help because every call shares one call site inside this module).
_CLEANEST_HOUR_WARNED = False


def _warn_cleanest_hour_once() -> None:
    global _CLEANEST_HOUR_WARNED
    if _CLEANEST_HOUR_WARNED:
        return
    _CLEANEST_HOUR_WARNED = True
    warnings.warn(
        "DiurnalGridModel.cleanest_hour() is deprecated; use "
        "model.trace(24).cleanest_window(1) instead (this warning is "
        "emitted once per process)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class DiurnalGridModel:
    """An hourly grid-intensity profile.

    Intensity follows ``base - solar_depth * bell(midday) +
    evening_peak * bell(evening)`` — a stylized duck curve. All
    parameters in g CO2e/kWh.
    """

    base_g_per_kwh: float = 420.0
    solar_depth_g_per_kwh: float = 180.0
    evening_peak_g_per_kwh: float = 60.0
    noise_g_per_kwh: float = 0.0
    seed: int = 0

    _SOLAR_NOON = 13.0
    _EVENING_PEAK = 20.0

    def __post_init__(self) -> None:
        if self.base_g_per_kwh <= 0.0:
            raise SimulationError("base intensity must be positive")
        if self.solar_depth_g_per_kwh < 0.0 or self.evening_peak_g_per_kwh < 0.0:
            raise SimulationError("profile amplitudes must be non-negative")
        if self.noise_g_per_kwh < 0.0:
            raise SimulationError("noise amplitude must be non-negative")
        if self.solar_depth_g_per_kwh >= self.base_g_per_kwh:
            raise SimulationError("solar depth would drive intensity negative")

    @staticmethod
    def _bell(hour_of_day: float, center: float, width: float) -> float:
        distance = min(
            abs(hour_of_day - center),
            24.0 - abs(hour_of_day - center),
        )
        return math.exp(-(distance * distance) / (2.0 * width * width))

    def intensity_at(self, hour: float) -> CarbonIntensity:
        """Deterministic intensity at an (absolute) hour offset."""
        hour_of_day = hour % 24.0
        value = (
            self.base_g_per_kwh
            - self.solar_depth_g_per_kwh * self._bell(hour_of_day, self._SOLAR_NOON, 3.0)
            + self.evening_peak_g_per_kwh * self._bell(hour_of_day, self._EVENING_PEAK, 2.0)
        )
        return CarbonIntensity.g_per_kwh(max(value, 1.0))

    def hourly_series(self, hours: int) -> np.ndarray:
        """Intensity (g/kWh) for ``hours`` consecutive hours.

        With ``noise_g_per_kwh > 0`` a seeded Gaussian perturbation is
        added, clipped at 1 g/kWh so intensities stay physical.
        """
        if hours <= 0:
            raise SimulationError("series length must be positive")
        hour_of_day = np.arange(hours, dtype=float) % 24.0

        def bell(center: float, width: float) -> np.ndarray:
            offset = np.abs(hour_of_day - center)
            distance = np.minimum(offset, 24.0 - offset)
            return np.exp(-(distance * distance) / (2.0 * width * width))

        values = (
            self.base_g_per_kwh
            - self.solar_depth_g_per_kwh * bell(self._SOLAR_NOON, 3.0)
            + self.evening_peak_g_per_kwh * bell(self._EVENING_PEAK, 2.0)
        )
        np.maximum(values, 1.0, out=values)
        if self.noise_g_per_kwh > 0.0:
            rng = np.random.default_rng(self.seed)
            values = values + rng.normal(0.0, self.noise_g_per_kwh, size=hours)
        return np.clip(values, 1.0, None)

    def trace(self, hours: int, name: str = "diurnal") -> "IntensityTrace":
        """This profile as an :class:`~repro.traces.IntensityTrace`.

        The bridge into the traces subsystem: one vectorized series
        build instead of per-hour ``intensity_at`` calls.
        """
        from ..traces.intensity import IntensityTrace

        return IntensityTrace(name, self.hourly_series(hours))

    def cleanest_hour(self) -> int:
        """Hour of day with the lowest deterministic intensity.

        .. deprecated:: prefer ``model.trace(24).cleanest_window(1)``,
           which generalizes to multi-hour windows and noisy profiles.
           This wrapper delegates there (on the noiseless profile, as
           before) and survives for callers of the original API.

        Migration: ``model.cleanest_hour()`` becomes
        ``int(model.trace(24).cleanest_window(1).start_hour)``; pass a
        longer horizon or window for multi-hour placement, and drop the
        noise-stripping — ``cleanest_window`` handles noisy series. The
        :class:`DeprecationWarning` is emitted once per process, not
        per call, so batched sweeps that still route through this
        forward do not flood the log.
        """
        _warn_cleanest_hour_once()
        deterministic = (
            self
            if self.noise_g_per_kwh == 0.0
            else replace(self, noise_g_per_kwh=0.0)
        )
        window = deterministic.trace(24).cleanest_window(1.0)
        return int(window.start_hour)
