"""Multi-year data-center fleet simulation.

Reproduces the *mechanism* behind Figures 2 and 11: a growing server
fleet consumes more energy every year, yet renewable procurement drives
the market-based operational carbon toward zero while capex
(new-server manufacturing plus construction amortization) keeps
growing. The simulation emits one report per year with both Scope 2
variants and the opex/capex split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.embodied import EmbodiedModel
from ..errors import SimulationError
from ..tabular import Table
from ..units import JOULES_PER_KWH, SECONDS_PER_YEAR, Carbon, CarbonIntensity, Energy
from .facility import Facility
from .renewable import RenewablePortfolio
from .server import ServerConfig

__all__ = [
    "FleetParameters",
    "FleetYearReport",
    "FleetBatchResult",
    "simulate_fleet",
    "simulate_fleet_batch",
]


@dataclass(frozen=True)
class FleetParameters:
    """Inputs to the fleet simulation.

    ``renewable_ramp`` maps simulation year index (0-based) to the
    portfolio held that year; missing years reuse the last defined
    portfolio (empty portfolio by default).
    """

    server: ServerConfig
    facility: Facility
    location_intensity: CarbonIntensity
    initial_servers: int
    annual_growth: float
    utilization: float = 0.45
    years: int = 6
    start_year: int = 2014
    renewable_ramp: dict[int, RenewablePortfolio] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.initial_servers <= 0:
            raise SimulationError("initial fleet size must be positive")
        if self.annual_growth < 0.0:
            raise SimulationError("growth rate must be non-negative")
        if not 0.0 <= self.utilization <= 1.0:
            raise SimulationError("utilization must be in [0, 1]")
        if self.years <= 0:
            raise SimulationError("simulation needs at least one year")


@dataclass(frozen=True, slots=True)
class FleetYearReport:
    """One simulated year of fleet operation."""

    year: int
    servers: int
    servers_added: int
    energy: Energy
    opex_location: Carbon
    opex_market: Carbon
    capex: Carbon
    renewable_coverage: float

    @property
    def capex_to_opex_market(self) -> float:
        if self.opex_market.grams == 0.0:
            return float("inf")
        return self.capex.grams / self.opex_market.grams

    @property
    def capex_fraction_market(self) -> float:
        total = self.capex.grams + self.opex_market.grams
        if total == 0.0:
            raise SimulationError("zero total footprint; fraction undefined")
        return self.capex.grams / total


def simulate_fleet(
    params: FleetParameters, embodied: EmbodiedModel | None = None
) -> list[FleetYearReport]:
    """Run the year-by-year fleet simulation.

    Each year the fleet grows by ``annual_growth``; servers older than
    the SKU lifetime are replaced (their replacements count as capex).
    Capex per year = embodied carbon of purchased servers plus the
    facility's construction amortization. Opex per year = facility
    energy (IT energy times PUE) scored at the location intensity and
    at the portfolio's market-based intensity.
    """
    embodied = embodied or EmbodiedModel()
    per_server = params.server.embodied_carbon(embodied)
    reports: list[FleetYearReport] = []
    fleet_size = params.initial_servers
    portfolio = RenewablePortfolio()
    # Age ring: cohort sizes by purchase year, for refresh accounting.
    cohorts: list[int] = [params.initial_servers]
    lifetime = max(int(round(params.server.lifetime_years)), 1)
    for index in range(params.years):
        portfolio = params.renewable_ramp.get(index, portfolio)
        if index == 0:
            purchased = params.initial_servers
        else:
            grown = int(round(fleet_size * (1.0 + params.annual_growth)))
            growth_purchases = grown - fleet_size
            retired = cohorts.pop(0) if len(cohorts) >= lifetime else 0
            purchased = growth_purchases + retired
            fleet_size = grown
            cohorts.append(purchased)
        it_energy = params.server.annual_energy(params.utilization) * float(
            fleet_size
        )
        total_energy = params.facility.facility_energy(it_energy)
        opex_location = params.location_intensity.carbon_for(total_energy)
        coverage = (
            portfolio.coverage(total_energy) if portfolio.contracts else 0.0
        )
        opex_market = (
            portfolio.market_carbon(total_energy, params.location_intensity)
            if portfolio.contracts
            else opex_location
        )
        capex = per_server * float(purchased) + params.facility.construction_per_year()
        reports.append(
            FleetYearReport(
                year=params.start_year + index,
                servers=fleet_size,
                servers_added=purchased,
                energy=total_energy,
                opex_location=opex_location,
                opex_market=opex_market,
                capex=capex,
                renewable_coverage=coverage,
            )
        )
    return reports


@dataclass(frozen=True)
class FleetBatchResult:
    """Struct-of-arrays output of :func:`simulate_fleet_batch`.

    Every per-year field is a ``(scenarios, horizon)`` array where
    ``horizon`` is the longest scenario; cells past a scenario's own
    ``years`` are zero and excluded by :meth:`valid_mask`. Values are
    element-identical to what :func:`simulate_fleet` produces for the
    same :class:`FleetParameters` (pinned by the equivalence tests).
    """

    start_years: np.ndarray
    years: np.ndarray
    servers: np.ndarray
    servers_added: np.ndarray
    energy_joules: np.ndarray
    opex_location_grams: np.ndarray
    opex_market_grams: np.ndarray
    capex_grams: np.ndarray
    renewable_coverage: np.ndarray

    @property
    def num_scenarios(self) -> int:
        return int(self.servers.shape[0])

    @property
    def horizon(self) -> int:
        return int(self.servers.shape[1])

    def valid_mask(self) -> np.ndarray:
        """Boolean ``(scenarios, horizon)`` mask of simulated cells."""
        return np.arange(self.horizon)[None, :] < self.years[:, None]

    def capex_to_opex_market(self) -> np.ndarray:
        """Per-cell capex/market-opex ratio (inf at zero market opex)."""
        with np.errstate(divide="ignore"):
            return np.where(
                self.opex_market_grams == 0.0,
                np.inf,
                self.capex_grams / np.where(
                    self.opex_market_grams == 0.0, 1.0, self.opex_market_grams
                ),
            )

    def capex_fraction_market(self) -> np.ndarray:
        """Per-cell capex share of the market-based total footprint."""
        total = self.capex_grams + self.opex_market_grams
        if np.any((total == 0.0) & self.valid_mask()):
            raise SimulationError("zero total footprint; fraction undefined")
        return self.capex_grams / np.where(total == 0.0, 1.0, total)

    def reports(self, scenario: int) -> list[FleetYearReport]:
        """Reconstruct one scenario as scalar :class:`FleetYearReport`s."""
        if not 0 <= scenario < self.num_scenarios:
            raise SimulationError(
                f"scenario index {scenario} out of range "
                f"[0, {self.num_scenarios})"
            )
        span = int(self.years[scenario])
        start = int(self.start_years[scenario])
        return [
            FleetYearReport(
                year=start + index,
                servers=int(self.servers[scenario, index]),
                servers_added=int(self.servers_added[scenario, index]),
                energy=Energy(float(self.energy_joules[scenario, index])),
                opex_location=Carbon(
                    float(self.opex_location_grams[scenario, index])
                ),
                opex_market=Carbon(float(self.opex_market_grams[scenario, index])),
                capex=Carbon(float(self.capex_grams[scenario, index])),
                renewable_coverage=float(
                    self.renewable_coverage[scenario, index]
                ),
            )
            for index in range(span)
        ]

    def to_table(self) -> Table:
        """Long-format table: one row per simulated scenario-year."""
        mask = self.valid_mask()
        scenario_index, year_index = np.nonzero(mask)
        return Table(
            {
                "scenario": scenario_index,
                "year": self.start_years[scenario_index] + year_index,
                "servers": self.servers[mask],
                "servers_added": self.servers_added[mask],
                "energy_gwh": self.energy_joules[mask] / JOULES_PER_KWH / 1e6,
                "opex_location_kt": self.opex_location_grams[mask] / 1e6 / 1e3,
                "opex_market_kt": self.opex_market_grams[mask] / 1e6 / 1e3,
                "capex_kt": self.capex_grams[mask] / 1e6 / 1e3,
                "coverage": self.renewable_coverage[mask],
                "capex_fraction_market": self.capex_fraction_market()[mask],
            }
        )

    def final_year_table(self) -> Table:
        """One row per scenario: its last simulated year."""
        rows = np.arange(self.num_scenarios)
        last = self.years - 1
        return Table(
            {
                "scenario": rows,
                "year": self.start_years + last,
                "servers": self.servers[rows, last],
                "energy_gwh": self.energy_joules[rows, last] / JOULES_PER_KWH / 1e6,
                "opex_location_kt": self.opex_location_grams[rows, last] / 1e6 / 1e3,
                "opex_market_kt": self.opex_market_grams[rows, last] / 1e6 / 1e3,
                "capex_kt": self.capex_grams[rows, last] / 1e6 / 1e3,
                "coverage": self.renewable_coverage[rows, last],
                "capex_fraction_market": self.capex_fraction_market()[rows, last],
                "capex_to_opex_market": self.capex_to_opex_market()[rows, last],
            }
        )


def _portfolio_schedule(
    params: FleetParameters, horizon: int, cache: dict[int, tuple[float, float]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-year (has_contracts, supply_joules, contracted_g_per_kwh).

    Expands the sparse ``renewable_ramp`` into dense per-year arrays,
    holding the last defined portfolio across gap years exactly like
    the scalar loop does.
    """
    has = np.zeros(horizon, dtype=bool)
    supply = np.zeros(horizon, dtype=np.float64)
    contracted = np.zeros(horizon, dtype=np.float64)
    portfolio = RenewablePortfolio()
    for index in range(params.years):
        portfolio = params.renewable_ramp.get(index, portfolio)
        if not portfolio.contracts:
            continue
        key = id(portfolio)
        if key not in cache:
            cache[key] = (
                portfolio.annual_supply.joules,
                portfolio.contracted_intensity().grams_per_kwh,
            )
        has[index] = True
        supply[index], contracted[index] = cache[key]
    return has, supply, contracted


def simulate_fleet_batch(
    scenarios: Sequence[FleetParameters],
    embodied: EmbodiedModel | None = None,
) -> FleetBatchResult:
    """Run many fleet simulations as one years × scenarios kernel.

    The scalar :func:`simulate_fleet` is the reference implementation;
    this kernel keeps the short year loop in Python and vectorizes the
    wide scenario axis with numpy. The cohort/refresh ring becomes a
    rolling gather on the purchase history: the cohort retired in year
    ``i`` is exactly the one purchased in year ``i - lifetime``.
    Per-SKU embodied carbon is computed once per distinct
    :class:`ServerConfig` instead of once per scenario.
    """
    if not scenarios:
        raise SimulationError("need at least one scenario")
    embodied = embodied or EmbodiedModel()
    count = len(scenarios)
    horizon = max(params.years for params in scenarios)

    # Embodied carbon depends only on the bill of materials, which
    # dataclasses.replace-derived SKU variants share — so scenario
    # grids over e.g. lifetime hit one embodied evaluation per bill.
    embodied_cache: dict[int, float] = {}

    def per_server_grams(server: ServerConfig) -> float:
        key = id(server.bill)
        if key not in embodied_cache:
            embodied_cache[key] = server.embodied_carbon(embodied).grams
        return embodied_cache[key]

    initial = np.array([p.initial_servers for p in scenarios], dtype=np.int64)
    growth = np.array([p.annual_growth for p in scenarios], dtype=np.float64)
    years = np.array([p.years for p in scenarios], dtype=np.int64)
    start_years = np.array([p.start_year for p in scenarios], dtype=np.int64)
    lifetime = np.array(
        [max(int(round(p.server.lifetime_years)), 1) for p in scenarios],
        dtype=np.int64,
    )
    # Same arithmetic order as ServerConfig.power_at/annual_energy.
    idle = np.array(
        [p.server.idle_power.watts_value for p in scenarios], dtype=np.float64
    )
    span = np.array(
        [p.server.peak_power.watts_value for p in scenarios], dtype=np.float64
    ) - idle
    utilization = np.array([p.utilization for p in scenarios], dtype=np.float64)
    annual_joules = (idle + span * utilization) * SECONDS_PER_YEAR
    pue = np.array([p.facility.pue for p in scenarios], dtype=np.float64)
    location = np.array(
        [p.location_intensity.grams_per_kwh for p in scenarios], dtype=np.float64
    )
    per_server = np.array(
        [per_server_grams(p.server) for p in scenarios], dtype=np.float64
    )
    construction = np.array(
        [p.facility.construction_per_year().grams for p in scenarios],
        dtype=np.float64,
    )

    portfolio_cache: dict[int, tuple[float, float]] = {}
    has_contracts = np.zeros((count, horizon), dtype=bool)
    supply_joules = np.zeros((count, horizon), dtype=np.float64)
    contracted = np.zeros((count, horizon), dtype=np.float64)
    for index, params in enumerate(scenarios):
        has, supply, gpk = _portfolio_schedule(params, horizon, portfolio_cache)
        has_contracts[index] = has
        supply_joules[index] = supply
        contracted[index] = gpk

    servers = np.zeros((count, horizon), dtype=np.int64)
    purchased = np.zeros((count, horizon), dtype=np.int64)
    energy_joules = np.zeros((count, horizon), dtype=np.float64)
    opex_location = np.zeros((count, horizon), dtype=np.float64)
    opex_market = np.zeros((count, horizon), dtype=np.float64)
    capex = np.zeros((count, horizon), dtype=np.float64)
    coverage = np.zeros((count, horizon), dtype=np.float64)

    rows = np.arange(count)
    fleet = initial.copy()
    for index in range(horizon):
        active = index < years
        if index == 0:
            bought = initial
        else:
            grown = np.rint(fleet.astype(np.float64) * (1.0 + growth)).astype(
                np.int64
            )
            retire_from = index - lifetime
            retired = np.where(
                retire_from >= 0,
                purchased[rows, np.maximum(retire_from, 0)],
                0,
            )
            bought = (grown - fleet) + retired
            fleet = np.where(active, grown, fleet)
        purchased[active, index] = bought[active]
        servers[active, index] = fleet[active]

        it_joules = annual_joules * fleet.astype(np.float64)
        total_joules = it_joules * pue
        kwh = total_joules / JOULES_PER_KWH
        year_location = location * kwh

        has = has_contracts[:, index]
        if np.any(has & (total_joules <= 0.0)):
            raise SimulationError("demand must be positive")
        with np.errstate(divide="ignore", invalid="ignore"):
            raw_coverage = np.minimum(
                supply_joules[:, index]
                / np.where(total_joules > 0.0, total_joules, 1.0),
                1.0,
            )
        year_coverage = np.where(has, raw_coverage, 0.0)
        market_intensity = (
            location * (1.0 - year_coverage) + contracted[:, index] * year_coverage
        )
        year_market = np.where(has, market_intensity * kwh, year_location)
        year_capex = per_server * bought.astype(np.float64) + construction

        energy_joules[active, index] = total_joules[active]
        opex_location[active, index] = year_location[active]
        opex_market[active, index] = year_market[active]
        capex[active, index] = year_capex[active]
        coverage[active, index] = year_coverage[active]

    return FleetBatchResult(
        start_years=start_years,
        years=years,
        servers=servers,
        servers_added=purchased,
        energy_joules=energy_joules,
        opex_location_grams=opex_location,
        opex_market_grams=opex_market,
        capex_grams=capex,
        renewable_coverage=coverage,
    )
