"""Multi-year data-center fleet simulation.

Reproduces the *mechanism* behind Figures 2 and 11: a growing server
fleet consumes more energy every year, yet renewable procurement drives
the market-based operational carbon toward zero while capex
(new-server manufacturing plus construction amortization) keeps
growing. The simulation emits one report per year with both Scope 2
variants and the opex/capex split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.embodied import EmbodiedModel
from ..errors import SimulationError
from ..units import Carbon, CarbonIntensity, Energy
from .facility import Facility
from .renewable import RenewablePortfolio
from .server import ServerConfig

__all__ = ["FleetParameters", "FleetYearReport", "simulate_fleet"]


@dataclass(frozen=True)
class FleetParameters:
    """Inputs to the fleet simulation.

    ``renewable_ramp`` maps simulation year index (0-based) to the
    portfolio held that year; missing years reuse the last defined
    portfolio (empty portfolio by default).
    """

    server: ServerConfig
    facility: Facility
    location_intensity: CarbonIntensity
    initial_servers: int
    annual_growth: float
    utilization: float = 0.45
    years: int = 6
    start_year: int = 2014
    renewable_ramp: dict[int, RenewablePortfolio] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.initial_servers <= 0:
            raise SimulationError("initial fleet size must be positive")
        if self.annual_growth < 0.0:
            raise SimulationError("growth rate must be non-negative")
        if not 0.0 <= self.utilization <= 1.0:
            raise SimulationError("utilization must be in [0, 1]")
        if self.years <= 0:
            raise SimulationError("simulation needs at least one year")


@dataclass(frozen=True, slots=True)
class FleetYearReport:
    """One simulated year of fleet operation."""

    year: int
    servers: int
    servers_added: int
    energy: Energy
    opex_location: Carbon
    opex_market: Carbon
    capex: Carbon
    renewable_coverage: float

    @property
    def capex_to_opex_market(self) -> float:
        if self.opex_market.grams == 0.0:
            return float("inf")
        return self.capex.grams / self.opex_market.grams

    @property
    def capex_fraction_market(self) -> float:
        total = self.capex.grams + self.opex_market.grams
        if total == 0.0:
            raise SimulationError("zero total footprint; fraction undefined")
        return self.capex.grams / total


def simulate_fleet(
    params: FleetParameters, embodied: EmbodiedModel | None = None
) -> list[FleetYearReport]:
    """Run the year-by-year fleet simulation.

    Each year the fleet grows by ``annual_growth``; servers older than
    the SKU lifetime are replaced (their replacements count as capex).
    Capex per year = embodied carbon of purchased servers plus the
    facility's construction amortization. Opex per year = facility
    energy (IT energy times PUE) scored at the location intensity and
    at the portfolio's market-based intensity.
    """
    embodied = embodied or EmbodiedModel()
    per_server = params.server.embodied_carbon(embodied)
    reports: list[FleetYearReport] = []
    fleet_size = params.initial_servers
    portfolio = RenewablePortfolio()
    # Age ring: cohort sizes by purchase year, for refresh accounting.
    cohorts: list[int] = [params.initial_servers]
    lifetime = max(int(round(params.server.lifetime_years)), 1)
    for index in range(params.years):
        portfolio = params.renewable_ramp.get(index, portfolio)
        if index == 0:
            purchased = params.initial_servers
        else:
            grown = int(round(fleet_size * (1.0 + params.annual_growth)))
            growth_purchases = grown - fleet_size
            retired = cohorts.pop(0) if len(cohorts) >= lifetime else 0
            purchased = growth_purchases + retired
            fleet_size = grown
            cohorts.append(purchased)
        it_energy = params.server.annual_energy(params.utilization) * float(
            fleet_size
        )
        total_energy = params.facility.facility_energy(it_energy)
        opex_location = params.location_intensity.carbon_for(total_energy)
        coverage = (
            portfolio.coverage(total_energy) if portfolio.contracts else 0.0
        )
        opex_market = (
            portfolio.market_carbon(total_energy, params.location_intensity)
            if portfolio.contracts
            else opex_location
        )
        capex = per_server * float(purchased) + params.facility.construction_per_year()
        reports.append(
            FleetYearReport(
                year=params.start_year + index,
                servers=fleet_size,
                servers_added=purchased,
                energy=total_energy,
                opex_location=opex_location,
                opex_market=opex_market,
                capex=capex,
                renewable_coverage=coverage,
            )
        )
    return reports
