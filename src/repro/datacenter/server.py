"""Server models: embodied carbon and operational power.

A :class:`ServerConfig` couples a bill of materials (for the embodied
model) with a linear utilization-to-power model (the standard
warehouse-scale approximation: power rises linearly from an idle floor
to peak).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.embodied import BillOfMaterials, EmbodiedModel
from ..errors import SimulationError
from ..fab.process import node_by_name
from ..units import Carbon, Energy, Power, SECONDS_PER_YEAR

__all__ = ["ServerConfig", "WEB_SERVER", "AI_TRAINING_SERVER", "STORAGE_SERVER"]


@dataclass(frozen=True)
class ServerConfig:
    """One server SKU."""

    name: str
    bill: BillOfMaterials
    idle_power: Power
    peak_power: Power
    lifetime_years: float = 4.0

    def __post_init__(self) -> None:
        if self.peak_power.watts_value <= 0.0:
            raise SimulationError(f"{self.name}: peak power must be positive")
        if self.idle_power.watts_value < 0.0:
            raise SimulationError(f"{self.name}: idle power must be non-negative")
        if self.idle_power.watts_value > self.peak_power.watts_value:
            raise SimulationError(f"{self.name}: idle power exceeds peak power")
        if self.lifetime_years <= 0.0:
            raise SimulationError(f"{self.name}: lifetime must be positive")

    def power_at(self, utilization: float) -> Power:
        """Linear power model between idle and peak."""
        if not 0.0 <= utilization <= 1.0:
            raise SimulationError(f"utilization must be in [0, 1], got {utilization}")
        span = self.peak_power.watts_value - self.idle_power.watts_value
        return Power.watts(self.idle_power.watts_value + span * utilization)

    def annual_energy(self, utilization: float) -> Energy:
        """IT-side energy for one year at a steady utilization."""
        return self.power_at(utilization).energy_over(SECONDS_PER_YEAR)

    def embodied_carbon(self, model: EmbodiedModel | None = None) -> Carbon:
        """Manufacturing footprint of one unit."""
        return (model or EmbodiedModel()).total(self.bill)

    def embodied_per_year(self, model: EmbodiedModel | None = None) -> Carbon:
        """Embodied carbon amortized over the service lifetime."""
        return self.embodied_carbon(model) * (1.0 / self.lifetime_years)


def _bill_web() -> BillOfMaterials:
    node = node_by_name("16nm")
    return BillOfMaterials(
        name="web_server",
        logic_dies={"cpu_0": (400.0, node), "cpu_1": (400.0, node)},
        dram_gb=256.0,
        nand_gb=2000.0,
        fixed_kg={
            "mainboard": 35.0,
            "chassis_and_psu": 45.0,
            "nic_and_misc": 15.0,
            "assembly": 20.0,
        },
    )


def _bill_ai() -> BillOfMaterials:
    cpu_node = node_by_name("16nm")
    gpu_node = node_by_name("7nm")
    return BillOfMaterials(
        name="ai_training_server",
        logic_dies={
            "cpu_0": (400.0, cpu_node),
            "cpu_1": (400.0, cpu_node),
            "accel_0": (815.0, gpu_node),
            "accel_1": (815.0, gpu_node),
            "accel_2": (815.0, gpu_node),
            "accel_3": (815.0, gpu_node),
        },
        dram_gb=1024.0,
        nand_gb=8000.0,
        fixed_kg={
            "mainboard": 60.0,
            "chassis_and_psu": 80.0,
            "nic_and_misc": 30.0,
            "hbm_stacks": 120.0,
            "assembly": 35.0,
        },
    )


def _bill_storage() -> BillOfMaterials:
    node = node_by_name("28nm")
    return BillOfMaterials(
        name="storage_server",
        logic_dies={"cpu_0": (300.0, node)},
        dram_gb=128.0,
        nand_gb=4000.0,
        hdd_tb=240.0,
        fixed_kg={
            "mainboard": 30.0,
            "chassis_and_psu": 55.0,
            "assembly": 20.0,
        },
    )


#: A dual-socket web/frontend server.
WEB_SERVER = ServerConfig(
    name="web_server",
    bill=_bill_web(),
    idle_power=Power.watts(120.0),
    peak_power=Power.watts(420.0),
)

#: A four-accelerator AI training node.
AI_TRAINING_SERVER = ServerConfig(
    name="ai_training_server",
    bill=_bill_ai(),
    idle_power=Power.watts(400.0),
    peak_power=Power.watts(2200.0),
)

#: A dense HDD storage node.
STORAGE_SERVER = ServerConfig(
    name="storage_server",
    bill=_bill_storage(),
    idle_power=Power.watts(180.0),
    peak_power=Power.watts(380.0),
    lifetime_years=5.0,
)
