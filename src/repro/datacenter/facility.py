"""Data-center facility model: PUE and construction overhead.

The facility contributes to both sides of the paper's ledger: PUE
multiplies every joule of IT energy (opex), and construction embodied
carbon is a capex wedge amortized over the building's life — part of
the "construction and infrastructure" that dominates Scope 3 for
Facebook and Google.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..units import Carbon, Energy

__all__ = ["Facility"]


@dataclass(frozen=True, slots=True)
class Facility:
    """A warehouse-scale building.

    ``construction_carbon`` covers concrete, steel, and fit-out;
    hyperscale builds run on the order of tens of kilotonnes CO2e per
    site. ``pue`` is the power-usage-effectiveness of the cooling and
    power delivery (modern warehouse-scale facilities run ~1.1).
    """

    name: str
    pue: float
    construction_carbon: Carbon
    lifetime_years: float = 20.0

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise SimulationError(f"{self.name}: PUE cannot be below 1.0")
        if self.construction_carbon.grams < 0.0:
            raise SimulationError(f"{self.name}: construction carbon is negative")
        if self.lifetime_years <= 0.0:
            raise SimulationError(f"{self.name}: lifetime must be positive")

    def facility_energy(self, it_energy: Energy) -> Energy:
        """Total grid draw needed to deliver ``it_energy`` to servers."""
        return it_energy * self.pue

    def overhead_energy(self, it_energy: Energy) -> Energy:
        """Cooling/distribution losses alone."""
        return it_energy * (self.pue - 1.0)

    def construction_per_year(self) -> Carbon:
        """Construction embodied carbon amortized per service year."""
        return self.construction_carbon * (1.0 / self.lifetime_years)
