"""Bridge from fleet simulation to GHG-Protocol reporting.

Turns :class:`~repro.datacenter.fleet.FleetYearReport` objects into the
same :class:`~repro.core.ghg.GHGInventory` / ReportSeries structures
the corporate datasets use — so a simulated operator can be analyzed
with exactly the tooling that processes Facebook's and Google's real
filings (scope tables, 23x-style ratios, opex/capex splits).
"""

from __future__ import annotations

from typing import Sequence

from ..core.ghg import GHGInventory, ReportSeries, Scope
from ..errors import AccountingError
from .fleet import FleetYearReport

__all__ = ["fleet_year_to_inventory", "fleet_to_report_series"]


def fleet_year_to_inventory(
    organization: str, report: FleetYearReport
) -> GHGInventory:
    """File one simulated year as a GHG inventory.

    Purchased electricity lands in both Scope 2 variants; server
    manufacturing and construction land in Scope 3 as capital goods.
    """
    inventory = GHGInventory(organization, report.year)
    inventory.add(
        Scope.SCOPE2_LOCATION, "purchased_electricity", report.opex_location
    )
    inventory.add(Scope.SCOPE2_MARKET, "purchased_electricity", report.opex_market)
    inventory.add(Scope.SCOPE3_UPSTREAM, "capital_goods", report.capex)
    return inventory


def fleet_to_report_series(
    organization: str, reports: Sequence[FleetYearReport]
) -> ReportSeries:
    """File a whole simulation as a multi-year report series."""
    if not reports:
        raise AccountingError("cannot build a report series from zero years")
    return ReportSeries(
        organization,
        [fleet_year_to_inventory(organization, report) for report in reports],
    )
