"""Data-center substrate: servers, facilities, fleets, renewables.

Models the warehouse-scale side of the paper (Section IV): server
embodied carbon from a bill of materials, facility PUE and construction
overhead, multi-year fleet simulation with hardware refresh, renewable
procurement with market-based accounting, a diurnal grid-intensity
generator, and the carbon-aware batch scheduler the paper's Section VI
points to.
"""

from .server import ServerConfig, WEB_SERVER, AI_TRAINING_SERVER, STORAGE_SERVER
from .facility import Facility
from .renewable import PPAContract, RenewablePortfolio
from .fleet import (
    FleetBatchResult,
    FleetParameters,
    FleetYearReport,
    simulate_fleet,
    simulate_fleet_batch,
)
from .grid_sim import DiurnalGridModel
from .scheduler import (
    BatchJob,
    ScheduleResult,
    schedule_carbon_agnostic,
    schedule_carbon_aware,
)
from .reporting import fleet_year_to_inventory, fleet_to_report_series
from .heterogeneity import (
    WorkloadClass,
    ServerType,
    ProvisioningPlan,
    BatchProvisioning,
    provision_homogeneous,
    provision_heterogeneous,
    provision_homogeneous_batch,
    provision_heterogeneous_batch,
    compare_provisioning,
)

__all__ = [
    "ServerConfig",
    "WEB_SERVER",
    "AI_TRAINING_SERVER",
    "STORAGE_SERVER",
    "Facility",
    "PPAContract",
    "RenewablePortfolio",
    "FleetParameters",
    "FleetYearReport",
    "FleetBatchResult",
    "simulate_fleet",
    "simulate_fleet_batch",
    "DiurnalGridModel",
    "BatchJob",
    "ScheduleResult",
    "schedule_carbon_agnostic",
    "schedule_carbon_aware",
    "fleet_year_to_inventory",
    "fleet_to_report_series",
    "WorkloadClass",
    "ServerType",
    "ProvisioningPlan",
    "BatchProvisioning",
    "provision_homogeneous",
    "provision_heterogeneous",
    "provision_homogeneous_batch",
    "provision_heterogeneous_batch",
    "compare_provisioning",
]
