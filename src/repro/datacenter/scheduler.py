"""Carbon-aware batch scheduling (Section VI research direction).

The paper points to run-time systems that "schedule batch-processing
workloads during periods when renewable energy is readily available".
This module implements that idea against the diurnal grid model and a
carbon-agnostic baseline so the ablation benchmark can quantify the
savings.

Jobs are hour-granular, non-preemptible, and power-constrained: the
cluster can draw at most ``capacity_kw`` in any hour. The agnostic
scheduler starts every job as early as possible; the aware scheduler
picks, for each job (most energy-hungry first), the feasible start
slot with the lowest total carbon.

Placement is O(starts) per job rather than O(starts x duration): the
per-start carbon of every candidate window comes from one prefix-sum
subtraction, and feasibility from a single sliding-window maximum of
the committed load.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from ..errors import SimulationError
from ..units import Carbon, Energy

__all__ = [
    "BatchJob",
    "JobPlacement",
    "ScheduleResult",
    "schedule_carbon_agnostic",
    "schedule_carbon_aware",
]


@dataclass(frozen=True, slots=True)
class BatchJob:
    """A deferrable batch workload."""

    name: str
    duration_hours: int
    power_kw: float
    arrival_hour: int = 0
    deadline_hour: int | None = None

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise SimulationError(f"{self.name}: duration must be positive")
        if self.power_kw <= 0.0:
            raise SimulationError(f"{self.name}: power must be positive")
        if self.arrival_hour < 0:
            raise SimulationError(f"{self.name}: arrival must be non-negative")
        if self.deadline_hour is not None:
            if self.deadline_hour < self.arrival_hour + self.duration_hours:
                raise SimulationError(
                    f"{self.name}: deadline leaves no feasible start slot"
                )

    @property
    def energy(self) -> Energy:
        return Energy.kwh(self.power_kw * self.duration_hours)


@dataclass(frozen=True, slots=True)
class JobPlacement:
    """Where one job landed and what it emitted."""

    job: BatchJob
    start_hour: int
    carbon: Carbon


@dataclass(frozen=True)
class ScheduleResult:
    """A full schedule with its carbon total."""

    placements: tuple[JobPlacement, ...]

    @cached_property
    def total_carbon(self) -> Carbon:
        """Total schedule carbon: one pass over the grams, cached.

        Summing raw grams sequentially matches the old
        Carbon-by-Carbon accumulation bit for bit while skipping the
        intermediate Carbon allocations; the cache makes repeated
        reads (savings ratios, report tables) free.
        """
        return Carbon.from_grams(
            sum(placement.carbon.grams for placement in self.placements)
        )

    def placement_for(self, name: str) -> JobPlacement:
        for placement in self.placements:
            if placement.job.name == name:
                return placement
        raise SimulationError(f"no placement for job {name!r}")

    def load_profile(self, horizon_hours: int) -> np.ndarray:
        """Committed cluster power (kW) for each hour of the horizon.

        The evaluator's peak-load statistic reads straight off this
        array; it is also the schedule's occupancy proof — every
        placement must fit inside ``horizon_hours``.
        """
        if horizon_hours <= 0:
            raise SimulationError("load profile horizon must be positive")
        load = np.zeros(horizon_hours)
        for placement in self.placements:
            end = placement.start_hour + placement.job.duration_hours
            if end > horizon_hours:
                raise SimulationError(
                    f"{placement.job.name}: placement ends at hour {end}, "
                    f"beyond the {horizon_hours} h horizon"
                )
            load[placement.start_hour : end] += placement.job.power_kw
        return load


def _agnostic_order(job: BatchJob) -> tuple:
    """Arrival order (ties by name): the throughput queue's view."""
    return (job.arrival_hour, job.name)


def _aware_order(job: BatchJob) -> tuple:
    """Most-energy-first (ties by name): the greedy scheduler's view."""
    return (-job.power_kw * job.duration_hours, job.name)


def _feasible_starts(job: BatchJob, horizon: int) -> range:
    latest = (
        horizon - job.duration_hours
        if job.deadline_hour is None
        else min(job.deadline_hour - job.duration_hours, horizon - job.duration_hours)
    )
    return range(job.arrival_hour, latest + 1)


def _prefix_sum(intensity: np.ndarray) -> np.ndarray:
    """``csum[..., k]`` = intensity summed over hours ``[0, k)``, so any
    window sum is one subtraction: ``csum[..., s + d] - csum[..., s]``.

    Operates on the last axis, so the batched trace kernel can run the
    *same implementation* over a ``(traces, hours)`` matrix — one
    definition to keep the scalar/batched equivalence honest.
    """
    csum = np.zeros(intensity.shape[:-1] + (intensity.shape[-1] + 1,))
    np.cumsum(intensity, axis=-1, out=csum[..., 1:])
    return csum


def _window_carbon_grams(
    csum: np.ndarray, starts: np.ndarray | int, duration: int, power_kw: float
) -> np.ndarray | float:
    """Carbon (grams) of running ``power_kw`` for ``duration`` hours
    from each start, via the intensity prefix sums — O(1) per start."""
    return (csum[starts + duration] - csum[starts]) * power_kw


def _window_load_max(load_kw: np.ndarray, duration: int) -> np.ndarray:
    """Max committed load within each length-``duration`` window.

    A job fits at start ``s`` iff this max plus its own power stays
    under capacity — one sliding-window pass replaces the per-start
    rescan of the whole window. Computed as ``duration - 1`` shifted
    elementwise maxima, which beats ``sliding_window_view`` on the
    hour-scale durations batch jobs have. Windows slide along the last
    axis, so the batched trace kernel shares this implementation.
    """
    if duration == 1:
        return load_kw
    span = load_kw.shape[-1] - duration + 1
    result = load_kw[..., :span].copy()
    for offset in range(1, duration):
        np.maximum(result, load_kw[..., offset : offset + span], out=result)
    return result


def _validate(jobs: Sequence[BatchJob], intensity: np.ndarray, capacity_kw: float) -> None:
    if capacity_kw <= 0.0:
        raise SimulationError("cluster capacity must be positive")
    horizon = intensity.shape[0]
    for job in jobs:
        if job.power_kw > capacity_kw:
            raise SimulationError(f"{job.name}: power exceeds cluster capacity")
        if job.arrival_hour + job.duration_hours > horizon:
            raise SimulationError(f"{job.name}: cannot finish within the horizon")


def schedule_carbon_agnostic(
    jobs: Sequence[BatchJob],
    intensity_g_per_kwh: np.ndarray,
    capacity_kw: float,
) -> ScheduleResult:
    """Baseline: start each job at the earliest feasible hour.

    Jobs are processed in arrival order (ties by name) — the behaviour
    of a throughput-oriented batch queue that ignores the grid.
    """
    intensity = np.asarray(intensity_g_per_kwh, dtype=float)
    _validate(jobs, intensity, capacity_kw)
    csum = _prefix_sum(intensity)
    load = np.zeros(intensity.shape[0])
    placements: list[JobPlacement] = []
    for job in sorted(jobs, key=_agnostic_order):
        starts = _feasible_starts(job, intensity.shape[0])
        if len(starts) == 0:
            raise SimulationError(f"{job.name}: no feasible slot under capacity")
        window_max = _window_load_max(load, job.duration_hours)
        feasible = (
            window_max[starts.start : starts.stop] + job.power_kw
            <= capacity_kw + 1e-9
        )
        first = int(np.argmax(feasible))
        if not feasible[first]:
            raise SimulationError(f"{job.name}: no feasible slot under capacity")
        start = starts.start + first
        load[start : start + job.duration_hours] += job.power_kw
        grams = float(_window_carbon_grams(csum, start, job.duration_hours, job.power_kw))
        placements.append(JobPlacement(job, start, Carbon.from_grams(grams)))
    return ScheduleResult(tuple(placements))


def schedule_carbon_aware(
    jobs: Sequence[BatchJob],
    intensity_g_per_kwh: np.ndarray,
    capacity_kw: float,
) -> ScheduleResult:
    """Greedy carbon-aware scheduler.

    Jobs are placed most-energy-first; each takes the feasible start
    slot minimizing its own carbon given the load committed so far.
    Greedy is not optimal but captures the mechanism and is
    deterministic.
    """
    intensity = np.asarray(intensity_g_per_kwh, dtype=float)
    _validate(jobs, intensity, capacity_kw)
    csum = _prefix_sum(intensity)
    load = np.zeros(intensity.shape[0])
    placements: list[JobPlacement] = []
    ordered = sorted(jobs, key=_aware_order)
    for job in ordered:
        starts = _feasible_starts(job, intensity.shape[0])
        if len(starts) == 0:
            raise SimulationError(f"{job.name}: no feasible slot under capacity")
        window_max = _window_load_max(load, job.duration_hours)
        feasible = (
            window_max[starts.start : starts.stop] + job.power_kw
            <= capacity_kw + 1e-9
        )
        if not feasible.any():
            raise SimulationError(f"{job.name}: no feasible slot under capacity")
        grams = _window_carbon_grams(
            csum,
            np.arange(starts.start, starts.stop),
            job.duration_hours,
            job.power_kw,
        )
        grams = np.where(feasible, grams, np.inf)
        best = int(np.argmin(grams))  # first minimum = earliest clean start
        start = starts.start + best
        load[start : start + job.duration_hours] += job.power_kw
        placements.append(
            JobPlacement(job, start, Carbon.from_grams(float(grams[best])))
        )
    return ScheduleResult(tuple(placements))
