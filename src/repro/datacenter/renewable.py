"""Renewable-energy procurement and market-based accounting.

Warehouse operators sign power-purchase agreements (PPAs) for wind and
solar; under GHG-Protocol market-based accounting the contracted
energy is scored at the contracted source's intensity. This module
models a portfolio of contracts and computes the coverage and
effective market-based intensity that drive Figure 11's diverging
location/market Scope 2 lines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.intensity import EnergySource, market_based_intensity
from ..errors import SimulationError
from ..units import Carbon, CarbonIntensity, Energy

__all__ = ["PPAContract", "RenewablePortfolio"]


@dataclass(frozen=True, slots=True)
class PPAContract:
    """One power-purchase agreement."""

    name: str
    source: EnergySource
    annual_energy: Energy

    def __post_init__(self) -> None:
        if self.annual_energy.joules <= 0.0:
            raise SimulationError(f"{self.name}: contracted energy must be positive")
        if not self.source.renewable:
            raise SimulationError(
                f"{self.name}: {self.source.name} is not a renewable source"
            )


@dataclass(frozen=True)
class RenewablePortfolio:
    """A set of PPAs held by a data-center operator."""

    contracts: tuple[PPAContract, ...] = ()

    @property
    def annual_supply(self) -> Energy:
        total = Energy.zero()
        for contract in self.contracts:
            total = total + contract.annual_energy
        return total

    def contracted_intensity(self) -> CarbonIntensity:
        """Supply-weighted intensity of the contracted sources."""
        supply = self.annual_supply
        if supply.joules == 0.0:
            return CarbonIntensity.g_per_kwh(0.0)
        weighted = sum(
            contract.source.intensity.grams_per_kwh
            * (contract.annual_energy.joules / supply.joules)
            for contract in self.contracts
        )
        return CarbonIntensity.g_per_kwh(weighted)

    def coverage(self, demand: Energy) -> float:
        """Fraction of demand matched by contracts (capped at 1).

        ``demand`` may carry a 1-D joule array (the units types accept
        draw/scenario vectors), in which case an elementwise coverage
        array comes back and flows through :meth:`market_intensity` /
        :meth:`market_carbon` as array-valued quantities.
        """
        joules = demand.joules
        if isinstance(joules, np.ndarray):
            if np.any(joules <= 0.0):
                raise SimulationError("demand must be positive")
            return np.minimum(self.annual_supply.joules / joules, 1.0)
        if joules <= 0.0:
            raise SimulationError("demand must be positive")
        return min(self.annual_supply.joules / joules, 1.0)

    def market_intensity(
        self, demand: Energy, location: CarbonIntensity
    ) -> CarbonIntensity:
        """Effective market-based Scope 2 intensity for ``demand``."""
        return market_based_intensity(
            location=location,
            renewable_coverage=self.coverage(demand),
            renewable=self.contracted_intensity(),
        )

    def market_carbon(self, demand: Energy, location: CarbonIntensity) -> Carbon:
        return self.market_intensity(demand, location).carbon_for(demand)

    def location_carbon(self, demand: Energy, location: CarbonIntensity) -> Carbon:
        return location.carbon_for(demand)
