"""Heterogeneous provisioning: specialization as a carbon lever.

Section VI: "systems researchers [should] consider how heterogeneity
can reduce carbon footprint by reducing overall hardware resources in
the data center". This module provisions a workload mix two ways —

* **homogeneous**: one general-purpose SKU serves everything;
* **heterogeneous**: each workload runs on the SKU that serves it with
  the fewest machines —

and prices both fleets in embodied and operational carbon, so the
specialization question becomes a number instead of a slogan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.embodied import EmbodiedModel
from ..errors import SimulationError
from ..tabular import Table
from ..units import SECONDS_PER_YEAR, JOULES_PER_KWH, Carbon, CarbonIntensity
from .server import ServerConfig

__all__ = [
    "WorkloadClass",
    "ServerType",
    "ProvisioningPlan",
    "BatchProvisioning",
    "provision_homogeneous",
    "provision_heterogeneous",
    "provision_homogeneous_batch",
    "provision_heterogeneous_batch",
    "compare_provisioning",
]


@dataclass(frozen=True, slots=True)
class WorkloadClass:
    """A service with a steady-state demand in requests per second."""

    name: str
    demand_rps: float

    def __post_init__(self) -> None:
        if self.demand_rps <= 0.0:
            raise SimulationError(f"{self.name}: demand must be positive")


@dataclass(frozen=True)
class ServerType:
    """A SKU and what it can serve.

    ``throughput_rps`` maps workload name to this SKU's capacity for
    that workload; absent workloads cannot run on it.
    """

    config: ServerConfig
    throughput_rps: Mapping[str, float]

    def __post_init__(self) -> None:
        for workload, capacity in self.throughput_rps.items():
            if capacity <= 0.0:
                raise SimulationError(
                    f"{self.config.name}: capacity for {workload!r} must be "
                    "positive"
                )
        object.__setattr__(self, "throughput_rps", dict(self.throughput_rps))

    def can_serve(self, workload: str) -> bool:
        return workload in self.throughput_rps

    def servers_for(
        self, workload: WorkloadClass, utilization_target: float
    ) -> int:
        if not self.can_serve(workload.name):
            raise SimulationError(
                f"{self.config.name} cannot serve {workload.name!r}"
            )
        if not 0.0 < utilization_target <= 1.0:
            raise SimulationError("utilization target must be in (0, 1]")
        effective = self.throughput_rps[workload.name] * utilization_target
        return max(int(math.ceil(workload.demand_rps / effective)), 1)


@dataclass(frozen=True)
class ProvisioningPlan:
    """A fleet assignment: (server type, workload) -> machine count."""

    name: str
    assignments: tuple[tuple[ServerType, WorkloadClass, int], ...]
    utilization_target: float

    @property
    def total_servers(self) -> int:
        return sum(count for _, _, count in self.assignments)

    def embodied_per_year(self, model: EmbodiedModel | None = None) -> Carbon:
        model = model or EmbodiedModel()
        total = Carbon.zero()
        for server_type, _, count in self.assignments:
            total = total + server_type.config.embodied_per_year(model) * float(
                count
            )
        return total

    def operational_per_year(self, grid: CarbonIntensity) -> Carbon:
        total = Carbon.zero()
        for server_type, _, count in self.assignments:
            annual = server_type.config.annual_energy(self.utilization_target)
            total = total + grid.carbon_for(annual) * float(count)
        return total

    def total_per_year(
        self, grid: CarbonIntensity, model: EmbodiedModel | None = None
    ) -> Carbon:
        return self.embodied_per_year(model) + self.operational_per_year(grid)


def provision_homogeneous(
    workloads: Sequence[WorkloadClass],
    general: ServerType,
    utilization_target: float = 0.6,
) -> ProvisioningPlan:
    """Serve every workload on the general-purpose SKU."""
    if not workloads:
        raise SimulationError("need at least one workload")
    assignments = tuple(
        (general, workload, general.servers_for(workload, utilization_target))
        for workload in workloads
    )
    return ProvisioningPlan("homogeneous", assignments, utilization_target)


def provision_heterogeneous(
    workloads: Sequence[WorkloadClass],
    server_types: Sequence[ServerType],
    utilization_target: float = 0.6,
) -> ProvisioningPlan:
    """Pick, per workload, the SKU needing the fewest machines.

    Ties break toward the SKU with lower embodied carbon per machine,
    so specialization never costs carbon on equal counts.
    """
    if not workloads:
        raise SimulationError("need at least one workload")
    if not server_types:
        raise SimulationError("need at least one server type")
    model = EmbodiedModel()
    assignments = []
    for workload in workloads:
        candidates = [
            server_type
            for server_type in server_types
            if server_type.can_serve(workload.name)
        ]
        if not candidates:
            raise SimulationError(f"no server type can serve {workload.name!r}")
        best = min(
            candidates,
            key=lambda server_type: (
                server_type.servers_for(workload, utilization_target),
                server_type.config.embodied_carbon(model).grams,
            ),
        )
        assignments.append(
            (best, workload, best.servers_for(workload, utilization_target))
        )
    return ProvisioningPlan("heterogeneous", tuple(assignments), utilization_target)


@dataclass(frozen=True)
class BatchProvisioning:
    """Struct-of-arrays output of the batched provisioning kernels.

    One scenario is a (demand vector, utilization target) pair; the
    ``choice``/``counts`` arrays are ``(scenarios, workloads)`` and are
    element-identical to the scalar :func:`provision_heterogeneous` /
    :func:`provision_homogeneous` assignments for the same inputs.
    """

    name: str
    workloads: tuple[WorkloadClass, ...]
    server_types: tuple[ServerType, ...]
    utilization_targets: np.ndarray
    demands: np.ndarray
    choice: np.ndarray
    counts: np.ndarray

    @property
    def num_scenarios(self) -> int:
        return int(self.counts.shape[0])

    def total_servers(self) -> np.ndarray:
        """Machine count per scenario (sum over workloads)."""
        return self.counts.sum(axis=1)

    def embodied_per_year_grams(
        self, model: EmbodiedModel | None = None
    ) -> np.ndarray:
        """Amortized embodied carbon per scenario, in grams CO2e.

        Accumulates workload by workload in the scalar plan's order so
        the floating-point sum matches :meth:`ProvisioningPlan.embodied_per_year`
        exactly.
        """
        model = model or EmbodiedModel()
        per_sku = np.array(
            [
                server_type.config.embodied_per_year(model).grams
                for server_type in self.server_types
            ],
            dtype=np.float64,
        )
        total = np.zeros(self.num_scenarios, dtype=np.float64)
        for workload_index in range(len(self.workloads)):
            total = total + per_sku[self.choice[:, workload_index]] * self.counts[
                :, workload_index
            ].astype(np.float64)
        return total

    def operational_per_year_grams(self, grid: CarbonIntensity) -> np.ndarray:
        """Operational carbon per scenario at ``grid``, in grams CO2e."""
        idle = np.array(
            [t.config.idle_power.watts_value for t in self.server_types]
        )
        span = (
            np.array([t.config.peak_power.watts_value for t in self.server_types])
            - idle
        )
        # (scenarios, skus): ServerConfig.annual_energy at each target.
        annual_kwh = (
            (idle[None, :] + span[None, :] * self.utilization_targets[:, None])
            * SECONDS_PER_YEAR
            / JOULES_PER_KWH
        )
        per_sku = grid.grams_per_kwh * annual_kwh
        total = np.zeros(self.num_scenarios, dtype=np.float64)
        rows = np.arange(self.num_scenarios)
        for workload_index in range(len(self.workloads)):
            chosen = self.choice[:, workload_index]
            total = total + per_sku[rows, chosen] * self.counts[
                :, workload_index
            ].astype(np.float64)
        return total

    def total_per_year_grams(
        self, grid: CarbonIntensity, model: EmbodiedModel | None = None
    ) -> np.ndarray:
        return self.embodied_per_year_grams(model) + self.operational_per_year_grams(
            grid
        )

    def plan(self, scenario: int) -> ProvisioningPlan:
        """Reconstruct one scenario as a scalar :class:`ProvisioningPlan`."""
        if not 0 <= scenario < self.num_scenarios:
            raise SimulationError(
                f"scenario index {scenario} out of range "
                f"[0, {self.num_scenarios})"
            )
        assignments = []
        for workload_index, workload in enumerate(self.workloads):
            demand = float(self.demands[scenario, workload_index])
            scaled = (
                workload
                if demand == workload.demand_rps
                else WorkloadClass(workload.name, demand)
            )
            assignments.append(
                (
                    self.server_types[int(self.choice[scenario, workload_index])],
                    scaled,
                    int(self.counts[scenario, workload_index]),
                )
            )
        return ProvisioningPlan(
            self.name,
            tuple(assignments),
            float(self.utilization_targets[scenario]),
        )

    def summary_table(
        self, grid: CarbonIntensity, model: EmbodiedModel | None = None
    ) -> Table:
        """Per-scenario fleet accounting, compare_provisioning-style."""
        model = model or EmbodiedModel()
        embodied = self.embodied_per_year_grams(model)
        operational = self.operational_per_year_grams(grid)
        return Table(
            {
                "plan": [self.name] * self.num_scenarios,
                "scenario": np.arange(self.num_scenarios),
                "utilization_target": self.utilization_targets,
                "servers": self.total_servers(),
                "embodied_t_per_year": embodied / 1e6,
                "operational_t_per_year": operational / 1e6,
                "total_t_per_year": (embodied + operational) / 1e6,
            }
        )


def _batch_axes(
    workloads: Sequence[WorkloadClass],
    utilization_targets: "float | Sequence[float] | np.ndarray",
    demands: "np.ndarray | None",
) -> tuple[np.ndarray, np.ndarray]:
    """Broadcast utilization targets and demand vectors to (S,) / (S, W)."""
    targets = np.atleast_1d(np.asarray(utilization_targets, dtype=np.float64))
    if targets.ndim != 1:
        raise SimulationError("utilization targets must be scalar or 1-D")
    # Negated form so NaN fails validation like it does on the scalar path.
    if np.any(~((targets > 0.0) & (targets <= 1.0))):
        raise SimulationError("utilization target must be in (0, 1]")
    base = np.array([w.demand_rps for w in workloads], dtype=np.float64)
    if demands is None:
        demand_matrix = base[None, :]
    else:
        demand_matrix = np.asarray(demands, dtype=np.float64)
        if demand_matrix.ndim == 1:
            # A per-scenario scale factor on the base demand vector.
            demand_matrix = demand_matrix[:, None] * base[None, :]
        if demand_matrix.shape[1] != len(workloads):
            raise SimulationError(
                f"demand matrix has {demand_matrix.shape[1]} workloads, "
                f"expected {len(workloads)}"
            )
        if np.any(~(demand_matrix > 0.0)):
            raise SimulationError("demand must be positive everywhere")
    count = max(len(targets), demand_matrix.shape[0])
    if len(targets) not in (1, count) or demand_matrix.shape[0] not in (1, count):
        raise SimulationError(
            "utilization targets and demands must broadcast to one "
            "scenario count"
        )
    targets = np.broadcast_to(targets, (count,)).copy()
    demand_matrix = np.broadcast_to(
        demand_matrix, (count, len(base))
    ).copy()
    return targets, demand_matrix


def provision_heterogeneous_batch(
    workloads: Sequence[WorkloadClass],
    server_types: Sequence[ServerType],
    utilization_targets: "float | Sequence[float] | np.ndarray" = 0.6,
    demands: "np.ndarray | None" = None,
    name: str = "heterogeneous",
) -> BatchProvisioning:
    """Batched :func:`provision_heterogeneous` over many scenarios.

    ``demands`` may be a ``(scenarios, workloads)`` requests-per-second
    matrix or a per-scenario scale factor on the workloads' base
    demand; ``utilization_targets`` broadcasts likewise. The kernel
    ceil-divides the demand matrix by the SKU capacity matrix and picks
    the per-workload argmin SKU with the scalar path's
    (machine count, embodied carbon, declaration order) tie-break.
    """
    if not workloads:
        raise SimulationError("need at least one workload")
    if not server_types:
        raise SimulationError("need at least one server type")
    targets, demand_matrix = _batch_axes(workloads, utilization_targets, demands)

    capacity = np.full((len(server_types), len(workloads)), np.nan)
    for sku_index, server_type in enumerate(server_types):
        for workload_index, workload in enumerate(workloads):
            if server_type.can_serve(workload.name):
                capacity[sku_index, workload_index] = server_type.throughput_rps[
                    workload.name
                ]
    servable = ~np.isnan(capacity)
    for workload_index, workload in enumerate(workloads):
        if not servable[:, workload_index].any():
            raise SimulationError(f"no server type can serve {workload.name!r}")

    # counts[s, k, w]: machines if scenario s ran workload w on SKU k.
    effective = capacity[None, :, :] * targets[:, None, None]
    with np.errstate(invalid="ignore"):
        counts_all = np.maximum(
            np.ceil(demand_matrix[:, None, :] / effective), 1.0
        )
    counts_all = np.where(servable[None, :, :], counts_all, np.inf)

    # Scalar tie-break: min (count, embodied grams, declaration order).
    model = EmbodiedModel()
    embodied = [
        server_type.config.embodied_carbon(model).grams
        for server_type in server_types
    ]
    order = sorted(range(len(server_types)), key=lambda k: (embodied[k], k))
    tie_rank = np.empty(len(server_types), dtype=np.int64)
    tie_rank[order] = np.arange(len(server_types))

    best_counts = counts_all.min(axis=1, keepdims=True)
    candidate_rank = np.where(
        counts_all == best_counts, tie_rank[None, :, None], len(server_types)
    )
    choice = candidate_rank.argmin(axis=1)
    counts = np.take_along_axis(
        counts_all, choice[:, None, :], axis=1
    )[:, 0, :].astype(np.int64)

    return BatchProvisioning(
        name=name,
        workloads=tuple(workloads),
        server_types=tuple(server_types),
        utilization_targets=targets,
        demands=demand_matrix,
        choice=choice,
        counts=counts,
    )


def provision_homogeneous_batch(
    workloads: Sequence[WorkloadClass],
    general: ServerType,
    utilization_targets: "float | Sequence[float] | np.ndarray" = 0.6,
    demands: "np.ndarray | None" = None,
) -> BatchProvisioning:
    """Batched :func:`provision_homogeneous`: one SKU serves everything."""
    for workload in workloads:
        if not general.can_serve(workload.name):
            raise SimulationError(
                f"{general.config.name} cannot serve {workload.name!r}"
            )
    return provision_heterogeneous_batch(
        workloads,
        [general],
        utilization_targets,
        demands,
        name="homogeneous",
    )


def compare_provisioning(
    homogeneous: ProvisioningPlan,
    heterogeneous: ProvisioningPlan,
    grid: CarbonIntensity,
    model: EmbodiedModel | None = None,
) -> Table:
    """Side-by-side carbon accounting of the two fleets."""
    model = model or EmbodiedModel()
    records = []
    for plan in (homogeneous, heterogeneous):
        records.append(
            {
                "plan": plan.name,
                "servers": plan.total_servers,
                "embodied_t_per_year": plan.embodied_per_year(model).tonnes_value,
                "operational_t_per_year": plan.operational_per_year(
                    grid
                ).tonnes_value,
                "total_t_per_year": plan.total_per_year(grid, model).tonnes_value,
            }
        )
    return Table.from_records(records)
