"""Heterogeneous provisioning: specialization as a carbon lever.

Section VI: "systems researchers [should] consider how heterogeneity
can reduce carbon footprint by reducing overall hardware resources in
the data center". This module provisions a workload mix two ways —

* **homogeneous**: one general-purpose SKU serves everything;
* **heterogeneous**: each workload runs on the SKU that serves it with
  the fewest machines —

and prices both fleets in embodied and operational carbon, so the
specialization question becomes a number instead of a slogan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.embodied import EmbodiedModel
from ..errors import SimulationError
from ..tabular import Table
from ..units import Carbon, CarbonIntensity
from .server import ServerConfig

__all__ = [
    "WorkloadClass",
    "ServerType",
    "ProvisioningPlan",
    "provision_homogeneous",
    "provision_heterogeneous",
    "compare_provisioning",
]


@dataclass(frozen=True, slots=True)
class WorkloadClass:
    """A service with a steady-state demand in requests per second."""

    name: str
    demand_rps: float

    def __post_init__(self) -> None:
        if self.demand_rps <= 0.0:
            raise SimulationError(f"{self.name}: demand must be positive")


@dataclass(frozen=True)
class ServerType:
    """A SKU and what it can serve.

    ``throughput_rps`` maps workload name to this SKU's capacity for
    that workload; absent workloads cannot run on it.
    """

    config: ServerConfig
    throughput_rps: Mapping[str, float]

    def __post_init__(self) -> None:
        for workload, capacity in self.throughput_rps.items():
            if capacity <= 0.0:
                raise SimulationError(
                    f"{self.config.name}: capacity for {workload!r} must be "
                    "positive"
                )
        object.__setattr__(self, "throughput_rps", dict(self.throughput_rps))

    def can_serve(self, workload: str) -> bool:
        return workload in self.throughput_rps

    def servers_for(
        self, workload: WorkloadClass, utilization_target: float
    ) -> int:
        if not self.can_serve(workload.name):
            raise SimulationError(
                f"{self.config.name} cannot serve {workload.name!r}"
            )
        if not 0.0 < utilization_target <= 1.0:
            raise SimulationError("utilization target must be in (0, 1]")
        effective = self.throughput_rps[workload.name] * utilization_target
        return max(int(math.ceil(workload.demand_rps / effective)), 1)


@dataclass(frozen=True)
class ProvisioningPlan:
    """A fleet assignment: (server type, workload) -> machine count."""

    name: str
    assignments: tuple[tuple[ServerType, WorkloadClass, int], ...]
    utilization_target: float

    @property
    def total_servers(self) -> int:
        return sum(count for _, _, count in self.assignments)

    def embodied_per_year(self, model: EmbodiedModel | None = None) -> Carbon:
        model = model or EmbodiedModel()
        total = Carbon.zero()
        for server_type, _, count in self.assignments:
            total = total + server_type.config.embodied_per_year(model) * float(
                count
            )
        return total

    def operational_per_year(self, grid: CarbonIntensity) -> Carbon:
        total = Carbon.zero()
        for server_type, _, count in self.assignments:
            annual = server_type.config.annual_energy(self.utilization_target)
            total = total + grid.carbon_for(annual) * float(count)
        return total

    def total_per_year(
        self, grid: CarbonIntensity, model: EmbodiedModel | None = None
    ) -> Carbon:
        return self.embodied_per_year(model) + self.operational_per_year(grid)


def provision_homogeneous(
    workloads: Sequence[WorkloadClass],
    general: ServerType,
    utilization_target: float = 0.6,
) -> ProvisioningPlan:
    """Serve every workload on the general-purpose SKU."""
    if not workloads:
        raise SimulationError("need at least one workload")
    assignments = tuple(
        (general, workload, general.servers_for(workload, utilization_target))
        for workload in workloads
    )
    return ProvisioningPlan("homogeneous", assignments, utilization_target)


def provision_heterogeneous(
    workloads: Sequence[WorkloadClass],
    server_types: Sequence[ServerType],
    utilization_target: float = 0.6,
) -> ProvisioningPlan:
    """Pick, per workload, the SKU needing the fewest machines.

    Ties break toward the SKU with lower embodied carbon per machine,
    so specialization never costs carbon on equal counts.
    """
    if not workloads:
        raise SimulationError("need at least one workload")
    if not server_types:
        raise SimulationError("need at least one server type")
    model = EmbodiedModel()
    assignments = []
    for workload in workloads:
        candidates = [
            server_type
            for server_type in server_types
            if server_type.can_serve(workload.name)
        ]
        if not candidates:
            raise SimulationError(f"no server type can serve {workload.name!r}")
        best = min(
            candidates,
            key=lambda server_type: (
                server_type.servers_for(workload, utilization_target),
                server_type.config.embodied_carbon(model).grams,
            ),
        )
        assignments.append(
            (best, workload, best.servers_for(workload, utilization_target))
        )
    return ProvisioningPlan("heterogeneous", tuple(assignments), utilization_target)


def compare_provisioning(
    homogeneous: ProvisioningPlan,
    heterogeneous: ProvisioningPlan,
    grid: CarbonIntensity,
    model: EmbodiedModel | None = None,
) -> Table:
    """Side-by-side carbon accounting of the two fleets."""
    model = model or EmbodiedModel()
    records = []
    for plan in (homogeneous, heterogeneous):
        records.append(
            {
                "plan": plan.name,
                "servers": plan.total_servers,
                "embodied_t_per_year": plan.embodied_per_year(model).tonnes_value,
                "operational_t_per_year": plan.operational_per_year(
                    grid
                ).tonnes_value,
                "total_t_per_year": plan.total_per_year(grid, model).tonnes_value,
            }
        )
    return Table.from_records(records)
