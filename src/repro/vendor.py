"""Mobile-vendor model: from product lines to a corporate footprint.

Figure 5 shows Apple's footprint as almost entirely hardware life
cycle. This module builds that result *generatively*: a vendor is a
set of product lines (LCA record x units sold per year) plus a small
corporate overhead; filing a year books each unit's production,
transport, and end-of-life into Scope 3 upstream and the unit's
lifetime use phase into Scope 3 downstream, the way vendor GHG filings
work. The ext07 experiment checks the emergent breakdown lands on the
paper's 74% manufacturing / 19% use shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .core.ghg import GHGInventory, OpexCapex, Scope
from .core.lca import LifeCycleStage, ProductLCA
from .errors import AccountingError
from .tabular import Table
from .units import Carbon

__all__ = ["ProductLine", "VendorModel"]


@dataclass(frozen=True, slots=True)
class ProductLine:
    """One shipping product and its annual volume."""

    lca: ProductLCA
    units_per_year: float

    def __post_init__(self) -> None:
        if self.units_per_year <= 0.0:
            raise AccountingError(
                f"{self.lca.product}: units per year must be positive"
            )

    def stage_total(self, stage: LifeCycleStage) -> Carbon:
        """Annual emissions booked for one life-cycle stage."""
        return self.lca.stage_carbon(stage) * self.units_per_year


@dataclass(frozen=True)
class VendorModel:
    """A device vendor: product lines plus corporate overhead."""

    name: str
    lines: Sequence[ProductLine]
    corporate_facilities: Carbon = Carbon.zero()
    business_travel: Carbon = Carbon.zero()

    def __post_init__(self) -> None:
        if not self.lines:
            raise AccountingError(f"{self.name}: needs at least one product line")
        object.__setattr__(self, "lines", tuple(self.lines))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def stage_total(self, stage: LifeCycleStage) -> Carbon:
        total = Carbon.zero()
        for line in self.lines:
            total = total + line.stage_total(stage)
        return total

    def total(self) -> Carbon:
        total = self.corporate_facilities + self.business_travel
        for stage in LifeCycleStage:
            total = total + self.stage_total(stage)
        return total

    def lifecycle_fraction(self) -> float:
        """Share of the footprint that is hardware life cycle."""
        lifecycle = Carbon.zero()
        for stage in LifeCycleStage:
            lifecycle = lifecycle + self.stage_total(stage)
        return lifecycle.grams / self.total().grams

    # ------------------------------------------------------------------
    # GHG filing
    # ------------------------------------------------------------------
    def inventory(self, year: int) -> GHGInventory:
        """File one reporting year under the GHG Protocol."""
        inventory = GHGInventory(self.name, year)
        if self.corporate_facilities.grams > 0.0:
            inventory.add(
                Scope.SCOPE2_LOCATION, "corporate_facilities",
                self.corporate_facilities,
            )
            inventory.add(
                Scope.SCOPE2_MARKET, "corporate_facilities",
                self.corporate_facilities,
            )
        if self.business_travel.grams > 0.0:
            inventory.add(
                Scope.SCOPE3_UPSTREAM, "business_travel", self.business_travel
            )
        inventory.add(
            Scope.SCOPE3_UPSTREAM, "manufacturing",
            self.stage_total(LifeCycleStage.PRODUCTION),
        )
        inventory.add(
            Scope.SCOPE3_UPSTREAM, "product_transport",
            self.stage_total(LifeCycleStage.TRANSPORT),
        )
        inventory.add(
            Scope.SCOPE3_DOWNSTREAM, "product_use",
            self.stage_total(LifeCycleStage.USE),
            classification=OpexCapex.OPEX,
        )
        inventory.add(
            Scope.SCOPE3_DOWNSTREAM, "recycling",
            self.stage_total(LifeCycleStage.END_OF_LIFE),
        )
        return inventory

    def breakdown_table(self) -> Table:
        """The Figure 5 view: per-group shares of the vendor total."""
        total = self.total().grams
        if total <= 0.0:
            raise AccountingError(f"{self.name}: zero total footprint")
        records = [
            {
                "group": "manufacturing",
                "fraction": self.stage_total(LifeCycleStage.PRODUCTION).grams
                / total,
            },
            {
                "group": "product_use",
                "fraction": self.stage_total(LifeCycleStage.USE).grams / total,
            },
            {
                "group": "product_transport",
                "fraction": self.stage_total(LifeCycleStage.TRANSPORT).grams
                / total,
            },
            {
                "group": "recycling",
                "fraction": self.stage_total(LifeCycleStage.END_OF_LIFE).grams
                / total,
            },
            {
                "group": "corporate_facilities",
                "fraction": self.corporate_facilities.grams / total,
            },
            {
                "group": "business_travel",
                "fraction": self.business_travel.grams / total,
            },
        ]
        return Table.from_records(records).sort_by("fraction", reverse=True)
