"""Semiconductor-fab substrate: process nodes, yield, wafer footprints.

Models the manufacturing side of the paper (Section V / Figure 14):
per-wafer carbon decomposed into energy, PFC and diffusive emissions,
chemicals and gases, bulk gases, raw wafers, and other; a process-node
roadmap carrying per-area energy/gas/material coefficients; and die
yield so per-chip embodied carbon can be derived bottom-up.
"""

from .process import ProcessNode, NODE_ROADMAP, node_by_name
from .yields import poisson_yield, murphy_yield, dies_per_wafer
from .wafer import WaferFootprintModel, WaferBreakdown
from .abatement import AbatementPolicy
from .fabs import FabModel

__all__ = [
    "ProcessNode",
    "NODE_ROADMAP",
    "node_by_name",
    "poisson_yield",
    "murphy_yield",
    "dies_per_wafer",
    "WaferFootprintModel",
    "WaferBreakdown",
    "AbatementPolicy",
    "FabModel",
]
