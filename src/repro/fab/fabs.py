"""Fab-level model: capacity, energy demand, and GHG inventory.

Scales the per-wafer footprint model to a whole fabrication plant so a
chip manufacturer can be filed under the GHG Protocol exactly like the
data-center operators: process gases land in Scope 1, fab electricity
in Scope 2 (with a renewable share driving the market-based figure),
and wafer materials in Scope 3. Anchors from the paper: a 3 nm
gigafab may draw up to 7.7 billion kWh a year, and TSMC targets a 20%
renewable share by 2025.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ghg import GHGInventory, Scope
from ..core.intensity import market_based_intensity
from ..errors import SimulationError
from ..units import Carbon, CarbonIntensity, Energy
from .process import ProcessNode
from .wafer import WaferFootprintModel

__all__ = ["FabModel"]

_GAS_COMPONENTS = ("pfc_diffusive", "chemicals_gases", "bulk_gases")
_MATERIAL_COMPONENTS = ("raw_wafers", "other")


@dataclass(frozen=True)
class FabModel:
    """A fabrication plant running one node at a given capacity."""

    name: str
    node: ProcessNode
    wafer_starts_per_year: float
    grid: CarbonIntensity
    renewable_share: float = 0.0
    wafer_diameter_mm: float = 300.0

    def __post_init__(self) -> None:
        if self.wafer_starts_per_year <= 0.0:
            raise SimulationError(f"{self.name}: capacity must be positive")
        if not 0.0 <= self.renewable_share <= 1.0:
            raise SimulationError(f"{self.name}: renewable share in [0, 1]")

    # ------------------------------------------------------------------
    # Physical quantities
    # ------------------------------------------------------------------
    def wafer_model(self) -> WaferFootprintModel:
        return WaferFootprintModel.from_node(
            self.node, self.grid, self.wafer_diameter_mm
        )

    def annual_energy(self) -> Energy:
        """Electricity demand of the whole plant."""
        area_cm2 = self.wafer_model().wafer_area_cm2
        per_wafer = Energy.kwh(self.node.energy_kwh_per_cm2 * area_cm2)
        return per_wafer * self.wafer_starts_per_year

    def effective_intensity(self) -> CarbonIntensity:
        """Market-based intensity after renewable procurement."""
        return market_based_intensity(self.grid, self.renewable_share)

    # ------------------------------------------------------------------
    # Per-scope emissions
    # ------------------------------------------------------------------
    def scope1(self) -> Carbon:
        """Direct process-gas emissions (PFCs, chemicals, bulk gases)."""
        baseline = self.wafer_model().baseline
        per_wafer = Carbon.zero()
        for component in _GAS_COMPONENTS:
            per_wafer = per_wafer + baseline.components[component]
        return per_wafer * self.wafer_starts_per_year

    def scope2(self, market_based: bool = True) -> Carbon:
        intensity = self.effective_intensity() if market_based else self.grid
        return intensity.carbon_for(self.annual_energy())

    def scope3_materials(self) -> Carbon:
        """Upstream wafer and consumable materials."""
        baseline = self.wafer_model().baseline
        per_wafer = Carbon.zero()
        for component in _MATERIAL_COMPONENTS:
            per_wafer = per_wafer + baseline.components[component]
        return per_wafer * self.wafer_starts_per_year

    def inventory(self, year: int) -> GHGInventory:
        """File the fab as a GHG-Protocol inventory for one year."""
        inventory = GHGInventory(self.name, year)
        inventory.add(Scope.SCOPE1, "process_gases", self.scope1())
        inventory.add(
            Scope.SCOPE2_LOCATION, "fab_electricity",
            self.scope2(market_based=False),
        )
        inventory.add(
            Scope.SCOPE2_MARKET, "fab_electricity",
            self.scope2(market_based=True),
        )
        inventory.add(
            Scope.SCOPE3_UPSTREAM, "wafer_materials", self.scope3_materials()
        )
        return inventory

    # ------------------------------------------------------------------
    # What-ifs
    # ------------------------------------------------------------------
    def with_renewable_share(self, share: float) -> "FabModel":
        """The same fab with a different procurement level."""
        return FabModel(
            name=self.name,
            node=self.node,
            wafer_starts_per_year=self.wafer_starts_per_year,
            grid=self.grid,
            renewable_share=share,
            wafer_diameter_mm=self.wafer_diameter_mm,
        )

    def total_emissions(self, market_based: bool = True) -> Carbon:
        return (
            self.scope1()
            + self.scope2(market_based=market_based)
            + self.scope3_materials()
        )
