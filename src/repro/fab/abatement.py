"""PFC abatement modeling.

Fabs install point-of-use combustion/plasma abatement to destroy
perfluorocarbons before release. Abatement attacks the *non-energy*
wedge of the wafer footprint that renewable energy cannot touch, so it
composes with Figure 14's sweep: the ablation benchmark pairs the two
levers to show neither alone suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .wafer import WaferBreakdown

__all__ = ["AbatementPolicy"]

#: Components that point-of-use abatement can destroy.
_ABATABLE = ("pfc_diffusive", "chemicals_gases", "bulk_gases")


@dataclass(frozen=True, slots=True)
class AbatementPolicy:
    """Fraction of process-gas emissions destroyed before release.

    ``coverage`` is the fraction of tools fitted with abatement;
    ``destruction_efficiency`` is the removal efficiency of fitted
    tools (industry systems reach 90-99% for most PFCs).
    """

    coverage: float
    destruction_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise SimulationError(f"coverage must be in [0, 1], got {self.coverage}")
        if not 0.0 <= self.destruction_efficiency <= 1.0:
            raise SimulationError(
                "destruction efficiency must be in [0, 1], "
                f"got {self.destruction_efficiency}"
            )

    @property
    def removal_fraction(self) -> float:
        """Net fraction of abatable gas emissions removed."""
        return self.coverage * self.destruction_efficiency

    def apply(self, breakdown: WaferBreakdown) -> WaferBreakdown:
        """Return a breakdown with abatable components reduced."""
        keep = 1.0 - self.removal_fraction
        components = dict(breakdown.components)
        for name in _ABATABLE:
            components[name] = components[name] * keep
        return WaferBreakdown(components)
