"""Die yield and wafer-geometry models.

Per-die embodied carbon divides per-wafer carbon over the *good* dies,
so the bottom-up model needs (a) how many die candidates fit on a wafer
and (b) what fraction of them work.

Every function here is array-friendly: scalar inputs return plain
Python numbers (the historical behaviour), while numpy array inputs
broadcast elementwise and return float64 arrays. Both paths route
through the same numpy elementwise kernels (``np.exp``/``np.sqrt``),
which are position-stable: a scalar call produces bit-for-bit the same
float as the corresponding element of an array call. The portfolio
batch kernels (:mod:`repro.portfolio`) rely on exactly that contract to
stay element-identical to the scalar reference.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import SimulationError

__all__ = ["poisson_yield", "murphy_yield", "dies_per_wafer", "good_dies_per_wafer"]


def _any(condition: Any) -> bool:
    """Truth of a predicate over a scalar or an array."""
    if isinstance(condition, np.ndarray):
        return bool(condition.any())
    return bool(condition)


def _as_result(value: Any) -> "float | np.ndarray":
    """Arrays pass through; numpy scalars decay to Python floats."""
    if isinstance(value, np.ndarray):
        return value
    return float(value)


def poisson_yield(
    die_area_mm2: "float | np.ndarray",
    defect_density_per_cm2: "float | np.ndarray",
) -> "float | np.ndarray":
    """Poisson yield model: Y = exp(-A * D0).

    The classic first-order model; pessimistic for large dies. Accepts
    scalars or broadcastable numpy arrays.
    """
    _validate(die_area_mm2, defect_density_per_cm2)
    area_cm2 = die_area_mm2 / 100.0
    return _as_result(np.exp(-area_cm2 * defect_density_per_cm2))


def murphy_yield(
    die_area_mm2: "float | np.ndarray",
    defect_density_per_cm2: "float | np.ndarray",
) -> "float | np.ndarray":
    """Murphy's yield model: Y = ((1 - exp(-A*D0)) / (A*D0))^2.

    Assumes a triangular defect-density distribution; the standard
    industry compromise between Poisson and Seeds models. Accepts
    scalars or broadcastable numpy arrays; a zero ``A*D0`` yields 1.
    """
    _validate(die_area_mm2, defect_density_per_cm2)
    area_cm2 = die_area_mm2 / 100.0
    ad = area_cm2 * defect_density_per_cm2
    if isinstance(ad, np.ndarray):
        with np.errstate(divide="ignore", invalid="ignore"):
            base = (1.0 - np.exp(-ad)) / ad
            squared = base * base
        return np.where(ad == 0.0, 1.0, squared)
    if ad == 0.0:
        return 1.0
    base = (1.0 - np.exp(-ad)) / ad
    return float(base * base)


def dies_per_wafer(
    wafer_diameter_mm: "float | np.ndarray",
    die_area_mm2: "float | np.ndarray",
) -> "int | np.ndarray":
    """Gross die candidates per wafer (edge-loss corrected).

    Uses the standard approximation
    ``N = pi*(d/2)^2/A - pi*d/sqrt(2*A)`` which subtracts the partial
    dies lost around the wafer edge. Scalar inputs return an ``int``;
    array inputs return the (integral) counts as a float64 array.
    """
    if _any(np.asarray(wafer_diameter_mm) <= 0.0):
        raise SimulationError("wafer diameter must be positive")
    if _any(np.asarray(die_area_mm2) <= 0.0):
        raise SimulationError("die area must be positive")
    radius = wafer_diameter_mm / 2.0
    gross = (np.pi * radius * radius) / die_area_mm2
    edge_loss = (np.pi * wafer_diameter_mm) / np.sqrt(2.0 * die_area_mm2)
    count = np.maximum(np.trunc(gross - edge_loss), 0.0)
    if isinstance(count, np.ndarray):
        return count
    return int(count)


def good_dies_per_wafer(
    wafer_diameter_mm: "float | np.ndarray",
    die_area_mm2: "float | np.ndarray",
    defect_density_per_cm2: "float | np.ndarray",
    model: str = "murphy",
) -> "float | np.ndarray":
    """Expected working dies per wafer under the chosen yield model.

    Accepts scalars or broadcastable numpy arrays; the yield ``model``
    itself is a single choice for the whole call.
    """
    candidates = dies_per_wafer(wafer_diameter_mm, die_area_mm2)
    if model == "murphy":
        fraction = murphy_yield(die_area_mm2, defect_density_per_cm2)
    elif model == "poisson":
        fraction = poisson_yield(die_area_mm2, defect_density_per_cm2)
    else:
        raise SimulationError(f"unknown yield model {model!r}")
    return _as_result(candidates * fraction)


def _validate(
    die_area_mm2: "float | np.ndarray",
    defect_density_per_cm2: "float | np.ndarray",
) -> None:
    if _any(np.asarray(die_area_mm2) <= 0.0):
        raise SimulationError("die area must be positive")
    if _any(np.asarray(defect_density_per_cm2) < 0.0):
        raise SimulationError("defect density must be non-negative")
