"""Die yield and wafer-geometry models.

Per-die embodied carbon divides per-wafer carbon over the *good* dies,
so the bottom-up model needs (a) how many die candidates fit on a wafer
and (b) what fraction of them work.
"""

from __future__ import annotations

import math

from ..errors import SimulationError

__all__ = ["poisson_yield", "murphy_yield", "dies_per_wafer", "good_dies_per_wafer"]


def poisson_yield(die_area_mm2: float, defect_density_per_cm2: float) -> float:
    """Poisson yield model: Y = exp(-A * D0).

    The classic first-order model; pessimistic for large dies.
    """
    _validate(die_area_mm2, defect_density_per_cm2)
    area_cm2 = die_area_mm2 / 100.0
    return math.exp(-area_cm2 * defect_density_per_cm2)


def murphy_yield(die_area_mm2: float, defect_density_per_cm2: float) -> float:
    """Murphy's yield model: Y = ((1 - exp(-A*D0)) / (A*D0))^2.

    Assumes a triangular defect-density distribution; the standard
    industry compromise between Poisson and Seeds models.
    """
    _validate(die_area_mm2, defect_density_per_cm2)
    area_cm2 = die_area_mm2 / 100.0
    ad = area_cm2 * defect_density_per_cm2
    if ad == 0.0:
        return 1.0
    return ((1.0 - math.exp(-ad)) / ad) ** 2


def dies_per_wafer(wafer_diameter_mm: float, die_area_mm2: float) -> int:
    """Gross die candidates per wafer (edge-loss corrected).

    Uses the standard approximation
    ``N = pi*(d/2)^2/A - pi*d/sqrt(2*A)`` which subtracts the partial
    dies lost around the wafer edge.
    """
    if wafer_diameter_mm <= 0.0:
        raise SimulationError("wafer diameter must be positive")
    if die_area_mm2 <= 0.0:
        raise SimulationError("die area must be positive")
    radius = wafer_diameter_mm / 2.0
    gross = (math.pi * radius * radius) / die_area_mm2
    edge_loss = (math.pi * wafer_diameter_mm) / math.sqrt(2.0 * die_area_mm2)
    count = int(gross - edge_loss)
    return max(count, 0)


def good_dies_per_wafer(
    wafer_diameter_mm: float,
    die_area_mm2: float,
    defect_density_per_cm2: float,
    model: str = "murphy",
) -> float:
    """Expected working dies per wafer under the chosen yield model."""
    candidates = dies_per_wafer(wafer_diameter_mm, die_area_mm2)
    if model == "murphy":
        fraction = murphy_yield(die_area_mm2, defect_density_per_cm2)
    elif model == "poisson":
        fraction = poisson_yield(die_area_mm2, defect_density_per_cm2)
    else:
        raise SimulationError(f"unknown yield model {model!r}")
    return candidates * fraction


def _validate(die_area_mm2: float, defect_density_per_cm2: float) -> None:
    if die_area_mm2 <= 0.0:
        raise SimulationError("die area must be positive")
    if defect_density_per_cm2 < 0.0:
        raise SimulationError("defect density must be non-negative")
