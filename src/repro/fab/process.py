"""Process-node roadmap with per-area manufacturing coefficients.

Each :class:`ProcessNode` carries the three per-area quantities that an
ACT-style bottom-up embodied-carbon model needs:

* ``energy_kwh_per_cm2`` — fab electricity per cm^2 of processed wafer;
  multiplied by the fab grid's carbon intensity it yields the
  energy-attributed carbon (the ~63% green wedge of Figure 14).
* ``gas_kg_per_cm2`` — direct CO2e from PFCs, chemicals, and process
  gases per cm^2 (the ~30% wedge TSMC attributes to PFCs/chemicals).
* ``material_kg_per_cm2`` — upstream CO2e of raw wafers, bulk gases,
  and consumable materials per cm^2.

Coefficient values are estimates calibrated so that (a) the Figure 14
component shares hold for the 16 nm-class baseline under a
Taiwan-like grid, and (b) per-die footprints land in the range implied
by the paper's device LCAs (a flagship phone SoC around 10-25 kg
CO2e). Absolute values are marked estimated; trends across nodes
(rising energy and gas per area) follow industry roadmaps.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DataValidationError

__all__ = ["ProcessNode", "NODE_ROADMAP", "node_by_name"]


@dataclass(frozen=True, slots=True)
class ProcessNode:
    """A logic process node and its per-area manufacturing coefficients."""

    name: str
    feature_nm: float
    energy_kwh_per_cm2: float
    gas_kg_per_cm2: float
    material_kg_per_cm2: float
    defect_density_per_cm2: float
    first_volume_year: int

    def __post_init__(self) -> None:
        if not self.name:
            raise DataValidationError("process node needs a name")
        if self.feature_nm <= 0.0:
            raise DataValidationError(f"{self.name}: feature size must be positive")
        for field_name in (
            "energy_kwh_per_cm2",
            "gas_kg_per_cm2",
            "material_kg_per_cm2",
            "defect_density_per_cm2",
        ):
            if getattr(self, field_name) < 0.0:
                raise DataValidationError(
                    f"{self.name}: {field_name} must be non-negative"
                )


#: Roadmap ordered from oldest to newest. Energy and gas per area rise
#: with node advancement (more masks, more EUV, more process steps);
#: defect density is the mature-process figure for each node. The 16nm
#: row is the calibration anchor: under a Taiwan-like 583 g/kWh grid it
#: reproduces Figure 14's component shares (energy ~63%, process gases
#: ~31%, materials ~6% of per-wafer carbon).
NODE_ROADMAP: tuple[ProcessNode, ...] = (
    ProcessNode("65nm", 65.0, 0.60, 0.200, 0.050, 0.05, 2006),
    ProcessNode("45nm", 45.0, 0.70, 0.230, 0.055, 0.06, 2008),
    ProcessNode("28nm", 28.0, 0.90, 0.270, 0.060, 0.08, 2011),
    ProcessNode("20nm", 20.0, 1.00, 0.300, 0.063, 0.09, 2014),
    ProcessNode("16nm", 16.0, 1.20, 0.344, 0.067, 0.10, 2015),
    ProcessNode("10nm", 10.0, 1.50, 0.400, 0.072, 0.12, 2017),
    ProcessNode("7nm", 7.0, 1.80, 0.460, 0.078, 0.10, 2018),
    ProcessNode("5nm", 5.0, 2.30, 0.540, 0.085, 0.12, 2020),
    ProcessNode("3nm", 3.0, 2.90, 0.620, 0.092, 0.15, 2022),
)


def node_by_name(name: str) -> ProcessNode:
    """Look up a roadmap node by its name (e.g. ``"7nm"``)."""
    for node in NODE_ROADMAP:
        if node.name == name:
            return node
    known = [node.name for node in NODE_ROADMAP]
    raise DataValidationError(f"unknown process node {name!r}; have {known}")
