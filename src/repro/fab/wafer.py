"""Per-wafer carbon footprint model (Figure 14).

TSMC's CSR report decomposes 12-inch-wafer manufacturing emissions into
energy (~63%), PFC and diffusive emissions, chemicals and gases, bulk
gases, raw wafers, and other. Only the energy wedge responds to
powering the fab with cleaner electricity, which is why a 64x cleaner
grid shrinks the total by only ~2.7x.

Two construction paths are supported:

* :meth:`WaferFootprintModel.from_reported_shares` — top-down from the
  reported component shares plus a baseline per-wafer total (the exact
  Figure 14 reproduction).
* :meth:`WaferFootprintModel.from_node` — bottom-up from a
  :class:`~repro.fab.process.ProcessNode`'s per-area coefficients and a
  fab grid intensity (used by the embodied-carbon model and the
  node-sweep ablation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..errors import DataValidationError, SimulationError
from ..units import Carbon, CarbonIntensity, Energy
from .process import ProcessNode

__all__ = ["WaferBreakdown", "WaferFootprintModel", "WAFER_COMPONENTS"]

#: Component keys, in the paper's legend order.
WAFER_COMPONENTS = (
    "energy",
    "pfc_diffusive",
    "chemicals_gases",
    "bulk_gases",
    "raw_wafers",
    "other",
)

#: Components that do not respond to cleaner fab electricity.
_NON_ENERGY = tuple(name for name in WAFER_COMPONENTS if name != "energy")


@dataclass(frozen=True)
class WaferBreakdown:
    """Absolute per-wafer carbon by component."""

    components: Mapping[str, Carbon]

    def __post_init__(self) -> None:
        unknown = set(self.components) - set(WAFER_COMPONENTS)
        if unknown:
            raise DataValidationError(f"unknown wafer components {sorted(unknown)}")
        missing = set(WAFER_COMPONENTS) - set(self.components)
        if missing:
            raise DataValidationError(f"missing wafer components {sorted(missing)}")
        for name, carbon in self.components.items():
            if carbon.grams < 0.0:
                raise DataValidationError(f"component {name!r} is negative")
        object.__setattr__(self, "components", dict(self.components))

    @property
    def total(self) -> Carbon:
        total = Carbon.zero()
        for carbon in self.components.values():
            total = total + carbon
        return total

    def share(self, component: str) -> float:
        if component not in self.components:
            raise DataValidationError(f"unknown component {component!r}")
        total = self.total.grams
        if total == 0.0:
            raise SimulationError("zero-total breakdown has no shares")
        return self.components[component].grams / total

    def shares(self) -> dict[str, float]:
        return {name: self.share(name) for name in WAFER_COMPONENTS}


@dataclass(frozen=True)
class WaferFootprintModel:
    """A wafer's carbon with an explicit energy/non-energy split.

    ``fab_intensity`` is the grid intensity the energy wedge was
    computed at; sweeping renewable improvements rescales only that
    wedge.
    """

    baseline: WaferBreakdown
    fab_intensity: CarbonIntensity
    wafer_diameter_mm: float = 300.0

    def __post_init__(self) -> None:
        if self.wafer_diameter_mm <= 0.0:
            raise DataValidationError("wafer diameter must be positive")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_reported_shares(
        cls,
        shares: Mapping[str, float],
        total: Carbon,
        fab_intensity: CarbonIntensity,
        wafer_diameter_mm: float = 300.0,
    ) -> "WaferFootprintModel":
        """Top-down: reported component shares plus a per-wafer total."""
        share_sum = sum(shares.get(name, 0.0) for name in WAFER_COMPONENTS)
        if abs(share_sum - 1.0) > 1e-6:
            raise DataValidationError(f"wafer shares must sum to 1, got {share_sum}")
        components = {
            name: total * shares.get(name, 0.0) for name in WAFER_COMPONENTS
        }
        return cls(WaferBreakdown(components), fab_intensity, wafer_diameter_mm)

    @classmethod
    def from_node(
        cls,
        node: ProcessNode,
        fab_intensity: CarbonIntensity,
        wafer_diameter_mm: float = 300.0,
        gas_split: Mapping[str, float] | None = None,
    ) -> "WaferFootprintModel":
        """Bottom-up: per-area node coefficients times wafer area.

        ``gas_split`` divides the node's direct-gas coefficient among
        the three gas-flavored components; defaults follow the Figure 14
        proportions (PFC dominates).
        """
        radius_cm = wafer_diameter_mm / 20.0
        area_cm2 = math.pi * radius_cm * radius_cm
        energy = Energy.kwh(node.energy_kwh_per_cm2 * area_cm2)
        energy_carbon = fab_intensity.carbon_for(energy)
        gas_total = Carbon.kg(node.gas_kg_per_cm2 * area_cm2)
        material_total = Carbon.kg(node.material_kg_per_cm2 * area_cm2)
        split = dict(gas_split) if gas_split is not None else {
            "pfc_diffusive": 0.50,
            "chemicals_gases": 0.37,
            "bulk_gases": 0.13,
        }
        split_sum = sum(split.values())
        if abs(split_sum - 1.0) > 1e-6:
            raise DataValidationError(f"gas split must sum to 1, got {split_sum}")
        components = {
            "energy": energy_carbon,
            "pfc_diffusive": gas_total * split.get("pfc_diffusive", 0.0),
            "chemicals_gases": gas_total * split.get("chemicals_gases", 0.0),
            "bulk_gases": gas_total * split.get("bulk_gases", 0.0),
            "raw_wafers": material_total * 0.65,
            "other": material_total * 0.35,
        }
        return cls(WaferBreakdown(components), fab_intensity, wafer_diameter_mm)

    # ------------------------------------------------------------------
    # Renewable-energy sweeps
    # ------------------------------------------------------------------
    def with_energy_improvement(self, factor: float) -> WaferBreakdown:
        """Breakdown after making fab electricity ``factor``x cleaner.

        Only the energy component shrinks; everything else is direct or
        upstream emissions unaffected by the fab's grid.
        """
        if factor <= 0.0:
            raise SimulationError(f"improvement factor must be positive, got {factor}")
        components = dict(self.baseline.components)
        components["energy"] = components["energy"] * (1.0 / factor)
        return WaferBreakdown(components)

    def total_reduction(self, factor: float) -> float:
        """Overall footprint reduction for a ``factor``x cleaner grid.

        The paper's headline: a 64x improvement yields only ~2.7x.
        """
        improved = self.with_energy_improvement(factor)
        if improved.total.grams == 0.0:
            raise SimulationError("improved footprint is zero; reduction undefined")
        return self.baseline.total.grams / improved.total.grams

    def sweep(self, factors: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)) -> list[dict]:
        """The Figure 14 sweep: normalized component stack per factor."""
        base_total = self.baseline.total.grams
        if base_total == 0.0:
            raise SimulationError("zero-baseline model cannot be swept")
        rows = []
        for factor in factors:
            improved = self.with_energy_improvement(factor)
            row: dict[str, float] = {"factor": float(factor)}
            for name in WAFER_COMPONENTS:
                row[name] = improved.components[name].grams / base_total
            row["total"] = improved.total.grams / base_total
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # Per-area and per-die views
    # ------------------------------------------------------------------
    @property
    def wafer_area_cm2(self) -> float:
        radius_cm = self.wafer_diameter_mm / 20.0
        return math.pi * radius_cm * radius_cm

    def carbon_per_cm2(self) -> Carbon:
        return self.baseline.total * (1.0 / self.wafer_area_cm2)
