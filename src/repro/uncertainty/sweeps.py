"""Uncertainty-aware sweep runners: one draw matrix, one kernel call.

Each runner takes distribution-tagged scenarios, builds a seeded
(scenarios × draws) draw matrix, expands it along the existing batched
kernels' scenario axis, and makes a *single* batched call —
``simulate_fleet_batch``, ``provision_*_batch``, or
``evaluate_policies`` — for the whole cross-product. There is no
per-draw Python loop around a kernel anywhere; a draw is just one more
scenario to the kernel.

The scalar reference is ``repro.analysis.uncertainty.monte_carlo``
over the scalar simulators: for every scenario the batched runners
produce the *same floats* it would (same seed discipline, same metric
arithmetic), pinned by ``tests/test_uncertain_sweep_equivalence.py``.

Every runner accepts ``jobs=``/``chunk_size=`` and shards its scenario
axis through :func:`repro.exec.run_sharded`. Because each scenario
draws from its own ``default_rng(seed)`` stream (see
:mod:`repro.uncertainty.draws`), a chunk's draw matrix is exactly the
corresponding rows of the monolithic one, so sharded uncertain sweeps
stay bit-identical to monolithic runs under any chunk/job count.

Like the deterministic runners, each sweep also forwards the
fault-tolerance knobs — ``retries``/``timeout``/``on_error``/
``checkpoint`` — to :func:`repro.exec.run_sharded`, so uncertain
sweeps survive worker crashes and hangs and resume from chunk
checkpoints with the same bit-identity guarantee.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..analysis.uncertainty import is_distribution
from ..core.embodied import EmbodiedModel
from ..data.grids import US_GRID, region_names
from ..datacenter.fleet import FleetParameters, simulate_fleet_batch
from ..datacenter.heterogeneity import (
    ServerType,
    WorkloadClass,
    provision_heterogeneous_batch,
    provision_homogeneous_batch,
)
from ..errors import SimulationError
from ..exec import ShardPlan, run_sharded
from ..obs.recorder import active_recorder
from ..scenarios.runner import OverridePlan, _scalar_axis_names, apply_overrides
from ..tabular import Table
from ..units import CarbonIntensity
from .draws import DrawMatrix, _check_records, build_draw_matrix
from .result import UncertainResult

__all__ = [
    "axis_label",
    "sweep_fleet_uncertain",
    "sweep_provisioning_uncertain",
    "sweep_temporal_shifting_uncertain",
]

#: Final-year fleet metrics an uncertain fleet sweep samples.
_FLEET_METRICS = (
    "servers",
    "energy_gwh",
    "opex_location_kt",
    "opex_market_kt",
    "capex_kt",
    "coverage",
    "capex_fraction_market",
    "capex_to_opex_market",
)

#: Provisioning metrics (the deterministic sweep's result columns).
_PROVISIONING_METRICS = (
    "servers_homogeneous",
    "servers_heterogeneous",
    "total_t_homogeneous",
    "total_t_heterogeneous",
    "carbon_saving_fraction",
)

#: Policy-evaluation metrics sampled across trace-noise draws.
_SHIFTING_METRICS = (
    "total_kg",
    "savings_fraction",
    "mean_deferral_hours",
    "max_deferral_hours",
    "peak_load_kw",
)


def axis_label(value: Any) -> Any:
    """Scenario axis value as a table cell: scalars pass, tags render.

    Distribution tags become their compact repr (``Normal(mean=0.45,
    std=0.05)``), so quantile tables stay self-describing.
    """
    if is_distribution(value):
        return repr(value)
    return value


def _kept_axis_names(records: Sequence[Mapping[str, Any]]) -> list[str]:
    """Axis names that become result columns, decided over all records.

    The deterministic runners' column policy with distribution tags
    rendered through :func:`axis_label`; global (not per chunk) so
    sharded runs keep exactly the columns a monolithic run would.
    """
    return _scalar_axis_names(records, label=axis_label)


def _axes_table(
    records: Sequence[Mapping[str, Any]],
    keep: Sequence[str] | None = None,
    offset: int = 0,
) -> Table:
    """Axis columns for an uncertain result, one row per scenario.

    Mirrors the deterministic runner's column policy — scalar axes
    become columns — and additionally renders distribution tags as
    label strings; richer objects (portfolios, servers) are skipped.
    ``offset`` is the chunk's global scenario offset, keeping the
    fallback ``scenario`` index column monolithic-identical.
    """
    if keep is None:
        keep = _kept_axis_names(records)
    columns: dict[str, list[Any]] = {
        name.replace(".", "_"): [axis_label(record[name]) for record in records]
        for name in keep
    }
    if not columns:
        columns["scenario"] = list(range(offset, offset + len(records)))
    return Table(columns)


def _reshape_metrics(
    table: Table,
    metrics: Sequence[str],
    num_scenarios: int,
    draws: int,
    allow_non_finite: Sequence[str] = (),
) -> dict[str, np.ndarray]:
    """Split flat (scenarios × draws) result columns into sample matrices.

    Mirrors the scalar reference's non-finite guard: ``monte_carlo``
    raises on inf/NaN model outputs naming the offending draw, and so
    does this — except for metrics in ``allow_non_finite``, where the
    kernel emits inf as a *designed* sentinel rather than a failure
    (``capex_to_opex_market`` is inf when renewables drive market opex
    to zero).
    """
    samples: dict[str, np.ndarray] = {}
    for metric in metrics:
        matrix = np.asarray(table.column(metric), dtype=np.float64).reshape(
            num_scenarios, draws
        )
        if metric not in allow_non_finite:
            bad = np.argwhere(~np.isfinite(matrix))
            if bad.size:
                scenario, draw = (int(index) for index in bad[0])
                raise SimulationError(
                    f"metric {metric!r} is non-finite "
                    f"({matrix[scenario, draw]!r}) at scenario {scenario}, "
                    f"draw {draw} ({len(bad)} of {matrix.size} cells "
                    "non-finite)"
                )
        samples[metric] = matrix
    return samples


def _fleet_uncertain_chunk(payload: tuple, start: int, stop: int) -> UncertainResult:
    """Chunk kernel: scenarios ``[start, stop)`` of an uncertain fleet sweep.

    Rebuilds the chunk's draw matrix from the global scenario records —
    per-scenario ``default_rng(seed)`` streams make those rows
    identical to the monolithic matrix — so nothing but record dicts
    crosses the process boundary.
    """
    base, records, draws, seed, embodied, keep = payload
    chunk = records[start:stop]
    matrix = build_draw_matrix(chunk, draws, seed)
    expanded: list[FleetParameters] = []
    plan = OverridePlan(base, matrix.names) if matrix.names else None
    for index, record in enumerate(chunk):
        fixed = {
            name: value
            for name, value in record.items()
            if name not in matrix.values
        }
        scenario_base = apply_overrides(base, fixed) if fixed else base
        if plan is None:
            expanded.extend([scenario_base] * draws)
            continue
        columns = [matrix.values[name][index] for name in matrix.names]
        for draw in range(draws):
            expanded.append(
                plan.apply(
                    scenario_base,
                    {
                        name: float(column[draw])
                        for name, column in zip(matrix.names, columns)
                    },
                )
            )
    batch = simulate_fleet_batch(expanded, embodied)
    final = batch.final_year_table()
    return UncertainResult(
        axes=_axes_table(chunk, keep=keep, offset=start),
        samples=_reshape_metrics(
            final,
            _FLEET_METRICS,
            len(chunk),
            draws,
            # Inf here means "market opex fully eliminated", a designed
            # kernel sentinel — not a failed draw.
            allow_non_finite=("capex_to_opex_market",),
        ),
        draws=draws,
        seed=seed,
    )


def sweep_fleet_uncertain(
    base: FleetParameters,
    scenarios: Iterable[Mapping[str, Any]],
    *,
    draws: int = 256,
    seed: int = 0,
    embodied: EmbodiedModel | None = None,
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> UncertainResult:
    """Fleet sweep with distribution-tagged parameters.

    Every scenario's tagged parameters are sampled ``draws`` times
    (per-scenario ``default_rng(seed)`` streams — see
    :mod:`repro.uncertainty.draws`), the (scenarios × draws) parameter
    sets are expanded through a compiled
    :class:`~repro.scenarios.runner.OverridePlan`, and one
    :func:`~repro.datacenter.fleet.simulate_fleet_batch` call scores
    them all per chunk. Metrics are the final simulated year's fleet
    columns. ``jobs``/``chunk_size`` shard the scenario axis; peak
    kernel memory is bounded by ``chunk_size × draws`` parameter sets
    and the samples are bit-identical for every configuration.

    Non-finite samples raise, mirroring the scalar ``monte_carlo``
    guard — except ``capex_to_opex_market``, where inf is the kernel's
    designed "market opex fully eliminated" sentinel and flows into
    the quantile columns as an ordinary order statistic.
    """
    records = _check_records(list(scenarios))
    plan = ShardPlan.plan(len(records), chunk_size, jobs)
    payload = (base, records, draws, seed, embodied, _kept_axis_names(records))
    with active_recorder().span(
        "batch",
        fn="sweep_fleet_uncertain",
        scenarios=len(records),
        draws=draws,
    ):
        return run_sharded(
            _fleet_uncertain_chunk,
            payload,
            plan,
            jobs=jobs,
            combine=UncertainResult.concat,
            retries=retries,
            timeout=timeout,
            on_error=on_error,
            checkpoint=checkpoint,
        )


def _axis_values(name: str, axis: Any) -> list[Any]:
    """Normalize one provisioning axis to a list of values/tags."""
    if is_distribution(axis) or isinstance(axis, (int, float)):
        return [axis]
    values = list(axis)
    if not values:
        raise SimulationError(f"axis {name!r} has no values")
    return values


def _flat_axis(
    name: str,
    records: Sequence[Mapping[str, Any]],
    matrix: DrawMatrix,
) -> np.ndarray:
    """One axis as a flat (scenarios × draws) array, draw-minor."""
    if name in matrix.values:
        return matrix.values[name].reshape(-1)
    return np.repeat(
        np.array([float(record[name]) for record in records]), matrix.draws
    )


def _provisioning_uncertain_chunk(
    payload: tuple, start: int, stop: int
) -> UncertainResult:
    """Chunk kernel: scenarios ``[start, stop)`` of an uncertain
    provisioning sweep; draw rows are rebuilt per scenario record."""
    workloads, general, server_types, records, draws, seed, grid, model, keep = (
        payload
    )
    chunk = records[start:stop]
    matrix = build_draw_matrix(chunk, draws, seed)
    target_axis = _flat_axis("utilization_target", chunk, matrix)
    scale_axis = _flat_axis("demand_scale", chunk, matrix)

    homogeneous = provision_homogeneous_batch(
        workloads, general, target_axis, scale_axis
    )
    heterogeneous = provision_heterogeneous_batch(
        workloads, server_types, target_axis, scale_axis
    )
    homo_total = homogeneous.total_per_year_grams(grid, model)
    hetero_total = heterogeneous.total_per_year_grams(grid, model)
    flat = Table(
        {
            "servers_homogeneous": homogeneous.total_servers(),
            "servers_heterogeneous": heterogeneous.total_servers(),
            "total_t_homogeneous": homo_total / 1e6,
            "total_t_heterogeneous": hetero_total / 1e6,
            "carbon_saving_fraction": 1.0 - hetero_total / homo_total,
        }
    )
    return UncertainResult(
        axes=_axes_table(chunk, keep=keep, offset=start),
        samples=_reshape_metrics(
            flat, _PROVISIONING_METRICS, len(chunk), draws
        ),
        draws=draws,
        seed=seed,
    )


def sweep_provisioning_uncertain(
    workloads: Sequence[WorkloadClass],
    general: ServerType,
    server_types: Sequence[ServerType],
    *,
    utilization_targets: Any = 0.6,
    demand_scales: Any = 1.0,
    draws: int = 256,
    seed: int = 0,
    grid: CarbonIntensity | None = None,
    model: EmbodiedModel | None = None,
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> UncertainResult:
    """Provisioning sweep with uncertain targets and demand forecasts.

    Axes may mix point values and distribution tags (a log-normal
    demand scale is the canonical case). The (scenarios × draws) axis
    goes straight into the array-valued provisioning kernels — the
    draw axis needs no dataclass expansion at all here.
    ``jobs``/``chunk_size`` shard the scenario axis with bit-identical
    samples (per-scenario seeded draw streams).
    """
    grid = grid or US_GRID.intensity
    model = model or EmbodiedModel()
    targets = _axis_values("utilization_targets", utilization_targets)
    scales = _axis_values("demand_scales", demand_scales)
    records = [
        {"utilization_target": target, "demand_scale": scale}
        for target in targets
        for scale in scales
    ]
    plan = ShardPlan.plan(len(records), chunk_size, jobs)
    payload = (
        tuple(workloads),
        general,
        tuple(server_types),
        records,
        draws,
        seed,
        grid,
        model,
        _kept_axis_names(records),
    )
    with active_recorder().span(
        "batch",
        fn="sweep_provisioning_uncertain",
        scenarios=len(records),
        draws=draws,
    ):
        return run_sharded(
            _provisioning_uncertain_chunk,
            payload,
            plan,
            jobs=jobs,
            combine=UncertainResult.concat,
            retries=retries,
            timeout=timeout,
            on_error=on_error,
            checkpoint=checkpoint,
        )


def _shifting_uncertain_chunk(
    payload: tuple, start: int, stop: int
) -> UncertainResult:
    """Chunk kernel: regions ``[start, stop)`` of the temporal sweep.

    Each region's noisy traces are seeded by draw index alone, and
    evaluator rows are region-major, so a region slice reproduces
    exactly that block of the monolithic result.
    """
    regions, hours, capacity_kw, draws, seed = payload
    from ..traces import (
        DEFAULT_POLICIES,
        canonical_workloads,
        evaluate_policies,
        stochastic_variant,
    )

    chunk = regions[start:stop]
    traces = [
        stochastic_variant(region, hours, seed=seed + draw)
        for region in chunk
        for draw in range(draws)
    ]
    workloads = canonical_workloads()
    policies = list(DEFAULT_POLICIES)
    flat = evaluate_policies(traces, workloads, policies, capacity_kw=capacity_kw)

    # Rows arrive (trace, workload, policy)-major with the trace axis
    # ordered region-major, draw-minor; fold the draw axis to the back.
    shape = (len(chunk), draws, len(workloads), len(policies))
    samples: dict[str, np.ndarray] = {}
    for metric in _SHIFTING_METRICS:
        values = np.asarray(flat.column(metric), dtype=np.float64)
        samples[metric] = (
            values.reshape(shape)
            .transpose(0, 2, 3, 1)
            .reshape(-1, draws)
            .copy()
        )
    records = [
        {"region": region, "workload": workload.name, "policy": policy.name}
        for region in chunk
        for workload in workloads
        for policy in policies
    ]
    return UncertainResult(
        axes=Table(
            {
                name: [record[name] for record in records]
                for name in ("region", "workload", "policy")
            }
        ),
        samples=samples,
        draws=draws,
        seed=seed,
    )


def sweep_temporal_shifting_uncertain(
    hours: int = 72,
    *,
    capacity_kw: float = 2500.0,
    draws: int = 8,
    seed: int = 0,
    jobs: int = 1,
    chunk_size: int | None = None,
    retries: Any = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: Any = None,
) -> UncertainResult:
    """Carbon-aware scheduling bands across weather/demand noise draws.

    The elusive input here is the *trace itself*: each draw is a
    seeded stochastic variant of every Table III region's duck curve
    (seeds ``seed .. seed + draws - 1``). All regions × draws go
    through one batched :func:`~repro.traces.evaluate_policies` call
    per chunk — a draw is literally one more trace row in the
    evaluator's matrix — and come back as (region × workload × policy)
    scenarios with per-draw samples. ``jobs``/``chunk_size`` shard the
    *region* axis; noisy-trace seeds depend only on the draw index, so
    sharded samples are bit-identical.
    """
    if hours < 48:
        raise SimulationError(
            "the temporal-shifting sweep's workloads span two days; "
            f"need hours >= 48, got {hours}"
        )
    if draws <= 0:
        raise SimulationError("draw count must be positive")
    regions = region_names()
    plan = ShardPlan.plan(len(regions), chunk_size, jobs)
    payload = (tuple(regions), hours, capacity_kw, draws, seed)
    with active_recorder().span(
        "batch",
        fn="sweep_temporal_shifting_uncertain",
        scenarios=len(regions),
        draws=draws,
    ):
        return run_sharded(
            _shifting_uncertain_chunk,
            payload,
            plan,
            jobs=jobs,
            combine=UncertainResult.concat,
            retries=retries,
            timeout=timeout,
            on_error=on_error,
            checkpoint=checkpoint,
        )
