"""Uncertain sweep results: per-scenario sample matrices with bands.

An :class:`UncertainResult` is the uncertainty-aware analogue of the
deterministic sweep tables: one *row* per scenario, but every metric
now carries a full ``(scenarios, draws)`` sample matrix instead of a
point estimate. Summaries are computed through
:class:`repro.analysis.uncertainty.UncertaintyResult` one scenario at
a time, so every mean and percentile is bit-identical to what the
scalar Monte Carlo reference reports for the same samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.uncertainty import UncertaintyResult
from ..errors import SimulationError
from ..tabular import Table

__all__ = ["quantile_column", "UncertainResult", "DEFAULT_QUANTILES"]

#: The p5-p50-p95 band every quantile table carries by default.
DEFAULT_QUANTILES: tuple[float, ...] = (5.0, 50.0, 95.0)


def quantile_column(q: float) -> str:
    """The column name for a percentile: 5 -> 'p05', 97.5 -> 'p97_5'."""
    if not 0.0 <= q <= 100.0:
        raise SimulationError(f"percentile must be in [0, 100], got {q}")
    if float(q).is_integer():
        return f"p{int(q):02d}"
    return "p" + f"{q:g}".replace(".", "_")


@dataclass(frozen=True)
class UncertainResult:
    """Sampled sweep output: axes, metrics, and quantile summaries.

    ``axes`` holds one row per scenario (axis values, with
    distribution tags rendered as labels); ``samples`` maps metric
    name to a ``(scenarios, draws)`` float array in draw order.
    """

    axes: Table
    samples: dict[str, np.ndarray]
    draws: int
    seed: int

    def __post_init__(self) -> None:
        if not self.samples:
            raise SimulationError("an uncertain result needs at least one metric")
        if self.draws <= 0:
            raise SimulationError("draw count must be positive")
        expected = (self.axes.num_rows, self.draws)
        checked: dict[str, np.ndarray] = {}
        for name, values in self.samples.items():
            array = np.asarray(values, dtype=np.float64)
            if array.shape != expected:
                raise SimulationError(
                    f"metric {name!r} has shape {array.shape}, expected "
                    f"{expected}"
                )
            checked[name] = array
        object.__setattr__(self, "samples", checked)

    @classmethod
    def concat(cls, results: "Sequence[UncertainResult]") -> "UncertainResult":
        """Stack chunk results along the scenario axis, preserving order.

        The chunk reducer of the sharded uncertain sweeps
        (:mod:`repro.exec`): axes tables are stacked with
        :meth:`repro.tabular.Table.concat` and every metric's
        ``(scenarios, draws)`` sample matrix with one
        ``np.concatenate``. All chunks must agree on metrics, draw
        count, and seed.
        """
        if not results:
            raise SimulationError("concat() needs at least one result")
        first = results[0]
        for result in results[1:]:
            if result.metric_names != first.metric_names:
                raise SimulationError(
                    f"metric mismatch: {result.metric_names} vs "
                    f"{first.metric_names}"
                )
            if result.draws != first.draws or result.seed != first.seed:
                raise SimulationError(
                    f"draw/seed mismatch: ({result.draws}, {result.seed}) vs "
                    f"({first.draws}, {first.seed})"
                )
        return cls(
            axes=Table.concat([result.axes for result in results]),
            samples={
                metric: np.concatenate(
                    [result.samples[metric] for result in results], axis=0
                )
                for metric in first.metric_names
            },
            draws=first.draws,
            seed=first.seed,
        )

    @property
    def num_scenarios(self) -> int:
        return self.axes.num_rows

    @property
    def metric_names(self) -> list[str]:
        return list(self.samples)

    def samples_for(self, metric: str) -> np.ndarray:
        """The ``(scenarios, draws)`` sample matrix of one metric."""
        if metric not in self.samples:
            raise SimulationError(
                f"no metric {metric!r}; have {self.metric_names}"
            )
        return self.samples[metric]

    def distribution(self, metric: str, scenario: int = 0) -> UncertaintyResult:
        """One scenario's output distribution, in the scalar result type.

        The returned :class:`UncertaintyResult` is exactly what the
        scalar ``monte_carlo`` reference produces for the same draws,
        so its ``mean``/``percentile``/``interval`` are the canonical
        summary arithmetic.
        """
        matrix = self.samples_for(metric)
        if not 0 <= scenario < self.num_scenarios:
            raise SimulationError(
                f"scenario index {scenario} out of range "
                f"[0, {self.num_scenarios})"
            )
        return UncertaintyResult(matrix[scenario])

    def band(
        self, metric: str, low: float = 5.0, high: float = 95.0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-scenario (low, median, high) percentile arrays."""
        if not 0.0 <= low < high <= 100.0:
            raise SimulationError(
                f"band needs 0 <= low < high <= 100, got ({low}, {high})"
            )
        matrix = self.samples_for(metric)
        rows = [UncertaintyResult(row) for row in matrix]
        return (
            np.array([row.percentile(low) for row in rows]),
            np.array([row.percentile(50.0) for row in rows]),
            np.array([row.percentile(high) for row in rows]),
        )

    def quantile_table(
        self, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> Table:
        """One row per scenario: axes, then mean + quantiles per metric.

        Metric columns are named ``{metric}_mean``, ``{metric}_p05``,
        ``{metric}_p50``, ``{metric}_p95`` (for the default band).
        """
        quantiles = [float(q) for q in quantiles]
        if not quantiles:
            raise SimulationError("need at least one quantile")
        if sorted(quantiles) != quantiles:
            raise SimulationError(f"quantiles must be ascending, got {quantiles}")
        columns: dict[str, object] = {
            name: self.axes.column(name) for name in self.axes.column_names
        }
        for metric, matrix in self.samples.items():
            rows = [UncertaintyResult(row) for row in matrix]
            columns[f"{metric}_mean"] = np.array([row.mean for row in rows])
            for q in quantiles:
                columns[f"{metric}_{quantile_column(q)}"] = np.array(
                    [row.percentile(q) for row in rows]
                )
        return Table(columns)

    def metric_summary(
        self,
        scenario: int = 0,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> Table:
        """One scenario as a (metric × statistics) table.

        The narrow companion to :meth:`quantile_table` — one row per
        metric, which is what experiment reports render.
        """
        quantiles = [float(q) for q in quantiles]
        if not quantiles:
            raise SimulationError("need at least one quantile")
        records = []
        for metric in self.metric_names:
            result = self.distribution(metric, scenario)
            record: dict[str, object] = {
                "metric": metric,
                "mean": result.mean,
                "std": result.std,
            }
            for q in quantiles:
                record[quantile_column(q)] = result.percentile(q)
            records.append(record)
        return Table.from_records(records)

    def __repr__(self) -> str:
        return (
            f"UncertainResult({self.num_scenarios} scenarios x "
            f"{self.draws} draws, metrics={self.metric_names}, "
            f"seed={self.seed})"
        )
