"""Uncertainty-aware scenario engine: sweeps with honest error bars.

"Chasing Carbon" calls the footprint of computing *elusive*: fab
abatement, grid intensity, lifetimes, and demand forecasts all carry
wide error bars, yet point-estimate sweeps hide them. This package
lets any scenario axis be tagged with a distribution from
:mod:`repro.analysis.uncertainty` (``Normal``, ``Triangular``,
``LogNormal``, ``Mixture``…) and evaluates the whole sweep as a single
(scenarios × draws) batched call into the existing fleet,
provisioning, and trace kernels — no per-draw Python loops. Results
come back as :class:`UncertainResult` tables carrying mean / median /
p5-p95 quantile columns, rendered as band charts by
:func:`repro.report.charts.band_chart` and exposed on the CLI as
``repro sweep NAME --draws N --seed S``.

The scalar ``monte_carlo`` path remains the reference implementation:
at matched seeds the batched sweeps reproduce its draws and summary
statistics bit for bit (``tests/test_uncertain_sweep_equivalence.py``).
"""

from .draws import DrawMatrix, build_draw_matrix, expand_records, split_scenario
from .result import DEFAULT_QUANTILES, UncertainResult, quantile_column
from .sweeps import (
    axis_label,
    sweep_fleet_uncertain,
    sweep_provisioning_uncertain,
    sweep_temporal_shifting_uncertain,
)

__all__ = [
    "DrawMatrix",
    "split_scenario",
    "build_draw_matrix",
    "expand_records",
    "DEFAULT_QUANTILES",
    "quantile_column",
    "UncertainResult",
    "axis_label",
    "sweep_fleet_uncertain",
    "sweep_provisioning_uncertain",
    "sweep_temporal_shifting_uncertain",
]
