"""Draw matrices: one seeded (scenarios × draws) sample per parameter.

The bridge between distribution-tagged scenarios and the batched
kernels. A scenario dict may mix point values with distribution tags
from :mod:`repro.analysis.uncertainty`; :func:`build_draw_matrix`
samples every tagged parameter into a ``(scenarios, draws)`` matrix in
one pass, and :func:`expand_records` flattens the cross-product into
``scenarios × draws`` plain scenario dicts (scenario-major,
draw-minor) ready for a single batched kernel call.

Seeding discipline: each scenario draws from its *own*
``np.random.default_rng(seed)`` stream, consuming it only for
distribution-tagged entries in scenario-key order. Two consequences,
both load-bearing:

* a scenario's draws are exactly what the scalar reference
  ``monte_carlo(model, spec, samples=draws, seed=seed)`` would draw for
  the same spec — the equivalence suite pins batched sweeps to the
  scalar path bit for bit; and
* a scenario's draws do not depend on which other scenarios share the
  sweep, so results are reproducible across subsetting, reordering,
  and parallel partitioning. Scenarios with identical distributions
  share identical draws (common random numbers), which cancels
  sampling noise out of cross-scenario comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..analysis.uncertainty import is_distribution
from ..errors import SimulationError

__all__ = [
    "DrawMatrix",
    "split_scenario",
    "build_draw_matrix",
    "expand_records",
]


def split_scenario(
    scenario: Mapping[str, Any],
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Partition one scenario into (fixed, distribution-tagged) parts."""
    fixed: dict[str, Any] = {}
    uncertain: dict[str, Any] = {}
    for name, value in scenario.items():
        (uncertain if is_distribution(value) else fixed)[name] = value
    return fixed, uncertain


@dataclass(frozen=True)
class DrawMatrix:
    """Sampled values for every uncertain parameter of a sweep.

    ``values`` maps parameter path to a ``(scenarios, draws)`` float
    array; ``names`` preserves scenario-key order. Parameters that are
    point values in one scenario but tagged in another appear as
    constant rows, so every scenario shares the same draw-matrix shape.
    """

    names: tuple[str, ...]
    values: dict[str, np.ndarray]
    draws: int
    seed: int
    num_scenarios: int

    def __post_init__(self) -> None:
        if self.draws <= 0:
            raise SimulationError("draw count must be positive")
        if self.num_scenarios <= 0:
            raise SimulationError("need at least one scenario")
        if set(self.names) != set(self.values):
            raise SimulationError(
                f"draw names {list(self.names)} do not match sampled "
                f"parameters {sorted(self.values)}"
            )
        for name in self.names:
            shape = self.values[name].shape
            if shape != (self.num_scenarios, self.draws):
                raise SimulationError(
                    f"draws for {name!r} have shape {shape}, expected "
                    f"{(self.num_scenarios, self.draws)}"
                )

    def scenario_samples(self, scenario: int) -> dict[str, np.ndarray]:
        """One scenario's draw vectors, keyed by parameter path."""
        self._check_scenario(scenario)
        return {name: self.values[name][scenario] for name in self.names}

    def overrides(self, scenario: int, draw: int) -> dict[str, float]:
        """The point overrides of one (scenario, draw) cell."""
        self._check_scenario(scenario)
        if not 0 <= draw < self.draws:
            raise SimulationError(
                f"draw index {draw} out of range [0, {self.draws})"
            )
        return {
            name: float(self.values[name][scenario, draw])
            for name in self.names
        }

    def _check_scenario(self, scenario: int) -> None:
        if not 0 <= scenario < self.num_scenarios:
            raise SimulationError(
                f"scenario index {scenario} out of range "
                f"[0, {self.num_scenarios})"
            )


def _check_records(
    scenarios: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    records = [dict(record) for record in scenarios]
    if not records:
        raise SimulationError("need at least one scenario")
    names = list(records[0])
    for record in records:
        if list(record) != names:
            raise SimulationError(
                "every scenario must define the same parameters in the "
                f"same order; expected {names}, got {list(record)}"
            )
    return records


def build_draw_matrix(
    scenarios: Sequence[Mapping[str, Any]], draws: int, seed: int = 0
) -> DrawMatrix:
    """Sample every distribution-tagged parameter of a scenario list.

    A parameter is uncertain when *any* scenario tags it; scenarios
    where it is a plain number contribute constant rows. Each scenario
    consumes a fresh ``default_rng(seed)`` in scenario-key order (see
    the module docstring for why).
    """
    if draws <= 0:
        raise SimulationError("draw count must be positive")
    records = _check_records(scenarios)
    names = tuple(
        name
        for name in records[0]
        if any(is_distribution(record[name]) for record in records)
    )
    name_set = frozenset(names)
    values = {
        name: np.empty((len(records), draws), dtype=np.float64)
        for name in names
    }
    for index, record in enumerate(records):
        rng = np.random.default_rng(seed)
        for name, value in record.items():
            if name not in name_set:
                continue
            if is_distribution(value):
                values[name][index] = value.sample(rng, draws)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                values[name][index] = float(value)
            else:
                raise SimulationError(
                    f"parameter {name!r} is distribution-tagged in another "
                    f"scenario but holds non-numeric {value!r} in scenario "
                    f"{index}"
                )
    return DrawMatrix(
        names=names,
        values=values,
        draws=draws,
        seed=seed,
        num_scenarios=len(records),
    )


def expand_records(
    scenarios: Sequence[Mapping[str, Any]], matrix: DrawMatrix
) -> list[dict[str, Any]]:
    """Flatten (scenarios × draws) into plain point-value scenarios.

    Row-major: scenario index varies slowest, draw index fastest, so
    flattened index ``s * draws + d`` addresses cell ``(s, d)`` — the
    axis convention every batched uncertain sweep shares.
    """
    records = _check_records(scenarios)
    if len(records) != matrix.num_scenarios:
        raise SimulationError(
            f"{len(records)} scenarios but draw matrix covers "
            f"{matrix.num_scenarios}"
        )
    expanded: list[dict[str, Any]] = []
    for index, record in enumerate(records):
        fixed = {
            name: value
            for name, value in record.items()
            if name not in matrix.values
        }
        columns = [matrix.values[name][index] for name in matrix.names]
        for draw in range(matrix.draws):
            cell = dict(fixed)
            for name, column in zip(matrix.names, columns):
                cell[name] = float(column[draw])
            expanded.append(cell)
    return expanded
