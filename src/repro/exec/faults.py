"""Deterministic fault injection for the sharded execution engine.

Testing a fault-tolerant executor with real faults — killing worker
processes at random, sleeping past timeouts on a timer — makes CI
flaky. This module replaces luck with a declarative, fully
deterministic :class:`FaultSpec`: a list of rules, each naming the
chunks (by shard start) and attempt numbers it fires on, and the kind
of failure it produces:

- ``"raise"``  — the chunk kernel raises :class:`InjectedFault`;
- ``"crash"``  — the worker process hard-exits (``os._exit``), which
  the driver observes as a broken pool; inline (``jobs=1``) runs
  degrade this to ``"raise"`` so the test process survives;
- ``"hang"``   — the kernel sleeps ``seconds``, tripping the driver's
  per-chunk timeout;
- ``"corrupt"``— the chunk completes but its result envelope is
  bit-flipped after the integrity digest is computed, so verification
  fails on the driver side.

Specs reach workers three ways, in priority order: an explicit
``faults=`` argument to ``run_sharded``, a process-wide spec installed
with :func:`install_faults`, or the ``REPRO_FAULTS`` environment
variable holding the spec as JSON (how the CLI and chaos tooling
inject faults without touching call sites). Because rules key on
``(shard start, attempt)``, the same spec replays the same failure
schedule on every run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

from ..errors import ExecutionError

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "InjectedFault",
    "FaultRule",
    "FaultSpec",
    "install_faults",
    "active_fault_spec",
    "perform_fault",
    "corrupt_bytes",
    "predict_outcomes",
]

ENV_VAR = "REPRO_FAULTS"
"""Environment variable consulted for a JSON-encoded fault spec."""

FAULT_KINDS = ("raise", "crash", "hang", "corrupt")
"""The failure kinds a rule may inject."""

_DEFAULT_HANG_SECONDS = 30.0

_installed_spec: "FaultSpec | None" = None


class InjectedFault(RuntimeError):
    """The synthetic error raised by ``"raise"``-kind fault rules.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults simulate arbitrary kernel failures, and the driver must
    recover from exceptions it has never heard of.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injected failure: which chunks, which attempts, what kind.

    ``starts`` holds shard start offsets (``None`` matches every
    chunk) and ``attempts`` 1-based attempt numbers (``None`` matches
    every attempt). ``seconds`` only matters for ``"hang"`` rules.
    """

    kind: str
    starts: "tuple[int, ...] | None" = None
    attempts: "tuple[int, ...] | None" = (1,)
    seconds: float = _DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ExecutionError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.seconds < 0.0:
            raise ExecutionError(
                f"hang duration must be non-negative, got {self.seconds}"
            )
        if self.starts is not None:
            object.__setattr__(self, "starts", tuple(int(s) for s in self.starts))
        if self.attempts is not None:
            object.__setattr__(
                self, "attempts", tuple(int(a) for a in self.attempts)
            )

    def matches(self, start: int, attempt: int) -> bool:
        """Whether this rule fires for the given chunk attempt."""
        if self.starts is not None and start not in self.starts:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        """The rule as a plain JSON-serializable mapping."""
        payload: dict[str, Any] = {"kind": self.kind}
        if self.starts is not None:
            payload["starts"] = list(self.starts)
        if self.attempts is not None:
            payload["attempts"] = list(self.attempts)
        if self.kind == "hang":
            payload["seconds"] = self.seconds
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultRule":
        """Rebuild a rule from :meth:`to_dict` output."""
        if not isinstance(payload, dict) or "kind" not in payload:
            raise ExecutionError(f"malformed fault rule: {payload!r}")
        starts = payload.get("starts")
        attempts = payload.get("attempts", [1])
        return cls(
            kind=payload["kind"],
            starts=None if starts is None else tuple(starts),
            attempts=None if attempts is None else tuple(attempts),
            seconds=float(payload.get("seconds", _DEFAULT_HANG_SECONDS)),
        )


@dataclass(frozen=True)
class FaultSpec:
    """An ordered set of fault rules; the first matching rule fires."""

    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __bool__(self) -> bool:
        return bool(self.rules)

    def match(self, start: int, attempt: int) -> "FaultRule | None":
        """The first rule firing for this chunk attempt, if any."""
        for rule in self.rules:
            if rule.matches(start, attempt):
                return rule
        return None

    def to_json(self) -> str:
        """The spec serialized as JSON (the ``REPRO_FAULTS`` format)."""
        return json.dumps({"rules": [rule.to_dict() for rule in self.rules]})

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        """Parse a spec from its JSON serialization."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ExecutionError(f"invalid fault spec JSON: {error}") from error
        if not isinstance(payload, dict) or "rules" not in payload:
            raise ExecutionError(
                f"fault spec JSON must be an object with a 'rules' list, "
                f"got {text!r}"
            )
        return cls(
            rules=tuple(FaultRule.from_dict(item) for item in payload["rules"])
        )

    @classmethod
    def from_env(cls) -> "FaultSpec | None":
        """The spec from ``REPRO_FAULTS``, or ``None`` when unset/empty."""
        text = os.environ.get(ENV_VAR)
        if not text:
            return None
        return cls.from_json(text)

    @classmethod
    def chaos(
        cls,
        shard_starts: Sequence[int],
        *,
        seed: int,
        rate: float = 0.5,
        kinds: Sequence[str] = ("raise", "crash", "corrupt"),
        hang_seconds: float = 0.5,
    ) -> "FaultSpec":
        """A seeded random spec for chaos testing.

        Samples ``rate`` of the given shard starts and assigns each a
        first-attempt fault of a seeded-random kind, so a chaos run is
        noisy but exactly reproducible from its seed. Every sampled
        fault fires on attempt 1 only, so a driver with at least one
        retry always recovers.
        """
        if not 0.0 <= rate <= 1.0:
            raise ExecutionError(f"fault rate must be within [0, 1], got {rate}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ExecutionError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
        rng = np.random.default_rng(seed)
        rules = []
        for start in shard_starts:
            if float(rng.uniform()) >= rate:
                continue
            kind = str(kinds[int(rng.integers(len(kinds)))])
            rules.append(
                FaultRule(
                    kind=kind,
                    starts=(int(start),),
                    attempts=(1,),
                    seconds=hang_seconds,
                )
            )
        return cls(rules=tuple(rules))


@contextmanager
def install_faults(spec: "FaultSpec | None") -> Iterator[None]:
    """Install a process-wide fault spec for the duration of a block.

    Used by tests to arm faults without threading a ``faults=``
    argument through every call site. Nested installs restore the
    previous spec on exit.
    """
    global _installed_spec
    previous = _installed_spec
    _installed_spec = spec
    try:
        yield
    finally:
        _installed_spec = previous


def active_fault_spec(explicit: "FaultSpec | None" = None) -> "FaultSpec | None":
    """Resolve the fault spec in effect for a run.

    Priority: the explicit argument, then any spec installed with
    :func:`install_faults`, then the ``REPRO_FAULTS`` environment
    variable. Returns ``None`` (the common case) when no faults are
    armed anywhere.
    """
    if explicit is not None:
        return explicit
    if _installed_spec is not None:
        return _installed_spec
    return FaultSpec.from_env()


def perform_fault(rule: FaultRule, *, start: int, in_worker: bool) -> None:
    """Carry out a matched fault rule inside the chunk kernel.

    ``"corrupt"`` is a no-op here — corruption happens to the result
    envelope after the kernel returns, handled by the runner. A
    ``"crash"`` outside a pool worker degrades to ``"raise"`` so
    inline runs do not kill the calling process.
    """
    if rule.kind == "raise":
        raise InjectedFault(f"injected fault: chunk starting at {start} raised")
    if rule.kind == "crash":
        if in_worker:
            # Hard exit without flushing or running atexit handlers:
            # the closest stand-in for an OOM kill or segfault.
            sys.stderr.flush()
            os._exit(1)
        raise InjectedFault(
            f"injected fault: chunk starting at {start} crashed (inline run)"
        )
    if rule.kind == "hang":
        time.sleep(rule.seconds)


def predict_outcomes(
    spec: "FaultSpec | None",
    shard_starts: Sequence[int],
    *,
    max_attempts: int,
    pooled: bool = True,
    timeout_armed: bool = True,
) -> dict[int, list[str]]:
    """The per-chunk attempt-outcome sequence a fault schedule implies.

    Because fault rules key on ``(shard start, attempt)``, the full
    sequence of chunk-attempt outcomes a run will record is computable
    in advance — which makes this module double as the correctness
    oracle for the observability layer: a traced, fault-injected run
    must emit exactly the ``attempt`` events predicted here
    (``tests/test_obs_trace_correctness.py``).

    Returns ``{shard_start: [outcome, ...]}`` where each outcome is
    one of ``ok``/``error``/``corrupt``/``crash``/``timeout``, mapped
    from the firing rule's kind the way the runner charges it:
    ``raise`` → ``error``; ``corrupt`` → ``corrupt``; ``crash`` →
    ``crash`` pooled, ``error`` inline (where it degrades to a raise);
    ``hang`` → ``timeout`` when pooled with a timeout armed, else the
    chunk just sleeps and finishes ``ok``. The sequence ends at the
    first ``ok`` or when ``max_attempts`` is exhausted.

    The prediction is exact for inline runs and for pooled schedules
    whose faults are confined to the failing chunk (``raise``,
    ``corrupt``, ``hang``). A pooled ``crash`` takes down a shared
    worker, and which *other* chunks the driver charges alongside it
    depends on poll timing — only the crashed chunk's own sequence is
    predicted, and co-charged bystanders may add attempts.
    """
    if max_attempts < 1:
        raise ExecutionError(
            f"max_attempts must be at least 1, got {max_attempts}"
        )
    outcomes: dict[int, list[str]] = {}
    for start in shard_starts:
        start = int(start)
        sequence: list[str] = []
        for attempt in range(1, max_attempts + 1):
            rule = spec.match(start, attempt) if spec is not None else None
            if rule is None:
                sequence.append("ok")
                break
            if rule.kind == "raise":
                sequence.append("error")
            elif rule.kind == "corrupt":
                sequence.append("corrupt")
            elif rule.kind == "crash":
                sequence.append("crash" if pooled else "error")
            else:  # hang
                if pooled and timeout_armed:
                    sequence.append("timeout")
                else:
                    sequence.append("ok")
                    break
        outcomes[start] = sequence
    return outcomes


def corrupt_bytes(payload: bytes) -> bytes:
    """Flip one bit of a result payload to defeat its integrity digest."""
    if not payload:
        return b"\x01"
    corrupted = bytearray(payload)
    corrupted[len(corrupted) // 2] ^= 0x01
    return bytes(corrupted)
