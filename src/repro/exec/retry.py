"""Retry policies and failure reports for fault-tolerant sharded runs.

A long sweep over a process pool meets three kinds of trouble: chunk
kernels that raise (bad data, injected faults), workers that die (OOM
kills, segfaults — surfacing as a broken pool), and workers that hang
(deadlocks, runaway inputs — surfacing as a per-chunk timeout).
:class:`RetryPolicy` decides how many times a chunk is re-attempted
and how long to back off between attempts; the backoff jitter is drawn
from a seeded :func:`numpy.random.default_rng` stream keyed by
``(seed, stream, attempt)``, so two runs of the same failing sweep
sleep the same schedule — no wall-clock randomness anywhere.

When a chunk exhausts its budget under ``on_error="skip"``, the run
degrades to partial results plus a :class:`FailureReport`: a
machine-readable record naming every skipped shard, its attempt count,
and the failure kind, so a caller (or the ``repro sweep`` CLI) can
requeue exactly the missing scenario ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ExecutionError

__all__ = ["RetryPolicy", "ChunkFailure", "FailureReport"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a chunk gets and how retries back off.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    run plus two retries. The delay before retry ``n`` (1-based) is
    ``base_delay * multiplier**(n-1)`` scaled by a deterministic jitter
    factor in ``[1-jitter, 1+jitter]`` and clamped to ``max_delay``.
    Jitter comes from a seeded RNG stream keyed by the failing chunk
    and attempt number — never from the wall clock — so retry
    schedules are reproducible run to run.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.5
    max_delay: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutionError(
                f"retry policy needs max_attempts >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0.0:
            raise ExecutionError(
                f"base delay must be non-negative, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise ExecutionError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ExecutionError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )
        if self.max_delay < 0.0:
            raise ExecutionError(
                f"max delay must be non-negative, got {self.max_delay}"
            )

    @classmethod
    def none(cls) -> "RetryPolicy":
        """The no-retry policy: one attempt, zero backoff."""
        return cls(max_attempts=1, base_delay=0.0)

    @classmethod
    def coerce(cls, value: "RetryPolicy | int | None") -> "RetryPolicy":
        """Normalize a ``retries=`` argument into a policy.

        ``None`` means no retries; an integer ``n`` means ``n`` retries
        after the first attempt (``max_attempts = n + 1``) with the
        default backoff; a :class:`RetryPolicy` passes through.
        """
        if value is None:
            return cls.none()
        if isinstance(value, RetryPolicy):
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            raise ExecutionError(
                f"retries must be a RetryPolicy, an int, or None, got {value!r}"
            )
        if value < 0:
            raise ExecutionError(f"retry count must be >= 0, got {value}")
        if value == 0:
            return cls.none()
        return cls(max_attempts=value + 1)

    def delay(self, stream: int, attempt: int) -> float:
        """Seconds to back off before retry ``attempt`` (1-based).

        ``stream`` identifies the failing chunk (its shard start), so
        different chunks jitter independently; the same ``(seed,
        stream, attempt)`` triple always yields the same delay.
        """
        if attempt < 1:
            raise ExecutionError(f"attempt must be >= 1, got {attempt}")
        if self.base_delay == 0.0:
            return 0.0
        base = self.base_delay * self.multiplier ** (attempt - 1)
        rng = np.random.default_rng((self.seed, stream, attempt))
        factor = 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return min(max(base * factor, 0.0), self.max_delay)


@dataclass(frozen=True)
class ChunkFailure:
    """One chunk that exhausted its retry budget.

    ``kind`` classifies the final failure: ``"error"`` (the kernel
    raised), ``"timeout"`` (the chunk ran past the per-chunk timeout),
    ``"crash"`` (its worker process died), or ``"corrupt"`` (its
    result failed the integrity check). ``error`` is the ``repr`` of
    the last exception observed.
    """

    index: int
    start: int
    stop: int
    attempts: int
    kind: str
    error: str

    @property
    def size(self) -> int:
        """Number of scenarios the failed shard covered."""
        return self.stop - self.start

    def to_dict(self) -> dict[str, Any]:
        """The failure as a plain JSON-serializable mapping."""
        return {
            "index": self.index,
            "start": self.start,
            "stop": self.stop,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
        }


@dataclass(frozen=True)
class FailureReport:
    """Machine-readable account of the shards a sweep skipped.

    Returned alongside the partial result by ``on_error="skip"`` runs.
    Truthiness mirrors "did anything fail": an empty report is falsy,
    so ``result, report = run_sharded(...); if report: ...`` reads
    naturally.
    """

    failures: tuple[ChunkFailure, ...]
    num_chunks: int

    def __bool__(self) -> bool:
        return bool(self.failures)

    @property
    def num_failed(self) -> int:
        """How many chunks were skipped."""
        return len(self.failures)

    @property
    def num_completed(self) -> int:
        """How many chunks produced results."""
        return self.num_chunks - len(self.failures)

    def shard_ranges(self) -> list[tuple[int, int]]:
        """The skipped ``(start, stop)`` scenario ranges, in shard order."""
        return [(failure.start, failure.stop) for failure in self.failures]

    def skipped_scenarios(self) -> int:
        """Total number of scenarios missing from the partial result."""
        return sum(failure.size for failure in self.failures)

    def to_dict(self) -> dict[str, Any]:
        """The report as a plain JSON-serializable mapping."""
        return {
            "num_chunks": self.num_chunks,
            "num_failed": self.num_failed,
            "skipped_scenarios": self.skipped_scenarios(),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def summary(self) -> str:
        """A one-line human-readable account of the damage."""
        if not self.failures:
            return f"all {self.num_chunks} chunks completed"
        ranges = ", ".join(
            f"[{start}, {stop})" for start, stop in self.shard_ranges()
        )
        return (
            f"{self.num_failed} of {self.num_chunks} chunks failed "
            f"({self.skipped_scenarios()} scenarios skipped: {ranges})"
        )
