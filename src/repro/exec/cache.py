"""A content-addressed on-disk result cache shared across processes.

Extends the experiments registry's in-process cache to disk: results
are pickled under ``<cache-dir>/v1/<sha256>.pkl`` where the key digest
folds in everything the result depends on — the *source fingerprint*
of the ``repro`` package (any code edit invalidates the whole cache)
plus the caller's spec parts (experiment id and driver digest, or
sweep name / draws / seed). Sweep results are independent of
``jobs``/``chunk_size`` by the sharding bit-identity invariant, so
those knobs are deliberately *not* part of the key: a result computed
at one parallelism level warm-starts every other.

Writes are atomic (temp file + ``os.replace``) so concurrent
processes — ``run_all(parallel=True)`` workers, overlapping CLI
invocations — can share one directory without torn reads; a corrupt
or unreadable entry is treated as a miss, never an error.

The default directory is ``~/.cache/repro`` (honouring
``REPRO_CACHE_DIR`` and ``XDG_CACHE_HOME``), overridable per call via
``--cache-dir`` on the CLI.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any

from ..errors import ExecutionError
from ..obs.recorder import active_recorder

__all__ = [
    "default_cache_dir",
    "package_fingerprint",
    "cache_key",
    "CacheStats",
    "ResultCache",
]

#: Bump when the on-disk entry format changes; old entries are simply
#: never looked up again.
_SCHEMA = "v1"

#: Folded into every key digest (see :func:`cache_key`). Bump when the
#: *meaning* of cached values changes — a pickle-layout or result-schema
#: change the schema directory alone would not catch — so stale entries
#: become unreachable instead of deserializing into the wrong shape.
CACHE_FORMAT_VERSION = 2


def default_cache_dir() -> Path:
    """The cache directory used when the caller does not name one.

    ``$REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/repro``, then
    ``~/.cache/repro``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


@lru_cache(maxsize=1)
def package_fingerprint() -> str:
    """A digest of every ``repro`` source file, computed once per process.

    Keys cached results to the exact code that produced them: editing
    any module in the package changes the fingerprint and orphans
    every stale entry. (The per-process memoization assumes sources do
    not change mid-process — the same assumption the in-process
    experiment cache already makes.)
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cache_key(*parts: object) -> str:
    """The content-addressed key for a sequence of spec parts.

    Parts are joined unambiguously (length-prefixed) and digested, so
    ``cache_key("a", "bc")`` and ``cache_key("ab", "c")`` differ. The
    digest is prefixed with :data:`CACHE_FORMAT_VERSION`, so bumping
    the format version orphans every existing entry at once.
    """
    if not parts:
        raise ExecutionError("a cache key needs at least one part")
    digest = hashlib.sha256()
    for part in (f"format={CACHE_FORMAT_VERSION}", *parts):
        text = str(part)
        digest.update(f"{len(text)}:".encode())
        digest.update(text.encode())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Counts of what one :class:`ResultCache` instance observed.

    ``corrupt`` counts entries that *existed* but could not be read
    back (torn write, bit flip, renamed class); each such entry also
    counts as a miss, since the caller recomputes either way.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0


class ResultCache:
    """Pickled results keyed by content digest, safe to share on disk.

    ``scope`` labels this cache's telemetry (``"result"`` for the
    whole-run cache, ``"checkpoint"`` for chunk checkpoints) so traces
    and metrics can tell the two apart; it never affects keys or
    storage. Per-instance :class:`CacheStats` tally hits, misses,
    corrupt entries, and completed writes regardless of whether a
    recorder is installed.
    """

    def __init__(
        self,
        directory: "str | os.PathLike[str] | None" = None,
        *,
        scope: str = "result",
    ) -> None:
        self._directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        self._scope = scope
        self.stats = CacheStats()

    @property
    def directory(self) -> Path:
        """The cache's root directory (entries live under a schema subdir)."""
        return self._directory

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        if not key or any(ch in key for ch in "/\\."):
            raise ExecutionError(f"malformed cache key {key!r}")
        return self._directory / _SCHEMA / f"{key}.pkl"

    def get(self, key: str, default: Any = None) -> Any:
        """The cached value for ``key``, or ``default`` on any miss.

        Unreadable, truncated, or unpicklable entries count as misses:
        a shared cache must degrade to recomputation, never crash the
        sweep that consulted it. An entry that *opened* but failed to
        read back is additionally counted corrupt and flagged with one
        ``RuntimeWarning``, so a torn cache is visible instead of
        silently slow.
        """
        path = self.path_for(key)
        try:
            handle = path.open("rb")
        except Exception:
            self.stats.misses += 1
            active_recorder().event("cache", scope=self._scope, op="miss")
            return default
        try:
            with handle:
                value = pickle.load(handle)
        except Exception:
            # Deliberately broad: a torn or bit-flipped pickle can raise
            # nearly anything (TypeError from a mangled REDUCE opcode,
            # KeyError from __setstate__, ImportError from a renamed
            # class, ...) and every one of them means "miss", not
            # "crash the sweep that consulted a shared cache".
            self.stats.misses += 1
            self.stats.corrupt += 1
            warnings.warn(
                f"repro cache: dropping corrupt entry {path.name} "
                "(treated as a miss)",
                RuntimeWarning,
                stacklevel=2,
            )
            active_recorder().event("cache", scope=self._scope, op="corrupt")
            return default
        self.stats.hits += 1
        active_recorder().event("cache", scope=self._scope, op="hit")
        return value

    def put(self, key: str, value: Any) -> bool:
        """Best-effort atomic store; returns whether the entry landed.

        The pickle is written to a temp file in the same directory and
        ``os.replace``d into place, so readers in other processes see
        either the old entry or the complete new one. Write failures —
        an unwritable cache location, a full disk, an unpicklable
        value — return ``False`` instead of raising: the cache is an
        accelerator, and the run that already *computed* the result
        must never crash while memoizing it. (A malformed ``key`` still
        raises: that is a caller bug, not an environment condition.)
        """
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:16]}-", suffix=".tmp"
            )
        except Exception:
            return False
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except Exception:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            return False
        self.stats.writes += 1
        active_recorder().event("cache", scope=self._scope, op="write")
        return True

    def clear(self) -> int:
        """Delete every entry of the current schema; returns the count.

        Also sweeps ``*.tmp`` files orphaned by writers killed between
        ``mkstemp`` and ``os.replace`` (safe: a live writer's rename is
        atomic and every ``put`` uses a fresh temp name), and the
        ``checkpoints/`` tree under this directory — chunk checkpoints
        exist only to resume runs whose results this cache would have
        held, so clearing the results makes every checkpoint stale by
        definition. Orphans and checkpoints do not count toward the
        returned entry count.
        """
        removed = 0
        schema_dir = self._directory / _SCHEMA
        if schema_dir.is_dir():
            for path in schema_dir.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in schema_dir.glob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        checkpoints = self._directory / "checkpoints"
        if checkpoints.is_dir():
            import shutil

            shutil.rmtree(checkpoints, ignore_errors=True)
        return removed
