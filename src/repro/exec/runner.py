"""The sharded sweep driver: chunked kernels, inline or over a pool.

:func:`run_sharded` runs one *chunk kernel* over every shard of a
:class:`~repro.exec.plan.ShardPlan` and reduces the ordered chunk
results. A chunk kernel is a **module-level** function with the
signature ``kernel(payload, start, stop) -> chunk_result``: it slices
the shared payload (scenario records, base parameters, trace lists) to
``[start, stop)`` and makes one batched kernel call for that chunk.

Parallel execution uses a :class:`~concurrent.futures.ProcessPoolExecutor`
whose workers are initialized *once* with the kernel's dotted name and
the pickled payload; per-chunk task messages are then just ``(start,
stop)`` index pairs, so a thousand-chunk sweep does not re-ship the
scenario records a thousand times. Kernels are addressed by
``"module:function"`` name — resolved by import inside the worker —
which keeps the driver picklable under every start method (fork,
forkserver, spawn).

``jobs=1`` runs the same chunks inline with no pool, which is both the
zero-dependency fallback and the memory-bounding mode: intermediate
(scenarios × draws × years) kernel arrays never exceed ``chunk_size``
scenarios, whatever the grid size.
"""

from __future__ import annotations

import concurrent.futures
import importlib
from typing import Any, Callable, Sequence

from ..errors import ExecutionError
from .plan import ShardPlan

__all__ = ["kernel_name", "resolve_kernel", "run_sharded"]

#: Per-worker state installed by the pool initializer: the resolved
#: chunk kernel and the shared payload, shipped once per worker.
_WORKER_STATE: dict[str, Any] = {}


def kernel_name(kernel: Callable[..., Any]) -> str:
    """The ``"module:function"`` name of a module-level chunk kernel.

    Validates that the name round-trips — ``resolve_kernel`` on the
    result must return the same object — which is exactly the property
    a spawned worker process relies on. Lambdas, closures, and methods
    fail here, at submission time, instead of inside the pool.
    """
    module = getattr(kernel, "__module__", None)
    qualname = getattr(kernel, "__qualname__", None)
    if not module or not qualname:
        raise ExecutionError(f"chunk kernel {kernel!r} has no importable name")
    name = f"{module}:{qualname}"
    try:
        resolved = resolve_kernel(name)
    except ExecutionError as error:
        raise ExecutionError(
            f"chunk kernel {name!r} must be a module-level function so "
            f"worker processes can import it ({error})"
        ) from error
    if resolved is not kernel:
        raise ExecutionError(
            f"chunk kernel name {name!r} resolves to a different object; "
            "kernels must be module-level functions"
        )
    return name


def resolve_kernel(name: str) -> Callable[..., Any]:
    """Import a chunk kernel back from its ``"module:function"`` name."""
    module_name, _, attribute = name.partition(":")
    if not module_name or not attribute or "." in attribute:
        raise ExecutionError(
            f"kernel name must look like 'package.module:function', got {name!r}"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise ExecutionError(f"cannot import kernel module {module_name!r}: {error}")
    kernel = getattr(module, attribute, None)
    if not callable(kernel):
        raise ExecutionError(
            f"{module_name!r} has no callable {attribute!r}"
        )
    return kernel


def _worker_init(name: str, payload: Any) -> None:
    """Pool initializer: resolve the kernel and pin the shared payload."""
    _WORKER_STATE["kernel"] = resolve_kernel(name)
    _WORKER_STATE["payload"] = payload


def _worker_chunk(start: int, stop: int) -> Any:
    """Run the initialized kernel on one ``[start, stop)`` chunk."""
    return _WORKER_STATE["kernel"](_WORKER_STATE["payload"], start, stop)


def run_sharded(
    kernel: Callable[[Any, int, int], Any],
    payload: Any,
    plan: ShardPlan,
    *,
    jobs: int = 1,
    combine: Callable[[Sequence[Any]], Any] | None = None,
) -> Any:
    """Run ``kernel`` over every shard of ``plan`` and reduce the chunks.

    ``kernel(payload, start, stop)`` is called once per shard — inline
    for ``jobs=1``, across a ``ProcessPoolExecutor(max_workers=jobs)``
    otherwise. Chunk results are consumed in shard order (a streaming
    in-order reduction: each finished chunk's kernel intermediates are
    freed while later chunks are still running) and handed to
    ``combine`` as one ordered list; with ``combine=None`` the list
    itself is returned.

    Because every sharded runner derives per-scenario state from global
    scenario records, the combined result is bit-identical to a
    monolithic run for any ``jobs``/``chunk_size``.
    """
    if jobs <= 0:
        raise ExecutionError(f"job count must be positive, got {jobs}")
    name = kernel_name(kernel)
    shards = plan.shards()
    if jobs == 1 or len(shards) == 1:
        chunks = [kernel(payload, shard.start, shard.stop) for shard in shards]
    else:
        workers = min(jobs, len(shards))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(name, payload),
        ) as pool:
            futures = [
                pool.submit(_worker_chunk, shard.start, shard.stop)
                for shard in shards
            ]
            chunks = [future.result() for future in futures]
    if combine is None:
        return chunks
    return combine(chunks)
