"""The sharded sweep driver: chunked kernels, inline or over a pool.

:func:`run_sharded` runs one *chunk kernel* over every shard of a
:class:`~repro.exec.plan.ShardPlan` and reduces the ordered chunk
results. A chunk kernel is a **module-level** function with the
signature ``kernel(payload, start, stop) -> chunk_result``: it slices
the shared payload (scenario records, base parameters, trace lists) to
``[start, stop)`` and makes one batched kernel call for that chunk.

Parallel execution uses a :class:`~concurrent.futures.ProcessPoolExecutor`
whose workers are initialized *once* with the kernel's dotted name and
the pickled payload; per-chunk task messages are then just ``(start,
stop, attempt)`` index triples, so a thousand-chunk sweep does not
re-ship the scenario records a thousand times. Kernels are addressed
by ``"module:function"`` name — resolved by import inside the worker —
which keeps the driver picklable under every start method (fork,
forkserver, spawn).

``jobs=1`` runs the same chunks inline with no pool, which is both the
zero-dependency fallback and the memory-bounding mode: intermediate
(scenarios × draws × years) kernel arrays never exceed ``chunk_size``
scenarios, whatever the grid size.

The pool path is fault tolerant. Work proceeds in *waves*: each wave
owns a fresh pool, submits every not-yet-finished chunk, and polls
with a short :func:`concurrent.futures.wait` so the driver can notice
three distinct failure modes — a chunk that raises (a normal failed
future), a worker that dies (the pool breaks; only chunks observed
running are charged an attempt, the rest resubmit uncharged), and a
chunk that hangs (its wall-clock runtime exceeds the per-chunk
``timeout``; running futures cannot be cancelled, so the whole pool is
abandoned — queued work cancelled, workers terminated — and the next
wave takes over). Results cross the process boundary in an integrity
envelope (sha256 over the worker-pickled bytes), so a corrupt result
is detected and charged as a failed attempt instead of silently
combined. Retries follow a :class:`~repro.exec.retry.RetryPolicy`
with deterministic seeded backoff; exhausted chunks raise a structured
:class:`~repro.errors.ChunkFailedError` or, under ``on_error="skip"``,
degrade to partial results plus a
:class:`~repro.exec.retry.FailureReport`. A
:class:`~repro.exec.checkpoint.CheckpointStore` persists each finished
chunk so an interrupted sweep resumes bit-identically.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import importlib
import pickle
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import ChunkFailedError, CorruptChunkError, ExecutionError
from ..obs.recorder import active_recorder
from .checkpoint import CheckpointStore
from .faults import FaultSpec, active_fault_spec, corrupt_bytes, perform_fault
from .plan import Shard, ShardPlan
from .retry import ChunkFailure, FailureReport, RetryPolicy

try:
    import resource as _resource
except ImportError:  # pragma: no cover - resource is POSIX-only
    _resource = None

__all__ = ["kernel_name", "resolve_kernel", "run_sharded"]

#: Per-worker state installed by the pool initializer: the resolved
#: chunk kernel, the shared payload, and any armed fault spec, shipped
#: once per worker.
_WORKER_STATE: dict[str, Any] = {}

#: How often the driver wakes to check for finished, crashed, or hung
#: chunks. Small enough that timeout detection is prompt; large enough
#: that polling is invisible next to real kernel work.
_POLL_INTERVAL = 0.05

# Module-level aliases so tests can substitute doubles (a pool that
# records shutdown arguments, a wait that raises KeyboardInterrupt)
# without monkeypatching the stdlib for every process.
_pool_executor = concurrent.futures.ProcessPoolExecutor
_wait = concurrent.futures.wait
_sleep = time.sleep


def kernel_name(kernel: Callable[..., Any]) -> str:
    """The ``"module:function"`` name of a module-level chunk kernel.

    Validates that the name round-trips — ``resolve_kernel`` on the
    result must return the same object — which is exactly the property
    a spawned worker process relies on. Lambdas, closures, and methods
    fail here, at submission time, instead of inside the pool.
    """
    module = getattr(kernel, "__module__", None)
    qualname = getattr(kernel, "__qualname__", None)
    if not module or not qualname:
        raise ExecutionError(f"chunk kernel {kernel!r} has no importable name")
    name = f"{module}:{qualname}"
    try:
        resolved = resolve_kernel(name)
    except ExecutionError as error:
        raise ExecutionError(
            f"chunk kernel {name!r} must be a module-level function so "
            f"worker processes can import it ({error})"
        ) from error
    if resolved is not kernel:
        raise ExecutionError(
            f"chunk kernel name {name!r} resolves to a different object; "
            "kernels must be module-level functions"
        )
    return name


def resolve_kernel(name: str) -> Callable[..., Any]:
    """Import a chunk kernel back from its ``"module:function"`` name."""
    module_name, _, attribute = name.partition(":")
    if not module_name or not attribute or "." in attribute:
        raise ExecutionError(
            f"kernel name must look like 'package.module:function', got {name!r}"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise ExecutionError(
            f"cannot import kernel module {module_name!r}: {error}"
        ) from error
    kernel = getattr(module, attribute, None)
    if not callable(kernel):
        raise ExecutionError(
            f"{module_name!r} has no callable {attribute!r}"
        )
    return kernel


def _worker_init(
    name: str,
    payload: Any,
    faults: "FaultSpec | None" = None,
    telemetry: bool = False,
) -> None:
    """Pool initializer: resolve the kernel and pin the shared payload.

    ``telemetry`` mirrors whether the driver has a live recorder: when
    set, each chunk ships its timing and peak-RSS events back in the
    result envelope; when clear, workers build no telemetry at all.
    """
    _WORKER_STATE["kernel"] = resolve_kernel(name)
    _WORKER_STATE["payload"] = payload
    _WORKER_STATE["faults"] = faults
    _WORKER_STATE["telemetry"] = telemetry


def _peak_rss_kb() -> "int | None":
    """This process's peak resident set size in KiB, if knowable.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalized to
    KiB so traces are comparable. ``None`` where ``resource`` is
    unavailable (non-POSIX platforms).
    """
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def _envelope(result: Any) -> tuple[str, bytes]:
    """Wrap a chunk result as (sha256 hex digest, pickled bytes).

    The worker digests its *own* pickled bytes, so the driver-side
    check is sensitive to anything that mangles the payload in transit
    without depending on pickling being canonical across processes.
    """
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest(), blob


def _open_envelope(envelope: Any, *, start: int, stop: int) -> Any:
    """Verify a chunk result envelope and return the result inside."""
    try:
        digest, blob = envelope
        actual = hashlib.sha256(blob).hexdigest()
    except Exception as error:
        raise CorruptChunkError(
            f"malformed result envelope for chunk [{start}, {stop})"
        ) from error
    if actual != digest:
        raise CorruptChunkError(
            f"integrity check failed for chunk [{start}, {stop}): "
            f"expected sha256 {digest[:12]}, got {actual[:12]}"
        )
    try:
        return pickle.loads(blob)
    except Exception as error:
        raise CorruptChunkError(
            f"cannot deserialize the result for chunk [{start}, {stop})"
        ) from error


def _worker_chunk(start: int, stop: int, attempt: int = 1) -> tuple:
    """Run the initialized kernel on one ``[start, stop)`` chunk.

    Returns the result wrapped in an integrity envelope. If a fault
    rule matches this (chunk, attempt), it fires here: ``raise``,
    ``crash``, and ``hang`` before the kernel runs; ``corrupt`` by
    flipping a bit of the pickled result *after* the digest is taken,
    so the driver's verification fails deterministically.

    With telemetry armed the envelope grows a third element — a list
    of ``chunk_worker`` event dicts (kernel wall time, rows, peak RSS)
    the driver records on arrival. The events ride *outside* the
    digested blob, so telemetry can never perturb integrity checks,
    cached bytes, or results.
    """
    spec = _WORKER_STATE.get("faults")
    rule = spec.match(start, attempt) if spec else None
    if rule is not None and rule.kind != "corrupt":
        perform_fault(rule, start=start, in_worker=True)
    began = time.monotonic()
    result = _WORKER_STATE["kernel"](_WORKER_STATE["payload"], start, stop)
    duration = time.monotonic() - began
    digest, blob = _envelope(result)
    if rule is not None and rule.kind == "corrupt":
        blob = corrupt_bytes(blob)
    if not _WORKER_STATE.get("telemetry"):
        return digest, blob
    events = [
        {
            "kind": "chunk_worker",
            "start": start,
            "stop": stop,
            "attempt": attempt,
            "dur_s": duration,
            "rows": stop - start,
            "peak_rss_kb": _peak_rss_kb(),
        }
    ]
    return digest, blob, events


def _split_envelope_events(raw: Any) -> "tuple[Any, list | None]":
    """Split worker telemetry off a result envelope, if present.

    Telemetry must be separated *before* envelope verification — a
    corrupt-blob attempt still carries valid timing events, and
    :func:`_open_envelope` only understands two-element envelopes.
    """
    if (
        isinstance(raw, tuple)
        and len(raw) == 3
        and isinstance(raw[0], str)
        and isinstance(raw[1], bytes)
        and isinstance(raw[2], list)
    ):
        return (raw[0], raw[1]), raw[2]
    return raw, None


@dataclass(frozen=True)
class _PoolTask:
    """One unit of pool work: a caller key, a backoff stream, call args."""

    key: Any
    stream: int
    args: tuple


@dataclass
class _TaskFailure:
    """A task that exhausted its retry budget, with its final cause."""

    key: Any
    stream: int
    attempts: int
    kind: str
    message: str
    error: "BaseException | None" = None


def _abandon_pool(pool: Any) -> None:
    """Tear a pool down hard: cancel queued chunks, kill its workers.

    Used when a chunk hangs past its timeout (running futures cannot
    be cancelled), when the pool breaks, and on any driver-side error
    including KeyboardInterrupt — a failed sweep must not linger on
    queued work.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass


def _run_pool_tasks(
    tasks: Sequence[_PoolTask],
    *,
    task_fn: Callable[..., Any],
    workers: int,
    retry: RetryPolicy,
    timeout: "float | None" = None,
    initializer: "Callable[..., None] | None" = None,
    initargs: tuple = (),
    postprocess: "Callable[[_PoolTask, Any], Any] | None" = None,
    scope: str = "chunk",
) -> tuple[dict[Any, Any], list[_TaskFailure]]:
    """The wave-based fault-tolerant pool engine.

    Runs ``task_fn(*task.args, attempt)`` for every task across a
    process pool, retrying failures per ``retry``. Each *wave* owns a
    fresh pool; a wave ends normally when all its futures resolve, or
    is abandoned when the pool breaks (worker crash) or a chunk runs
    past ``timeout`` — the unfinished, uncharged tasks roll into the
    next wave. ``postprocess(task, raw)`` runs driver-side on each
    completed future (envelope verification, checkpointing); an
    exception there counts as a failed attempt of that task.

    Every wave is a ``wave`` span on the active recorder; each charged
    attempt lands as an ``attempt`` event (outcome
    ``ok``/``error``/``corrupt``/``crash``/``timeout``), each scheduled
    retry as a ``retry`` event, and pool teardown/rebuild as ``pool``
    events. ``scope`` labels those events (``"chunk"`` for sharded
    sweeps, ``"experiment"`` for the registry's parallel ``run_all``).

    Returns ``(results, failures)``: a dict of postprocessed results
    keyed by ``task.key``, and the tasks that exhausted every attempt.
    Shared by :func:`run_sharded` and the experiment registry's
    parallel ``run_all``.
    """
    recorder = active_recorder()
    pending: list[tuple[_PoolTask, int]] = [(task, 1) for task in tasks]
    results: dict[Any, Any] = {}
    failures: list[_TaskFailure] = []

    def charge(
        task: _PoolTask,
        attempt: int,
        kind: str,
        message: str,
        error: "BaseException | None",
        delays: list[float],
    ) -> None:
        recorder.event(
            "attempt",
            scope=scope,
            key=task.key,
            stream=task.stream,
            attempt=attempt,
            outcome=kind,
            error=message[:200],
        )
        if attempt < retry.max_attempts:
            delay = retry.delay(task.stream, attempt)
            recorder.event(
                "retry",
                scope=scope,
                stream=task.stream,
                attempt=attempt,
                delay_s=delay,
            )
            delays.append(delay)
            pending.append((task, attempt + 1))
        else:
            failures.append(
                _TaskFailure(task.key, task.stream, attempt, kind, message, error)
            )

    wave_index = 0
    while pending:
        wave, pending = pending, []
        if wave_index:
            recorder.event("pool", op="rebuild", wave=wave_index)
        wave_span = recorder.span(
            "wave",
            index=wave_index,
            tasks=len(wave),
            workers=min(workers, len(wave)),
        )
        wave_index += 1
        with wave_span:
            pool = _pool_executor(
                max_workers=min(workers, len(wave)),
                initializer=initializer,
                initargs=initargs,
            )
            delays: list[float] = []
            abandoned = False
            try:
                info = {}
                for task, attempt in wave:
                    info[pool.submit(task_fn, *task.args, attempt)] = (task, attempt)
                outstanding = set(info)
                first_running: dict[Any, float] = {}
                while outstanding:
                    done, outstanding = _wait(
                        outstanding,
                        timeout=_POLL_INTERVAL,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    now = time.monotonic()
                    broken: "BaseException | None" = None
                    for future in done:
                        task, attempt = info[future]
                        try:
                            value = future.result()
                            value, worker_events = _split_envelope_events(value)
                            recorder.record_worker_events(worker_events)
                            if postprocess is not None:
                                value = postprocess(task, value)
                        except concurrent.futures.BrokenExecutor as error:
                            # A dead worker poisons every unfinished future
                            # with the same exception; fold this one back in
                            # and attribute blame once, below.
                            broken = error
                            outstanding.add(future)
                            continue
                        except Exception as error:
                            kind = (
                                "corrupt"
                                if isinstance(error, CorruptChunkError)
                                else "error"
                            )
                            charge(task, attempt, kind, str(error), error, delays)
                            continue
                        recorder.event(
                            "attempt",
                            scope=scope,
                            key=task.key,
                            stream=task.stream,
                            attempt=attempt,
                            outcome="ok",
                        )
                        results[task.key] = value
                    if broken is not None:
                        # Only tasks observed running can have killed the
                        # worker; queued ones resubmit without losing an
                        # attempt. If the crash beat our first poll, charge
                        # everything unfinished rather than loop forever.
                        charged = {f for f in outstanding if f in first_running}
                        if not charged:
                            charged = set(outstanding)
                        for future in outstanding:
                            task, attempt = info[future]
                            if future in charged:
                                charge(
                                    task,
                                    attempt,
                                    "crash",
                                    f"worker process died ({broken})",
                                    broken,
                                    delays,
                                )
                            else:
                                pending.append((task, attempt))
                        recorder.event("pool", op="abandon", reason="crash")
                        _abandon_pool(pool)
                        abandoned = True
                        break
                    for future in outstanding:
                        if future not in first_running and future.running():
                            first_running[future] = now
                    if timeout is not None:
                        timed_out = {
                            future
                            for future in outstanding
                            if future in first_running
                            and now - first_running[future] >= timeout
                        }
                        if timed_out:
                            # Running futures cannot be cancelled, so the
                            # whole pool is forfeit; innocent bystanders
                            # resubmit uncharged in the next wave.
                            for future in outstanding:
                                task, attempt = info[future]
                                if future in timed_out:
                                    charge(
                                        task,
                                        attempt,
                                        "timeout",
                                        f"chunk ran past the {timeout:g}s "
                                        f"per-chunk timeout",
                                        None,
                                        delays,
                                    )
                                else:
                                    pending.append((task, attempt))
                            recorder.event("pool", op="abandon", reason="timeout")
                            _abandon_pool(pool)
                            abandoned = True
                            break
            except BaseException:
                _abandon_pool(pool)
                raise
            if not abandoned:
                pool.shutdown(wait=True)
        if pending and delays:
            _sleep(max(delays))
    return results, failures


def _run_chunk_inline(
    kernel: Callable[[Any, int, int], Any],
    payload: Any,
    shard: Shard,
    *,
    retry: RetryPolicy,
    spec: "FaultSpec | None",
) -> "tuple[Any, _TaskFailure | None]":
    """Run one chunk on the calling thread with the same retry budget."""
    recorder = active_recorder()
    last_error: "Exception | None" = None
    kind = "error"
    for attempt in range(1, retry.max_attempts + 1):
        rule = spec.match(shard.start, attempt) if spec is not None else None
        began = time.monotonic()
        try:
            if rule is not None and rule.kind != "corrupt":
                perform_fault(rule, start=shard.start, in_worker=False)
            chunk = kernel(payload, shard.start, shard.stop)
            if rule is not None and rule.kind == "corrupt":
                # Mirror the pool path's integrity failure: build the
                # envelope, damage it, and let verification object.
                digest, blob = _envelope(chunk)
                _open_envelope(
                    (digest, corrupt_bytes(blob)),
                    start=shard.start,
                    stop=shard.stop,
                )
            recorder.event(
                "attempt",
                scope="chunk",
                key=shard.index,
                stream=shard.start,
                attempt=attempt,
                outcome="ok",
                dur_s=time.monotonic() - began,
                rows=shard.stop - shard.start,
            )
            return chunk, None
        except Exception as error:
            last_error = error
            kind = "corrupt" if isinstance(error, CorruptChunkError) else "error"
            recorder.event(
                "attempt",
                scope="chunk",
                key=shard.index,
                stream=shard.start,
                attempt=attempt,
                outcome=kind,
                error=str(error)[:200],
            )
            if attempt < retry.max_attempts:
                delay = retry.delay(shard.start, attempt)
                recorder.event(
                    "retry",
                    scope="chunk",
                    stream=shard.start,
                    attempt=attempt,
                    delay_s=delay,
                )
                _sleep(delay)
    failure = _TaskFailure(
        key=shard.index,
        stream=shard.start,
        attempts=retry.max_attempts,
        kind=kind,
        message=str(last_error),
        error=last_error,
    )
    return None, failure


def _raise_exhausted(
    shard: Shard, failure: _TaskFailure, retry: RetryPolicy
) -> None:
    """Surface an exhausted chunk under ``on_error="raise"``.

    With no retry budget armed the chunk's own exception propagates
    raw, as ``run_sharded`` always raised before the fault-tolerance
    layer existed; with retries in play, exhaustion is a structured
    :class:`~repro.errors.ChunkFailedError` (crash and timeout
    failures have no original exception and are always structured).
    """
    if retry.max_attempts == 1 and failure.error is not None:
        raise failure.error
    _raise_chunk_failed(shard, failure)


def _raise_chunk_failed(shard: Shard, failure: _TaskFailure) -> None:
    """Raise the structured exhaustion error for one failed shard."""
    raise ChunkFailedError(
        f"chunk {shard.index} (scenarios [{shard.start}, {shard.stop})) "
        f"failed after {failure.attempts} attempt(s) [{failure.kind}]: "
        f"{failure.message}",
        index=shard.index,
        start=shard.start,
        stop=shard.stop,
        attempts=failure.attempts,
        kind=failure.kind,
    ) from failure.error


def _chunk_failure(shard: Shard, failure: _TaskFailure) -> ChunkFailure:
    """Convert an engine failure into its report form."""
    return ChunkFailure(
        index=shard.index,
        start=shard.start,
        stop=shard.stop,
        attempts=failure.attempts,
        kind=failure.kind,
        error=repr(failure.error) if failure.error is not None else failure.message,
    )


def run_sharded(
    kernel: Callable[[Any, int, int], Any],
    payload: Any,
    plan: ShardPlan,
    *,
    jobs: int = 1,
    combine: "Callable[[Sequence[Any]], Any] | None" = None,
    retries: "RetryPolicy | int | None" = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
    checkpoint: "CheckpointStore | None" = None,
    faults: "FaultSpec | None" = None,
) -> Any:
    """Run ``kernel`` over every shard of ``plan`` and reduce the chunks.

    ``kernel(payload, start, stop)`` is called once per shard — inline
    for ``jobs=1``, across a ``ProcessPoolExecutor(max_workers=jobs)``
    otherwise. Chunk results are consumed in shard order and handed to
    ``combine`` as one ordered list; with ``combine=None`` the list
    itself is returned. Because every sharded runner derives
    per-scenario state from global scenario records, the combined
    result is bit-identical to a monolithic run for any
    ``jobs``/``chunk_size`` — and, via the retry machinery below, for
    any schedule of recovered faults.

    Fault tolerance:

    - ``retries`` — a :class:`~repro.exec.retry.RetryPolicy`, an int
      (that many retries after the first attempt), or ``None`` (one
      attempt). Backoff is deterministic (seeded jitter, no wall-clock
      randomness).
    - ``timeout`` — per-chunk wall-clock seconds; a chunk running past
      it is charged a failed attempt and its pool is rebuilt. Requires
      ``jobs > 1``: inline chunks run on the calling thread and cannot
      be cancelled.
    - ``on_error`` — ``"raise"`` (default) surfaces the first
      exhausted chunk: with no retry budget the chunk's own exception
      propagates unchanged (the pre-fault-tolerance contract), with
      retries armed it is a structured
      :class:`~repro.errors.ChunkFailedError`. ``"skip"`` returns
      ``(partial_result, FailureReport)`` instead, raising only if
      *no* chunk completed at all.
    - ``checkpoint`` — a :class:`~repro.exec.checkpoint.CheckpointStore`;
      finished chunks are persisted as they land (multi-chunk plans
      only), prefilled from the store when it was opened in consume
      mode, and discarded after a fully successful run.
    - ``faults`` — an explicit
      :class:`~repro.exec.faults.FaultSpec`; defaults to whatever
      :func:`~repro.exec.faults.active_fault_spec` resolves (installed
      spec, then the ``REPRO_FAULTS`` environment variable).
    """
    if jobs <= 0:
        raise ExecutionError(f"job count must be positive, got {jobs}")
    if on_error not in ("raise", "skip"):
        raise ExecutionError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}"
        )
    retry = RetryPolicy.coerce(retries)
    if timeout is not None:
        if timeout <= 0:
            raise ExecutionError(
                f"per-chunk timeout must be positive, got {timeout}"
            )
        if jobs == 1:
            raise ExecutionError(
                "a per-chunk timeout needs jobs > 1: inline chunks run on "
                "the calling thread and cannot be cancelled"
            )
    spec = active_fault_spec(faults)
    if spec is not None and not spec:
        spec = None
    name = kernel_name(kernel)
    shards = plan.shards()
    shard_by_index = {shard.index: shard for shard in shards}
    use_checkpoint = checkpoint is not None and len(shards) > 1
    recorder = active_recorder()

    with recorder.span(
        "sharded_run",
        kernel=name,
        scenarios=plan.num_scenarios,
        chunks=len(shards),
        jobs=jobs,
    ):
        completed: dict[int, Any] = {}
        to_run: list[Shard] = []
        for shard in shards:
            if use_checkpoint:
                hit, chunk = checkpoint.get(shard.start, shard.stop)
                if hit:
                    completed[shard.index] = chunk
                    continue
            to_run.append(shard)

        failures: list[_TaskFailure] = []
        if jobs == 1 or (len(shards) == 1 and timeout is None):
            for shard in to_run:
                chunk, failure = _run_chunk_inline(
                    kernel, payload, shard, retry=retry, spec=spec
                )
                if failure is None:
                    completed[shard.index] = chunk
                    if use_checkpoint:
                        checkpoint.put(shard.start, shard.stop, chunk)
                else:
                    if on_error == "raise":
                        _raise_exhausted(shard, failure, retry)
                    failures.append(failure)
        elif to_run:
            def postprocess(task: _PoolTask, raw: Any) -> Any:
                shard = shard_by_index[task.key]
                chunk = _open_envelope(raw, start=shard.start, stop=shard.stop)
                if use_checkpoint:
                    checkpoint.put(shard.start, shard.stop, chunk)
                return chunk

            tasks = [
                _PoolTask(key=shard.index, stream=shard.start,
                          args=(shard.start, shard.stop))
                for shard in to_run
            ]
            results, failures = _run_pool_tasks(
                tasks,
                task_fn=_worker_chunk,
                workers=min(jobs, len(to_run)),
                retry=retry,
                timeout=timeout,
                initializer=_worker_init,
                initargs=(name, payload, spec, recorder.enabled),
                postprocess=postprocess,
            )
            completed.update(results)

        if failures:
            failures.sort(key=lambda failure: failure.key)
            if on_error == "raise":
                first = failures[0]
                _raise_exhausted(shard_by_index[first.key], first, retry)
            if not completed:
                first = failures[0]
                _raise_chunk_failed(shard_by_index[first.key], first)
        if use_checkpoint and not failures:
            # complete() wipes the spec's whole namespace — catching
            # stale entries an earlier geometry left — where a
            # plan-shaped discard() only covers this run's ranges.
            complete = getattr(checkpoint, "complete", None)
            if complete is not None:
                complete()
            else:
                checkpoint.discard(
                    (shard.start, shard.stop) for shard in shards
                )
        chunks = [completed[index] for index in sorted(completed)]
        result = chunks if combine is None else combine(chunks)
        if on_error == "skip":
            report = FailureReport(
                failures=tuple(
                    _chunk_failure(shard_by_index[failure.key], failure)
                    for failure in failures
                ),
                num_chunks=len(shards),
            )
            return result, report
        return result
