"""Execution layer: sharded sweeps, process pools, a persistent cache.

The paper's capex-dominance argument only becomes visible when many
hardware/provisioning/lifetime scenarios are swept at once, so the
reproduction's value scales with scenario throughput. This package
makes every batched kernel scale past one core and one memory chunk —
and keeps long runs alive when workers raise, crash, or hang:

* :class:`ShardPlan` — deterministic chunking of a sweep's scenario
  axis; peak kernel memory is bounded by ``chunk_size`` scenarios.
* :func:`run_sharded` — runs a module-level chunk kernel over every
  shard, inline (``jobs=1``) or across a ``ProcessPoolExecutor``, with
  an in-order streaming reduction. Per-scenario seeded RNG streams
  make sharded runs bit-identical to monolithic ones
  (``tests/test_sharded_equivalence.py``).
* :class:`RetryPolicy` / ``timeout`` / ``on_error`` — fault-tolerant
  execution: failed, crashed, hung, or corrupt chunks are retried with
  deterministic seeded backoff; exhausted chunks raise a structured
  :class:`~repro.errors.ChunkFailedError` or degrade to partial
  results plus a :class:`FailureReport` under ``on_error="skip"``.
* :class:`CheckpointStore` — chunk-level checkpoints layered on the
  result cache, keyed by (spec digest, shard range), so interrupted
  sweeps resume bit-identically via ``repro sweep --resume``.
* :class:`FaultSpec` — deterministic fault injection (env var
  ``REPRO_FAULTS`` or API) for exercising every recovery path in CI
  without flaky timing.
* :class:`ResultCache` — a content-addressed on-disk cache (keyed by
  the ``repro`` source fingerprint plus the sweep/experiment spec)
  shared by ``repro run`` and ``repro sweep`` across processes, so
  repeated CLI invocations warm-start. Per-instance
  :class:`CacheStats` count hits/misses/corrupt entries/writes, and
  corrupt entries raise a one-line ``RuntimeWarning``.

The whole layer is instrumented for :mod:`repro.obs`: when a recorder
is installed, sharded runs emit ``sharded_run``/``wave`` spans plus
per-attempt, retry, cache, and pool events (workers ship chunk timing
and peak RSS back inside the result envelopes), and
:func:`predict_outcomes` turns a :class:`FaultSpec` into the exact
attempt-outcome sequences a traced run must reproduce.

The sweep runners in :mod:`repro.scenarios`, :mod:`repro.uncertainty`,
and :mod:`repro.traces` all accept ``jobs=``/``chunk_size=`` plus the
fault-tolerance knobs and route through this layer; the CLI surfaces
them as ``repro sweep NAME --jobs N --retries R --timeout S
--on-error skip --resume``.
"""

from .cache import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    ResultCache,
    cache_key,
    default_cache_dir,
    package_fingerprint,
)
from .checkpoint import CheckpointStore
from .faults import (
    FaultRule,
    FaultSpec,
    InjectedFault,
    active_fault_spec,
    install_faults,
    predict_outcomes,
)
from .plan import Shard, ShardPlan
from .retry import ChunkFailure, FailureReport, RetryPolicy
from .runner import kernel_name, resolve_kernel, run_sharded

__all__ = [
    "Shard",
    "ShardPlan",
    "kernel_name",
    "resolve_kernel",
    "run_sharded",
    "RetryPolicy",
    "ChunkFailure",
    "FailureReport",
    "CheckpointStore",
    "FaultRule",
    "FaultSpec",
    "InjectedFault",
    "active_fault_spec",
    "install_faults",
    "predict_outcomes",
    "ResultCache",
    "CacheStats",
    "cache_key",
    "default_cache_dir",
    "package_fingerprint",
    "CACHE_FORMAT_VERSION",
]
