"""Execution layer: sharded sweeps, process pools, a persistent cache.

The paper's capex-dominance argument only becomes visible when many
hardware/provisioning/lifetime scenarios are swept at once, so the
reproduction's value scales with scenario throughput. This package
makes every batched kernel scale past one core and one memory chunk:

* :class:`ShardPlan` — deterministic chunking of a sweep's scenario
  axis; peak kernel memory is bounded by ``chunk_size`` scenarios.
* :func:`run_sharded` — runs a module-level chunk kernel over every
  shard, inline (``jobs=1``) or across a ``ProcessPoolExecutor``, with
  an in-order streaming reduction. Per-scenario seeded RNG streams
  make sharded runs bit-identical to monolithic ones
  (``tests/test_sharded_equivalence.py``).
* :class:`ResultCache` — a content-addressed on-disk cache (keyed by
  the ``repro`` source fingerprint plus the sweep/experiment spec)
  shared by ``repro run`` and ``repro sweep`` across processes, so
  repeated CLI invocations warm-start.

The sweep runners in :mod:`repro.scenarios`, :mod:`repro.uncertainty`,
and :mod:`repro.traces` all accept ``jobs=``/``chunk_size=`` and route
through this layer; the CLI surfaces them as
``repro sweep NAME --jobs N --chunk-size K --cache-dir PATH``.
"""

from .cache import ResultCache, cache_key, default_cache_dir, package_fingerprint
from .plan import Shard, ShardPlan
from .runner import kernel_name, resolve_kernel, run_sharded

__all__ = [
    "Shard",
    "ShardPlan",
    "kernel_name",
    "resolve_kernel",
    "run_sharded",
    "ResultCache",
    "cache_key",
    "default_cache_dir",
    "package_fingerprint",
]
