"""Shard plans: deterministic scenario-axis chunking for batched sweeps.

Every batched kernel in the library evaluates a *scenario axis* — fleet
parameter sets, provisioning targets, intensity traces, or
(scenario, draw) cells flattened scenario-major. A :class:`ShardPlan`
partitions that axis into contiguous ``[start, stop)`` chunks so a
sweep can run chunk by chunk: peak intermediate memory is bounded by
``chunk_size`` scenarios and the chunks can fan out over a process
pool (:func:`repro.exec.runner.run_sharded`).

The partition is a pure function of ``(num_scenarios, chunk_size)`` —
no randomness, no dependence on job count beyond the default chunk
sizing — and every sharded runner derives per-scenario state (seeded
RNG streams, override plans) from the scenario's *global* record, so
sharded results are bit-identical to monolithic runs under any
chunk/job configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExecutionError

__all__ = ["Shard", "ShardPlan"]


@dataclass(frozen=True)
class Shard:
    """One contiguous ``[start, stop)`` slice of a sweep's scenario axis."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ExecutionError(f"shard index must be >= 0, got {self.index}")
        if not 0 <= self.start < self.stop:
            raise ExecutionError(
                f"shard needs 0 <= start < stop, got [{self.start}, {self.stop})"
            )

    @property
    def size(self) -> int:
        """Number of scenarios in this shard."""
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``num_scenarios`` into chunks.

    Chunks are contiguous, ordered, and exactly cover ``[0,
    num_scenarios)``; every chunk holds ``chunk_size`` scenarios except
    possibly the last. Build one with :meth:`plan`, which also derives
    a sensible default chunk size from the job count.
    """

    num_scenarios: int
    chunk_size: int

    def __post_init__(self) -> None:
        if self.num_scenarios <= 0:
            raise ExecutionError(
                f"need at least one scenario, got {self.num_scenarios}"
            )
        if self.chunk_size <= 0:
            raise ExecutionError(
                f"chunk size must be positive, got {self.chunk_size}"
            )

    @classmethod
    def plan(
        cls,
        num_scenarios: int,
        chunk_size: int | None = None,
        jobs: int = 1,
    ) -> "ShardPlan":
        """The plan for a sweep of ``num_scenarios`` scenarios.

        With ``chunk_size=None`` the axis is kept whole for ``jobs=1``
        (the monolithic fast path: zero chunking overhead) and split
        into ``jobs`` near-equal chunks otherwise, so every worker gets
        one chunk. An explicit ``chunk_size`` wins in both cases —
        that is the memory bound: no chunk ever holds more scenarios.
        """
        if jobs <= 0:
            raise ExecutionError(f"job count must be positive, got {jobs}")
        if chunk_size is None:
            if num_scenarios <= 0:
                raise ExecutionError(
                    f"need at least one scenario, got {num_scenarios}"
                )
            chunk_size = (
                num_scenarios
                if jobs == 1
                else -(-num_scenarios // min(jobs, num_scenarios))
            )
        return cls(num_scenarios=num_scenarios, chunk_size=chunk_size)

    @property
    def num_chunks(self) -> int:
        """How many chunks the plan produces (ceil division)."""
        return -(-self.num_scenarios // self.chunk_size)

    def shards(self) -> tuple[Shard, ...]:
        """The ordered shards, exactly covering ``[0, num_scenarios)``."""
        return tuple(
            Shard(
                index=index,
                start=index * self.chunk_size,
                stop=min((index + 1) * self.chunk_size, self.num_scenarios),
            )
            for index in range(self.num_chunks)
        )

    def __len__(self) -> int:
        return self.num_chunks

    def __iter__(self):
        return iter(self.shards())
