"""Chunk-level checkpoints so interrupted sweeps warm-start.

The :class:`~repro.exec.cache.ResultCache` stores *whole-run* results,
which is the right granularity for repeat invocations but useless when
a 100k-scenario sweep dies at 95%: nothing was keyed until the final
combine. :class:`CheckpointStore` closes that gap by recording each
completed chunk under a key derived from the sweep's spec digest and
the chunk's shard range.

Entries live in a per-spec namespace —
``<cache-dir>/checkpoints/<spec-digest>/`` — each an ordinary
content-addressed cache file (atomic temp + ``os.replace`` writes and
corrupt-as-miss reads come for free from :class:`ResultCache`). The
namespace is what makes cleanup exact: :meth:`complete` removes the
*whole* per-spec directory when a run finishes, so checkpoints written
under a different chunk geometry of the same spec — which a
range-by-range discard can never name — cannot pile up, and
:meth:`ResultCache.clear` sweeps the entire ``checkpoints/`` tree
along with the results that superseded it.

Because chunk results are keyed by scenario *range* — not by
``jobs``/``chunk_size`` at large, but by the exact ``(start, stop)``
window the plan produced — a resumed run replays the identical
per-scenario seeded streams and is bit-identical to an uninterrupted
one. Reads are gated by the ``consume`` flag so checkpoints only
warm-start runs that asked to resume (``repro sweep --resume``);
writes always happen for multi-chunk runs, and a completed run
removes its checkpoint namespace since the whole-run cache now covers
it.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterable

from .cache import (
    _SCHEMA,
    ResultCache,
    cache_key,
    default_cache_dir,
    package_fingerprint,
)

__all__ = ["CheckpointStore"]

_MISS = object()

#: Subdirectory of the cache root holding every checkpoint namespace.
_CHECKPOINT_SUBDIR = "checkpoints"


class CheckpointStore:
    """Per-chunk results for one sweep spec, keyed by shard range.

    ``spec_parts`` identify the sweep (name, draws/seed, ...); the
    store folds in the package source fingerprint so checkpoints never
    survive a code change. ``consume`` controls whether :meth:`get`
    returns stored chunks (``--resume``) or reports misses while still
    allowing writes (the default for a fresh run, which must not be
    contaminated by a previous run's leftovers yet should leave its
    own trail in case it is interrupted).
    """

    def __init__(
        self,
        directory: "str | os.PathLike[str] | None" = None,
        *,
        spec_parts: Iterable[object],
        consume: bool = True,
    ) -> None:
        base = Path(directory) if directory is not None else default_cache_dir()
        self._spec_key = cache_key(
            "checkpoint", package_fingerprint(), *spec_parts
        )
        self._directory = base / _CHECKPOINT_SUBDIR / self._spec_key
        self._cache = ResultCache(self._directory, scope="checkpoint")
        self._consume = consume

    @property
    def consume(self) -> bool:
        """Whether :meth:`get` serves stored chunks (resume mode)."""
        return self._consume

    @property
    def spec_key(self) -> str:
        """The digest identifying this sweep spec within the cache."""
        return self._spec_key

    @property
    def directory(self) -> Path:
        """This spec's checkpoint namespace directory."""
        return self._directory

    def key_for(self, start: int, stop: int) -> str:
        """The cache key for the chunk covering ``[start, stop)``."""
        return cache_key(self._spec_key, f"chunk:{start}:{stop}")

    def get(self, start: int, stop: int) -> "tuple[bool, Any]":
        """Look up the chunk for ``[start, stop)``.

        Returns ``(True, chunk)`` on a hit, ``(False, None)`` on a
        miss — chunk results may legitimately be falsy, so a sentinel
        pair beats ``None``-as-miss. Always misses when the store was
        opened with ``consume=False``.
        """
        if not self._consume:
            return (False, None)
        value = self._cache.get(self.key_for(start, stop), _MISS)
        if value is _MISS:
            return (False, None)
        return (True, value)

    def put(self, start: int, stop: int, chunk: Any) -> bool:
        """Best-effort store of a completed chunk; returns success."""
        return self._cache.put(self.key_for(start, stop), chunk)

    def discard(self, ranges: Iterable[tuple[int, int]]) -> int:
        """Drop the entries for the given shard ranges; returns the count.

        Range-precise cleanup for callers that know their plan;
        :meth:`complete` is the stronger whole-namespace form the
        sharded driver uses after a fully successful run.
        """
        removed = 0
        for start, stop in ranges:
            path = self._cache.path_for(self.key_for(start, stop))
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def complete(self) -> int:
        """Remove this spec's entire checkpoint namespace; returns the count.

        Called after a fully successful run: every checkpoint of this
        spec is dead weight, *including* entries an earlier interrupted
        run wrote under a different chunk geometry — ranges a
        plan-shaped :meth:`discard` could never enumerate. Directory
        removal is best-effort (a concurrent writer may race it); the
        entries themselves are gone either way.
        """
        removed = self._cache.clear()
        for directory in (
            self._cache.directory / _SCHEMA,
            self._directory,
        ):
            try:
                directory.rmdir()
            except OSError:
                pass
        return removed
