"""Chunk-level checkpoints so interrupted sweeps warm-start.

The :class:`~repro.exec.cache.ResultCache` stores *whole-run* results,
which is the right granularity for repeat invocations but useless when
a 100k-scenario sweep dies at 95%: nothing was keyed until the final
combine. :class:`CheckpointStore` closes that gap by recording each
completed chunk under a key derived from the sweep's spec digest and
the chunk's shard range, layered on the same content-addressed cache
directory (entries are ordinary cache files; atomic writes and
corrupt-as-miss reads come for free).

Because chunk results are keyed by scenario *range* — not by
``jobs``/``chunk_size`` at large, but by the exact ``(start, stop)``
window the plan produced — a resumed run replays the identical
per-scenario seeded streams and is bit-identical to an uninterrupted
one. Reads are gated by the ``consume`` flag so checkpoints only
warm-start runs that asked to resume (``repro sweep --resume``);
writes always happen for multi-chunk runs, and a completed run
discards its checkpoint entries since the whole-run cache now covers
it.
"""

from __future__ import annotations

import os
from typing import Any, Iterable

from .cache import ResultCache, cache_key, package_fingerprint

__all__ = ["CheckpointStore"]

_MISS = object()


class CheckpointStore:
    """Per-chunk results for one sweep spec, keyed by shard range.

    ``spec_parts`` identify the sweep (name, draws/seed, ...); the
    store folds in the package source fingerprint so checkpoints never
    survive a code change. ``consume`` controls whether :meth:`get`
    returns stored chunks (``--resume``) or reports misses while still
    allowing writes (the default for a fresh run, which must not be
    contaminated by a previous run's leftovers yet should leave its
    own trail in case it is interrupted).
    """

    def __init__(
        self,
        directory: "str | os.PathLike[str] | None" = None,
        *,
        spec_parts: Iterable[object],
        consume: bool = True,
    ) -> None:
        self._cache = ResultCache(directory, scope="checkpoint")
        self._spec_key = cache_key(
            "checkpoint", package_fingerprint(), *spec_parts
        )
        self._consume = consume

    @property
    def consume(self) -> bool:
        """Whether :meth:`get` serves stored chunks (resume mode)."""
        return self._consume

    @property
    def spec_key(self) -> str:
        """The digest identifying this sweep spec within the cache."""
        return self._spec_key

    def key_for(self, start: int, stop: int) -> str:
        """The cache key for the chunk covering ``[start, stop)``."""
        return cache_key(self._spec_key, f"chunk:{start}:{stop}")

    def get(self, start: int, stop: int) -> "tuple[bool, Any]":
        """Look up the chunk for ``[start, stop)``.

        Returns ``(True, chunk)`` on a hit, ``(False, None)`` on a
        miss — chunk results may legitimately be falsy, so a sentinel
        pair beats ``None``-as-miss. Always misses when the store was
        opened with ``consume=False``.
        """
        if not self._consume:
            return (False, None)
        value = self._cache.get(self.key_for(start, stop), _MISS)
        if value is _MISS:
            return (False, None)
        return (True, value)

    def put(self, start: int, stop: int, chunk: Any) -> bool:
        """Best-effort store of a completed chunk; returns success."""
        return self._cache.put(self.key_for(start, stop), chunk)

    def discard(self, ranges: Iterable[tuple[int, int]]) -> int:
        """Drop the entries for the given shard ranges; returns the count.

        Called after a successful run: once the whole-run result is in
        the main cache, per-chunk entries are dead weight.
        """
        removed = 0
        for start, stop in ranges:
            path = self._cache.path_for(self.key_for(start, stop))
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
