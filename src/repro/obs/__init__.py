"""Observability for the execution stack: tracing, metrics, profiling.

``repro.obs`` makes the sharded, cached, fault-tolerant execution
layer visible. A :class:`TraceRecorder` installed with
:func:`install_recorder` captures nested spans (run → sweep → sharded
run → wave) and point events (chunk attempts, retries, cache hits,
pool rebuilds, worker peak RSS) into an append-only JSONL trace and a
live :class:`MetricsRegistry`; ``repro stats`` renders a persisted
trace back into per-phase latency, throughput, and cache tables.

When nothing is installed, every instrumented call site resolves the
no-op :class:`NullRecorder` — tracing off costs one dict lookup and a
no-op method call per site, and recorded telemetry never enters cache
keys, checkpoints, or result tables, so traced runs stay bit-identical
to untraced ones.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    TraceRecorder,
    active_recorder,
    install_recorder,
    load_trace,
)
from .stats import phase_table, render_stats, trace_summary

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "TraceRecorder",
    "active_recorder",
    "install_recorder",
    "load_trace",
    "phase_table",
    "render_stats",
    "trace_summary",
]
