"""Turn a persisted trace file into per-phase latency and cache tables.

``repro stats trace.jsonl`` answers the questions a trace exists to
answer — where did the time go, how fast did scenarios flow, how did
the cache behave — without re-running anything. The analysis replays
the trace's lines through the *same* metric translation the live
:class:`~repro.obs.recorder.TraceRecorder` uses
(:func:`~repro.obs.recorder._update_metrics`), so a rendered trace and
a live ``--metrics`` summary can never disagree about the same run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from ..tabular import Table
from ..report.tables import render_table
from .metrics import MetricsRegistry
from .recorder import _update_metrics, load_trace

__all__ = ["trace_summary", "phase_table", "render_stats"]


def trace_summary(lines: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Aggregate trace lines into a metrics summary dict.

    Replays every line through the recorder's own metric translation,
    so the result matches what ``--metrics`` printed when the trace
    was recorded.
    """
    metrics = MetricsRegistry()
    for line in lines:
        _update_metrics(metrics, line)
    return metrics.summary()


def _phase_rows(
    lines: Sequence[Mapping[str, Any]],
) -> "dict[str, list[float]]":
    """Collect span durations per kind, plus a synthetic ``chunk`` phase.

    Chunk work has no span of its own — worker timings arrive as
    ``chunk_worker`` events and inline timings as ``attempt`` events
    with a duration — so both are folded into one ``chunk`` phase.
    """
    durations: dict[str, list[float]] = {}
    for line in lines:
        kind = line.get("kind")
        duration = line.get("dur_s")
        if duration is None:
            continue
        if line.get("type") == "span":
            durations.setdefault(str(kind), []).append(float(duration))
        elif kind == "chunk_worker" or (
            kind == "attempt" and line.get("scope") == "chunk"
        ):
            durations.setdefault("chunk", []).append(float(duration))
    return durations


def phase_table(lines: Sequence[Mapping[str, Any]]) -> Table:
    """Per-phase latency table: count, total, mean, p50, max seconds."""
    durations = _phase_rows(lines)
    phases = sorted(durations)
    records = []
    for phase in phases:
        data = np.asarray(durations[phase], dtype=np.float64)
        records.append(
            {
                "phase": phase,
                "count": int(data.shape[0]),
                "total_s": float(np.sum(data)),
                "mean_s": float(np.mean(data)),
                "p50_s": float(np.percentile(data, 50.0)),
                "max_s": float(np.max(data)),
            }
        )
    return Table.from_records(
        records,
        columns=["phase", "count", "total_s", "mean_s", "p50_s", "max_s"],
    )


def _counter_table(summary: Mapping[str, Any]) -> "Table | None":
    rows = [
        {"metric": name, "value": value}
        for name, value in summary.get("counters", {}).items()
    ]
    rows.extend(
        {"metric": name, "value": value}
        for name, value in summary.get("gauges", {}).items()
    )
    if not rows:
        return None
    rows.sort(key=lambda row: row["metric"])
    return Table.from_records(rows, columns=["metric", "value"])


def _histogram_table(summary: Mapping[str, Any]) -> "Table | None":
    records = []
    for name, stats in summary.get("histograms", {}).items():
        if not stats.get("count"):
            continue
        records.append(
            {
                "metric": name,
                "count": stats["count"],
                "mean": stats["mean"],
                "p50": stats["p50"],
                "p95": stats["p95"],
                "p99": stats["p99"],
                "max": stats["max"],
            }
        )
    if not records:
        return None
    return Table.from_records(
        records,
        columns=["metric", "count", "mean", "p50", "p95", "p99", "max"],
    )


def render_stats(path: "str | Path") -> str:
    """Render a trace file as the ``repro stats`` report text."""
    lines = load_trace(path)
    summary = trace_summary(lines)
    sections = [
        f"trace: {path} ({len(lines)} lines)",
        render_table(phase_table(lines), title="Phase latency (seconds)"),
    ]
    counters = _counter_table(summary)
    if counters is not None:
        sections.append(render_table(counters, title="Counters and gauges"))
    histograms = _histogram_table(summary)
    if histograms is not None:
        sections.append(
            render_table(histograms, title="Distributions", float_format="{:.4f}")
        )
    return "\n\n".join(sections)
