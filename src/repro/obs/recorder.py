"""Run-scoped tracing: spans, events, and an append-only JSONL file.

Everything the execution stack does — sweeps, shard waves, chunk
attempts, retries, cache lookups, pool rebuilds — is invisible unless
something records it. This module is that something: a
:class:`TraceRecorder` accepts *spans* (timed regions: run → sweep →
sharded run → wave) and *events* (point facts: a chunk attempt's
outcome, a cache hit, a retry backoff) and appends each as one JSON
line to a run-scoped trace file, while feeding a
:class:`~repro.obs.metrics.MetricsRegistry` so a summary is available
the moment the run ends.

Three properties are load-bearing:

* **Zero overhead when off.** The default recorder is the
  :class:`NullRecorder` singleton: ``span()`` hands back one shared
  no-op context manager and ``event()`` is a constant-time no-op, so
  uninstrumented runs pay a dict lookup per call site and nothing
  else (gated by ``benchmarks/test_bench_obs_overhead.py``).
* **Telemetry is invisible to results.** Recorders never touch cache
  keys, checkpoints, or result tables; a traced sharded run is
  bit-identical to an untraced one
  (``tests/test_obs_trace_correctness.py``).
* **Worker events ship in the result envelope.** Pool workers run in
  other processes where no recorder is installed; their chunk timings
  and peak-RSS samples ride back to the driver as a third envelope
  element and are recorded driver-side
  (:meth:`TraceRecorder.record_worker_events`), so one process owns
  the trace file and lines are never interleaved mid-write.

Recorders install like fault specs: ``with install_recorder(rec):``
scopes one for the duration of a block, and :func:`active_recorder`
resolves the one in effect (the :data:`NULL_RECORDER` otherwise).
Durations come from :func:`time.monotonic`; wall-clock timestamps are
recorded alongside for human correlation only.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from ..errors import ObservabilityError
from .metrics import MetricsRegistry

__all__ = [
    "TRACE_FORMAT_VERSION",
    "NullRecorder",
    "NULL_RECORDER",
    "Span",
    "TraceRecorder",
    "install_recorder",
    "active_recorder",
    "load_trace",
]

#: Written into every trace line as ``"v"``; bump when the line schema
#: changes so ``repro stats`` can refuse traces it cannot interpret.
TRACE_FORMAT_VERSION = 1


class _NullSpan:
    """The shared no-op span: enter/exit/note all do nothing.

    Stateless, so one instance can be nested and reused freely.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def note(self, **fields: Any) -> None:
        """Discard the fields (the disabled counterpart of :meth:`Span.note`)."""
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a cheap no-op.

    Instrumented call sites are written against this interface and
    never check a flag themselves; ``active_recorder()`` returns this
    singleton when nothing is installed, and the only cost left at the
    call site is the method call.
    """

    #: Call sites may branch on this to skip *building* event payloads
    #: (string formatting, row counting) that the recorder would drop.
    enabled = False

    #: The disabled recorder aggregates nothing.
    metrics: "MetricsRegistry | None" = None

    def event(self, kind: str, **fields: Any) -> None:
        """Discard an event."""
        return None

    def span(self, kind: str, **fields: Any) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def record_worker_events(self, events: "Sequence[Mapping[str, Any]] | None") -> None:
        """Discard worker-shipped events."""
        return None

    def close(self) -> None:
        """Nothing to flush."""
        return None


NULL_RECORDER = NullRecorder()
"""The process-wide disabled recorder (also the uninstalled default)."""


class Span(object):
    """One timed region of a trace; use as a context manager.

    Emitted as a single JSON line *at exit* carrying the span's kind,
    id, parent id, duration, and fields — an interrupted run loses
    only its still-open spans, never completed ones. :meth:`note`
    attaches fields discovered mid-span (a result's row count, say)
    before the line is written.
    """

    __slots__ = ("_recorder", "kind", "fields", "span_id", "parent_id", "_t0")

    def __init__(self, recorder: "TraceRecorder", kind: str, fields: dict) -> None:
        self._recorder = recorder
        self.kind = kind
        self.fields = fields
        self.span_id: "int | None" = None
        self.parent_id: "int | None" = None
        self._t0 = 0.0

    def note(self, **fields: Any) -> None:
        """Attach extra fields to the span line written at exit."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        self.span_id, self.parent_id = self._recorder._open_span()
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> bool:
        duration = time.monotonic() - self._t0
        self._recorder._close_span(self, duration, ok=exc_type is None)
        return False


def _update_metrics(metrics: MetricsRegistry, payload: Mapping[str, Any]) -> None:
    """Fold one trace line into the registry.

    This mapping is the single place event vocabulary becomes metric
    names; ``repro stats`` replays persisted traces through it so the
    rendered tables always agree with live ``--metrics`` summaries.
    """
    kind = payload.get("kind")
    if payload.get("type") == "span":
        if kind == "wave":
            metrics.counter("pool.waves").inc()
        elif kind == "sweep":
            duration = payload.get("dur_s")
            rows = payload.get("rows")
            if rows and duration:
                metrics.gauge("sweep.scenarios_per_sec").set(rows / duration)
        elif kind == "request_batch":
            duration = payload.get("dur_s")
            if duration is not None:
                metrics.histogram("serve.batch_duration_s").observe(duration)
        return
    if kind == "cache":
        metrics.counter(f"cache.{payload.get('op', 'unknown')}").inc()
    elif kind == "retry":
        metrics.counter("retry.attempts").inc()
        delay = payload.get("delay_s")
        if delay is not None:
            metrics.histogram("retry.delay_s").observe(delay)
    elif kind == "pool":
        if payload.get("op") == "rebuild":
            metrics.counter("pool.rebuilds").inc()
    elif kind == "attempt":
        metrics.counter("attempt.total").inc()
        outcome = payload.get("outcome")
        if outcome and outcome != "ok":
            metrics.counter(f"attempt.{outcome}").inc()
        duration = payload.get("dur_s")
        if duration is not None and payload.get("scope") == "chunk":
            metrics.histogram("chunk.duration").observe(duration)
    elif kind == "chunk_worker":
        duration = payload.get("dur_s")
        if duration is not None:
            metrics.histogram("chunk.duration").observe(duration)
        rss = payload.get("peak_rss_kb")
        if rss is not None:
            metrics.histogram("chunk.peak_rss_kb").observe(rss)
    elif kind == "request":
        # The sweep service's per-request facts (repro.serve).
        metrics.counter("serve.requests").inc()
        status = payload.get("status")
        if isinstance(status, int):
            metrics.counter(f"serve.status.{status // 100}xx").inc()
        duration = payload.get("dur_s")
        if duration is not None:
            metrics.histogram("serve.request_latency_s").observe(duration)
    elif kind == "coalesce":
        metrics.counter("serve.batches").inc()
        width = payload.get("width")
        if width is not None:
            metrics.histogram("serve.coalesce_width").observe(width)
    elif kind == "shed":
        metrics.counter("serve.shed").inc()
    elif kind == "deadline_expired":
        metrics.counter("serve.deadline_expired").inc()


class TraceRecorder:
    """Records spans and events to memory, metrics, and optional JSONL.

    ``path=None`` records in memory only (``--metrics`` without
    ``--trace-out``); with a path, every line is also appended and
    flushed immediately so a killed run leaves a readable trace of
    everything that completed. All writes funnel through one lock, so
    a recorder may be shared by the driver thread and any callback
    threads; span *nesting* is tracked per recorder and assumes the
    single driver thread the execution stack actually has.
    """

    enabled = True

    def __init__(self, path: "str | Path | None" = None) -> None:
        self._path = Path(path) if path is not None else None
        self._handle = None
        self._lock = threading.Lock()
        self._seq = 0
        self._next_span_id = 0
        self._stack: list[int] = []
        self._began = time.monotonic()
        #: Every recorded line, in order — the in-memory trace.
        self.events: list[dict] = []
        #: Aggregates fed synchronously from the same lines.
        self.metrics = MetricsRegistry()

    @property
    def path(self) -> "Path | None":
        """Where the JSONL trace is written, or ``None`` for memory-only."""
        return self._path

    def _write(self, payload: dict) -> None:
        with self._lock:
            payload["seq"] = self._seq
            payload["v"] = TRACE_FORMAT_VERSION
            self._seq += 1
            self.events.append(payload)
            _update_metrics(self.metrics, payload)
            if self._path is not None:
                if self._handle is None:
                    self._path.parent.mkdir(parents=True, exist_ok=True)
                    self._handle = self._path.open("a", encoding="utf-8")
                self._handle.write(json.dumps(payload, default=repr) + "\n")
                self._handle.flush()

    def _stamp(self) -> dict:
        return {
            "t": round(time.monotonic() - self._began, 6),
            "ts": time.time(),
            "parent": self._stack[-1] if self._stack else None,
        }

    def event(self, kind: str, **fields: Any) -> None:
        """Record one point-in-time event under the current span."""
        self._write({"type": "event", "kind": kind, **self._stamp(), **fields})

    def span(self, kind: str, **fields: Any) -> Span:
        """A timed region; use ``with recorder.span("sweep", ...):``."""
        return Span(self, kind, dict(fields))

    def _open_span(self) -> tuple[int, "int | None"]:
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
            parent = self._stack[-1] if self._stack else None
            self._stack.append(span_id)
        return span_id, parent

    def _close_span(self, span: Span, duration: float, *, ok: bool) -> None:
        with self._lock:
            if self._stack and self._stack[-1] == span.span_id:
                self._stack.pop()
        line = {
            "type": "span",
            "kind": span.kind,
            "span": span.span_id,
            "t": round(time.monotonic() - self._began, 6),
            "ts": time.time(),
            "parent": span.parent_id,
            "dur_s": duration,
            "status": "ok" if ok else "error",
        }
        line.update(span.fields)
        self._write(line)

    def record_worker_events(
        self, events: "Sequence[Mapping[str, Any]] | None"
    ) -> None:
        """Record events a pool worker shipped back in a result envelope.

        Lines are marked ``"proc": "worker"`` and parented under the
        driver's current span; the worker's own monotonic timings are
        preserved as-is (they measure durations, which are comparable
        across processes, unlike monotonic epochs).
        """
        if not events:
            return
        for event in events:
            self._write(
                {"type": "event", "proc": "worker", **self._stamp(), **event}
            )

    def summary(self) -> dict[str, Any]:
        """The metrics summary dict (see :meth:`MetricsRegistry.summary`)."""
        return self.metrics.summary()

    def close(self) -> None:
        """Flush and close the trace file, if one is open."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


_installed_recorder: "TraceRecorder | NullRecorder" = NULL_RECORDER


@contextmanager
def install_recorder(
    recorder: "TraceRecorder | NullRecorder | None",
) -> Iterator["TraceRecorder | NullRecorder"]:
    """Install a recorder process-wide for the duration of a block.

    Mirrors :func:`repro.exec.faults.install_faults`: instrumented
    call sites resolve the recorder through :func:`active_recorder`
    instead of threading one through every signature. Nested installs
    restore the previous recorder on exit; ``None`` installs the
    :data:`NULL_RECORDER` (tracing explicitly off for the block).
    """
    global _installed_recorder
    if recorder is None:
        recorder = NULL_RECORDER
    previous = _installed_recorder
    _installed_recorder = recorder
    try:
        yield recorder
    finally:
        _installed_recorder = previous


def active_recorder() -> "TraceRecorder | NullRecorder":
    """The recorder in effect: the installed one, else the null one."""
    return _installed_recorder


def load_trace(path: "str | Path") -> list[dict]:
    """Parse a JSONL trace file back into its line dicts, in order.

    Raises :class:`~repro.errors.ObservabilityError` for a missing
    file, a malformed line, or a line written by a newer trace format
    than this code understands.
    """
    trace_path = Path(path)
    try:
        text = trace_path.read_text(encoding="utf-8")
    except OSError as error:
        raise ObservabilityError(
            f"cannot read trace file {trace_path}: {error}"
        ) from error
    lines: list[dict] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ObservabilityError(
                f"{trace_path}:{number}: malformed trace line: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise ObservabilityError(
                f"{trace_path}:{number}: trace lines must be objects, "
                f"got {type(payload).__name__}"
            )
        version = payload.get("v", TRACE_FORMAT_VERSION)
        if version > TRACE_FORMAT_VERSION:
            raise ObservabilityError(
                f"{trace_path}:{number}: trace format v{version} is newer "
                f"than this build understands (v{TRACE_FORMAT_VERSION})"
            )
        lines.append(payload)
    return lines
