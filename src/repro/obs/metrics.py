"""A lightweight in-process metrics registry: counters, gauges, histograms.

The execution stack needs numbers, not prose: how many cache hits a
warm sweep saw, how many chunk attempts were retried, how chunk
latency is distributed. This module provides the smallest registry
that answers those questions — no background threads, no exporters,
no global state. A :class:`MetricsRegistry` is owned by a
:class:`~repro.obs.recorder.TraceRecorder` and updated synchronously
as events are recorded; :meth:`MetricsRegistry.summary` flattens
everything into a plain dict the CLI renders after a run
(``repro sweep ... --metrics``).

Histograms keep their raw observations. Observation rates in this
codebase are chunk-level (hundreds to thousands per sweep), never
scenario-level, so exact quantiles are affordable and there is no
reason to trade them for bucketing error.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1); counters never decrease."""
        if amount < 0:
            raise ObservabilityError(
                f"counters only increase; got increment {amount}"
            )
        self.value += amount


class Gauge:
    """A last-value-wins float metric (e.g. scenarios per second)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: "float | None" = None

    def set(self, value: float) -> None:
        """Record the gauge's current value, replacing any previous one."""
        self.value = float(value)


class Histogram:
    """A distribution metric holding every observation it has seen."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        """How many observations have been recorded."""
        return len(self.values)

    def summary(self) -> dict[str, float]:
        """count/mean/min/p50/p95/p99/max of the observations so far."""
        if not self.values:
            return {"count": 0}
        data = np.asarray(self.values, dtype=np.float64)
        return {
            "count": int(data.shape[0]),
            "mean": float(np.mean(data)),
            "min": float(np.min(data)),
            "p50": float(np.percentile(data, 50.0)),
            "p95": float(np.percentile(data, 95.0)),
            "p99": float(np.percentile(data, 99.0)),
            "max": float(np.max(data)),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use.

    A metric name may hold exactly one instrument kind: asking for
    ``counter("x")`` after ``gauge("x")`` is a caller bug and raises,
    so a summary never silently merges incompatible series.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _claim(self, name: str, family: dict) -> None:
        if not name:
            raise ObservabilityError("a metric needs a non-empty name")
        for other in (self._counters, self._gauges, self._histograms):
            if other is not family and name in other:
                raise ObservabilityError(
                    f"metric {name!r} already registered as a different kind"
                )

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        self._claim(name, self._counters)
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        self._claim(name, self._gauges)
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        self._claim(name, self._histograms)
        return self._histograms.setdefault(name, Histogram())

    def summary(self) -> dict[str, Any]:
        """Everything aggregated into one plain, JSON-serializable dict.

        Keys are sorted so the summary is deterministic for a given
        event stream — tests and rendered tables rely on that.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
                if self._gauges[name].value is not None
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }
