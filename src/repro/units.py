"""Typed physical quantities for carbon accounting.

The library deals in four physical dimensions that are easy to confuse
when everything is a float: energy, power, mass of CO2-equivalent, and
carbon intensity (mass of CO2e emitted per unit of energy produced).
Each gets a small immutable value type with explicit constructors and
only the arithmetic that is dimensionally meaningful:

>>> power = Power.watts(5.0)
>>> energy = power * hours(2)
>>> energy.kilowatt_hours
0.01
>>> grid = CarbonIntensity.g_per_kwh(380.0)
>>> (energy * grid).grams
3.8

Canonical internal units are joules (energy), watts (power), grams CO2e
(carbon), grams per kilowatt-hour (intensity), and seconds (durations,
plain floats produced by the helpers :func:`hours`, :func:`days`, and
:func:`years`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .errors import UnitError

__all__ = [
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "DAYS_PER_YEAR",
    "SECONDS_PER_YEAR",
    "JOULES_PER_KWH",
    "GRAMS_PER_KG",
    "GRAMS_PER_TONNE",
    "hours",
    "days",
    "years",
    "Energy",
    "Power",
    "Carbon",
    "CarbonIntensity",
]

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24.0 * SECONDS_PER_HOUR
DAYS_PER_YEAR = 365.0
SECONDS_PER_YEAR = DAYS_PER_YEAR * SECONDS_PER_DAY
JOULES_PER_KWH = 3.6e6
GRAMS_PER_KG = 1e3
GRAMS_PER_TONNE = 1e6


def _require_finite(value: float, what: str) -> float:
    """Validate a scalar — or, for batched models, a whole draw array.

    Quantity types accept 1-D ``float64`` arrays wherever they accept a
    float, so vectorized Monte Carlo paths can push full sample vectors
    through the same dimensional API. All arithmetic on quantities is
    elementwise, so array-valued quantities compose transparently.
    """
    if isinstance(value, np.ndarray):
        # Copy so the frozen quantity cannot alias a caller-mutable
        # array (the scalar path copies by construction via float()).
        array = np.array(value, dtype=np.float64)
        if not np.all(np.isfinite(array)):
            raise UnitError(f"{what} must be finite everywhere")
        return array
    value = float(value)
    if not math.isfinite(value):
        raise UnitError(f"{what} must be finite, got {value!r}")
    return value


def _require_non_negative(value: float, what: str) -> float:
    value = _require_finite(value, what)
    if isinstance(value, np.ndarray):
        if np.any(value < 0.0):
            raise UnitError(f"{what} must be non-negative everywhere")
        return value
    if value < 0.0:
        raise UnitError(f"{what} must be non-negative, got {value!r}")
    return value


def _array_repr(kind: str, value: np.ndarray, unit: str) -> str:
    """Compact repr for array-valued quantities (draw/scenario vectors)."""
    low, high = float(np.min(value)), float(np.max(value))
    return f"{kind}([{len(value)} x {low:.6g}..{high:.6g} {unit}])"


def hours(count: float) -> float:
    """Return ``count`` hours expressed in seconds."""
    return _require_finite(count, "hours") * SECONDS_PER_HOUR


def days(count: float) -> float:
    """Return ``count`` days expressed in seconds."""
    return _require_finite(count, "days") * SECONDS_PER_DAY


def years(count: float) -> float:
    """Return ``count`` years (365-day) expressed in seconds."""
    return _require_finite(count, "years") * SECONDS_PER_YEAR


@dataclass(frozen=True, slots=True)
class Energy:
    """An amount of energy, stored internally in joules."""

    joules: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "joules", _require_finite(self.joules, "energy"))

    @classmethod
    def zero(cls) -> "Energy":
        return cls(0.0)

    @classmethod
    def from_joules(cls, value: float) -> "Energy":
        return cls(value)

    @classmethod
    def watt_hours(cls, value: float) -> "Energy":
        return cls(_require_finite(value, "watt-hours") * SECONDS_PER_HOUR)

    @classmethod
    def kwh(cls, value: float) -> "Energy":
        return cls(_require_finite(value, "kilowatt-hours") * JOULES_PER_KWH)

    @classmethod
    def gwh(cls, value: float) -> "Energy":
        return cls.kwh(_require_finite(value, "gigawatt-hours") * 1e6)

    @classmethod
    def twh(cls, value: float) -> "Energy":
        return cls.kwh(_require_finite(value, "terawatt-hours") * 1e9)

    @property
    def watt_hours_value(self) -> float:
        return self.joules / SECONDS_PER_HOUR

    @property
    def kilowatt_hours(self) -> float:
        return self.joules / JOULES_PER_KWH

    @property
    def gigawatt_hours(self) -> float:
        return self.kilowatt_hours / 1e6

    @property
    def terawatt_hours(self) -> float:
        return self.kilowatt_hours / 1e9

    def __add__(self, other: "Energy") -> "Energy":
        if not isinstance(other, Energy):
            return NotImplemented
        return Energy(self.joules + other.joules)

    def __sub__(self, other: "Energy") -> "Energy":
        if not isinstance(other, Energy):
            return NotImplemented
        return Energy(self.joules - other.joules)

    def __mul__(self, factor: object) -> "Energy":
        if isinstance(factor, (int, float)):
            return Energy(self.joules * float(factor))
        if isinstance(factor, CarbonIntensity):
            return NotImplemented  # handled by CarbonIntensity.__rmul__
        return NotImplemented

    def __rmul__(self, factor: object) -> "Energy":
        if isinstance(factor, (int, float)):
            return Energy(self.joules * float(factor))
        return NotImplemented

    def __truediv__(self, other: object):
        if isinstance(other, Energy):
            if other.joules == 0.0:
                raise UnitError("cannot divide by zero energy")
            return self.joules / other.joules
        if isinstance(other, (int, float)):
            if float(other) == 0.0:
                raise UnitError("cannot divide energy by zero")
            return Energy(self.joules / float(other))
        return NotImplemented

    def __neg__(self) -> "Energy":
        return Energy(-self.joules)

    def __lt__(self, other: "Energy") -> bool:
        if not isinstance(other, Energy):
            return NotImplemented
        return self.joules < other.joules

    def __le__(self, other: "Energy") -> bool:
        if not isinstance(other, Energy):
            return NotImplemented
        return self.joules <= other.joules

    def __repr__(self) -> str:
        if isinstance(self.joules, np.ndarray):
            return _array_repr("Energy", self.kilowatt_hours, "kWh")
        return f"Energy({self.kilowatt_hours:.6g} kWh)"


@dataclass(frozen=True, slots=True)
class Power:
    """A rate of energy use, stored internally in watts."""

    watts_value: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "watts_value", _require_finite(self.watts_value, "power")
        )

    @classmethod
    def watts(cls, value: float) -> "Power":
        return cls(value)

    @classmethod
    def milliwatts(cls, value: float) -> "Power":
        return cls(_require_finite(value, "milliwatts") / 1e3)

    @classmethod
    def kilowatts(cls, value: float) -> "Power":
        return cls(_require_finite(value, "kilowatts") * 1e3)

    @classmethod
    def megawatts(cls, value: float) -> "Power":
        return cls(_require_finite(value, "megawatts") * 1e6)

    @property
    def kilowatts_value(self) -> float:
        return self.watts_value / 1e3

    @property
    def megawatts_value(self) -> float:
        return self.watts_value / 1e6

    def energy_over(self, seconds: float) -> Energy:
        """Energy dissipated when held for ``seconds`` seconds."""
        return Energy(self.watts_value * _require_finite(seconds, "duration"))

    def __add__(self, other: "Power") -> "Power":
        if not isinstance(other, Power):
            return NotImplemented
        return Power(self.watts_value + other.watts_value)

    def __sub__(self, other: "Power") -> "Power":
        if not isinstance(other, Power):
            return NotImplemented
        return Power(self.watts_value - other.watts_value)

    def __mul__(self, factor: object):
        if isinstance(factor, (int, float)):
            return Power(self.watts_value * float(factor))
        return NotImplemented

    def __rmul__(self, factor: object):
        if isinstance(factor, (int, float)):
            return Power(self.watts_value * float(factor))
        return NotImplemented

    def __truediv__(self, other: object):
        if isinstance(other, Power):
            if other.watts_value == 0.0:
                raise UnitError("cannot divide by zero power")
            return self.watts_value / other.watts_value
        if isinstance(other, (int, float)):
            if float(other) == 0.0:
                raise UnitError("cannot divide power by zero")
            return Power(self.watts_value / float(other))
        return NotImplemented

    def __lt__(self, other: "Power") -> bool:
        if not isinstance(other, Power):
            return NotImplemented
        return self.watts_value < other.watts_value

    def __le__(self, other: "Power") -> bool:
        if not isinstance(other, Power):
            return NotImplemented
        return self.watts_value <= other.watts_value

    def __repr__(self) -> str:
        if isinstance(self.watts_value, np.ndarray):
            return _array_repr("Power", self.watts_value, "W")
        return f"Power({self.watts_value:.6g} W)"


@dataclass(frozen=True, slots=True)
class Carbon:
    """A mass of CO2-equivalent emissions, stored internally in grams."""

    grams: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "grams", _require_finite(self.grams, "carbon"))

    @classmethod
    def zero(cls) -> "Carbon":
        return cls(0.0)

    @classmethod
    def from_grams(cls, value: float) -> "Carbon":
        return cls(value)

    @classmethod
    def kg(cls, value: float) -> "Carbon":
        return cls(_require_finite(value, "kilograms CO2e") * GRAMS_PER_KG)

    @classmethod
    def tonnes(cls, value: float) -> "Carbon":
        return cls(_require_finite(value, "tonnes CO2e") * GRAMS_PER_TONNE)

    @classmethod
    def kilotonnes(cls, value: float) -> "Carbon":
        return cls.tonnes(_require_finite(value, "kilotonnes CO2e") * 1e3)

    @classmethod
    def megatonnes(cls, value: float) -> "Carbon":
        return cls.tonnes(_require_finite(value, "megatonnes CO2e") * 1e6)

    @property
    def kilograms(self) -> float:
        return self.grams / GRAMS_PER_KG

    @property
    def tonnes_value(self) -> float:
        return self.grams / GRAMS_PER_TONNE

    @property
    def kilotonnes_value(self) -> float:
        return self.tonnes_value / 1e3

    @property
    def megatonnes_value(self) -> float:
        return self.tonnes_value / 1e6

    def __add__(self, other: "Carbon") -> "Carbon":
        if not isinstance(other, Carbon):
            return NotImplemented
        return Carbon(self.grams + other.grams)

    def __sub__(self, other: "Carbon") -> "Carbon":
        if not isinstance(other, Carbon):
            return NotImplemented
        return Carbon(self.grams - other.grams)

    def __mul__(self, factor: object):
        if isinstance(factor, (int, float)):
            return Carbon(self.grams * float(factor))
        return NotImplemented

    def __rmul__(self, factor: object):
        if isinstance(factor, (int, float)):
            return Carbon(self.grams * float(factor))
        return NotImplemented

    def __truediv__(self, other: object):
        if isinstance(other, Carbon):
            if other.grams == 0.0:
                raise UnitError("cannot divide by zero carbon")
            return self.grams / other.grams
        if isinstance(other, (int, float)):
            if float(other) == 0.0:
                raise UnitError("cannot divide carbon by zero")
            return Carbon(self.grams / float(other))
        return NotImplemented

    def __neg__(self) -> "Carbon":
        return Carbon(-self.grams)

    def __lt__(self, other: "Carbon") -> bool:
        if not isinstance(other, Carbon):
            return NotImplemented
        return self.grams < other.grams

    def __le__(self, other: "Carbon") -> bool:
        if not isinstance(other, Carbon):
            return NotImplemented
        return self.grams <= other.grams

    def __repr__(self) -> str:
        if isinstance(self.grams, np.ndarray):
            return _array_repr("Carbon", self.grams, "g CO2e")
        if abs(self.grams) >= GRAMS_PER_TONNE:
            return f"Carbon({self.tonnes_value:.6g} t CO2e)"
        if abs(self.grams) >= GRAMS_PER_KG:
            return f"Carbon({self.kilograms:.6g} kg CO2e)"
        return f"Carbon({self.grams:.6g} g CO2e)"


@dataclass(frozen=True, slots=True)
class CarbonIntensity:
    """Mass of CO2e emitted per unit of energy produced.

    Stored in the industry-conventional grams-per-kilowatt-hour. A
    carbon intensity multiplied by an :class:`Energy` yields a
    :class:`Carbon` mass.
    """

    grams_per_kwh: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "grams_per_kwh",
            _require_non_negative(self.grams_per_kwh, "carbon intensity"),
        )

    @classmethod
    def g_per_kwh(cls, value: float) -> "CarbonIntensity":
        return cls(value)

    @classmethod
    def kg_per_mwh(cls, value: float) -> "CarbonIntensity":
        # 1 kg/MWh == 1 g/kWh.
        return cls(value)

    def carbon_for(self, energy: Energy) -> Carbon:
        """Carbon emitted when ``energy`` is drawn at this intensity."""
        return Carbon(self.grams_per_kwh * energy.kilowatt_hours)

    def __mul__(self, other: object):
        if isinstance(other, Energy):
            return self.carbon_for(other)
        if isinstance(other, (int, float)):
            return CarbonIntensity(self.grams_per_kwh * float(other))
        return NotImplemented

    def __rmul__(self, other: object):
        return self.__mul__(other)

    def __truediv__(self, other: object):
        if isinstance(other, CarbonIntensity):
            if other.grams_per_kwh == 0.0:
                raise UnitError("cannot divide by zero carbon intensity")
            return self.grams_per_kwh / other.grams_per_kwh
        if isinstance(other, (int, float)):
            if float(other) == 0.0:
                raise UnitError("cannot divide carbon intensity by zero")
            return CarbonIntensity(self.grams_per_kwh / float(other))
        return NotImplemented

    def __lt__(self, other: "CarbonIntensity") -> bool:
        if not isinstance(other, CarbonIntensity):
            return NotImplemented
        return self.grams_per_kwh < other.grams_per_kwh

    def __le__(self, other: "CarbonIntensity") -> bool:
        if not isinstance(other, CarbonIntensity):
            return NotImplemented
        return self.grams_per_kwh <= other.grams_per_kwh

    def __repr__(self) -> str:
        if isinstance(self.grams_per_kwh, np.ndarray):
            return _array_repr("CarbonIntensity", self.grams_per_kwh, "g/kWh")
        return f"CarbonIntensity({self.grams_per_kwh:.6g} g/kWh)"
