"""repro — a reproduction of "Chasing Carbon" (HPCA 2021).

A carbon-accounting library for computing systems: GHG-Protocol
organizational inventories, product life-cycle assessment, bottom-up
embodied carbon, mobile-inference energy simulation, fab wafer models,
data-center fleet simulation with renewable procurement, and the full
set of experiment drivers regenerating every figure and table in the
paper's evaluation.

Quickstart::

    from repro import pixel3, run_experiment

    phone = pixel3()
    print(phone.break_even_days("mobilenet_v3", "cpu"))   # ~350
    print(run_experiment("fig10").render())
"""

from .units import (
    Energy,
    Power,
    Carbon,
    CarbonIntensity,
    hours,
    days,
    years,
)
from .tabular import Table
from .errors import (
    ReproError,
    UnitError,
    DataValidationError,
    TableError,
    CalibrationError,
    AccountingError,
    SimulationError,
    ExperimentError,
)
from .core import (
    EnergySource,
    GridRegion,
    GridMix,
    market_based_intensity,
    Scope,
    OpexCapex,
    GHGInventory,
    ReportSeries,
    LifeCycleStage,
    DeviceClass,
    PowerClass,
    ProductLCA,
    use_phase_carbon,
    EmbodiedModel,
    BillOfMaterials,
    AmortizationSchedule,
    break_even_units,
    break_even_days,
    ParetoPoint,
    pareto_frontier,
    frontier_shift,
)
from .mobile import (
    InferenceSimulator,
    MonsoonSimulator,
    MobilePhone,
    pixel3,
    SNAPDRAGON_845,
)
from .datacenter import (
    ServerConfig,
    Facility,
    RenewablePortfolio,
    PPAContract,
    FleetParameters,
    simulate_fleet,
    DiurnalGridModel,
    BatchJob,
    schedule_carbon_agnostic,
    schedule_carbon_aware,
)
from .fab import (
    ProcessNode,
    NODE_ROADMAP,
    node_by_name,
    WaferFootprintModel,
    AbatementPolicy,
    FabModel,
)
from .vendor import ProductLine, VendorModel
from .traces import (
    IntensityTrace,
    WorkloadTrace,
    SchedulingPolicy,
    evaluate_policies,
    profile_catalog,
)
from .experiments import (
    Check,
    ExperimentResult,
    EXPERIMENT_IDS,
    run_experiment,
    run_all,
)
from .uncertainty import (
    UncertainResult,
    sweep_fleet_uncertain,
)
from .portfolio import (
    DeviceSpec,
    default_catalog,
    simulate_device,
    simulate_device_batch,
    sweep_portfolio,
    sweep_portfolio_uncertain,
)
from .obs import TraceRecorder, install_recorder
from ._version import __version__

__all__ = [
    "Energy",
    "Power",
    "Carbon",
    "CarbonIntensity",
    "hours",
    "days",
    "years",
    "Table",
    "ReproError",
    "UnitError",
    "DataValidationError",
    "TableError",
    "CalibrationError",
    "AccountingError",
    "SimulationError",
    "ExperimentError",
    "EnergySource",
    "GridRegion",
    "GridMix",
    "market_based_intensity",
    "Scope",
    "OpexCapex",
    "GHGInventory",
    "ReportSeries",
    "LifeCycleStage",
    "DeviceClass",
    "PowerClass",
    "ProductLCA",
    "use_phase_carbon",
    "EmbodiedModel",
    "BillOfMaterials",
    "AmortizationSchedule",
    "break_even_units",
    "break_even_days",
    "ParetoPoint",
    "pareto_frontier",
    "frontier_shift",
    "InferenceSimulator",
    "MonsoonSimulator",
    "MobilePhone",
    "pixel3",
    "SNAPDRAGON_845",
    "ServerConfig",
    "Facility",
    "RenewablePortfolio",
    "PPAContract",
    "FleetParameters",
    "simulate_fleet",
    "DiurnalGridModel",
    "BatchJob",
    "schedule_carbon_agnostic",
    "schedule_carbon_aware",
    "IntensityTrace",
    "WorkloadTrace",
    "SchedulingPolicy",
    "evaluate_policies",
    "profile_catalog",
    "ProcessNode",
    "NODE_ROADMAP",
    "node_by_name",
    "WaferFootprintModel",
    "AbatementPolicy",
    "FabModel",
    "ProductLine",
    "VendorModel",
    "Check",
    "ExperimentResult",
    "EXPERIMENT_IDS",
    "run_experiment",
    "run_all",
    "UncertainResult",
    "sweep_fleet_uncertain",
    "DeviceSpec",
    "default_catalog",
    "simulate_device",
    "simulate_device_batch",
    "sweep_portfolio",
    "sweep_portfolio_uncertain",
    "TraceRecorder",
    "install_recorder",
    "__version__",
]
