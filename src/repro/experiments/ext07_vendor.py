"""Extension: the Figure 5 breakdown, generated bottom-up.

Builds an Apple-like vendor from its product lines (phones, tablets,
watches, laptops, desktops at plausible relative volumes) and checks
that the *emergent* corporate breakdown lands on the paper's Figure 5
shape: hardware life cycle >98% of the total, manufacturing around
74%, product use around 19%, and manufacturing far above use.
"""

from __future__ import annotations

from ..data.devices import device_by_name
from ..units import Carbon
from ..vendor import ProductLine, VendorModel
from .result import Check, ExperimentResult

__all__ = ["run", "apple_like_vendor"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Vendor footprint generated bottom-up from product lines"

#: Product mix (units per year, millions) loosely shaped on Apple's
#: 2019 shipment ratios: phones dominate, then tablets/watches/Macs.
_PRODUCT_MIX: tuple[tuple[str, float], ...] = (
    ("iphone_11", 110e6),
    ("iphone_11_pro", 45e6),
    ("iphone_xr", 30e6),
    ("ipad_gen7", 40e6),
    ("ipad_air", 10e6),
    ("watch_series_5", 28e6),
    ("macbook_air_13", 9e6),
    ("macbook_pro_16", 6e6),
    ("imac_21", 3e6),
)


def apple_like_vendor() -> VendorModel:
    """Assemble the Apple-shaped vendor used by this experiment."""
    return VendorModel(
        name="apple_like",
        lines=[
            ProductLine(device_by_name(product), units)
            for product, units in _PRODUCT_MIX
        ],
        corporate_facilities=Carbon.megatonnes(0.3),
        business_travel=Carbon.megatonnes(0.1),
    )


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    vendor = apple_like_vendor()
    breakdown = vendor.breakdown_table()
    inventory = vendor.inventory(2019)

    def fraction(group: str) -> float:
        return breakdown.where("group", "==", group).row(0)["fraction"]

    manufacturing = fraction("manufacturing")
    use = fraction("product_use")

    checks = [
        Check("manufacturing_share_emerges_near_74pct", 0.74, manufacturing,
              rel_tolerance=0.08),
        Check("use_share_emerges_near_19pct", 0.19, use, rel_tolerance=0.25),
        Check.boolean("lifecycle_over_98pct", vendor.lifecycle_fraction() >= 0.98),
        Check.boolean("manufacturing_exceeds_use", manufacturing > use),
        Check.boolean(
            "total_in_apple_regime",
            10.0 <= vendor.total().megatonnes_value <= 40.0,
        ),
        Check.boolean(
            "scope3_dominates_filing",
            inventory.scope3_total().grams
            > 20.0
            * inventory.scope_total(type(inventory.entries[0].scope).SCOPE2_MARKET).grams,
        ),
    ]
    return ExperimentResult(
        experiment_id="ext07",
        title=TITLE,
        tables={"breakdown": breakdown},
        checks=checks,
        notes=[
            "The 74/19 split is not encoded anywhere in this experiment —"
            " it emerges from the device LCA corpus and a plausible product"
            " mix, which is the validation of the curated data.",
        ],
    )
