"""Experiment drivers: one module per paper figure/table.

Every driver exposes ``run() -> ExperimentResult`` returning the
tables behind the paper artifact plus a list of :class:`Check` records
comparing paper-reported anchors against what this repository
computes. ``registry.run_all()`` executes the full evaluation.
"""

from .result import Check, ExperimentResult
from .registry import (
    EXPERIMENT_IDS,
    clear_result_cache,
    experiment_title,
    experiment_titles,
    get_experiment,
    run_experiment,
    run_all,
)

__all__ = [
    "Check",
    "ExperimentResult",
    "EXPERIMENT_IDS",
    "get_experiment",
    "experiment_title",
    "experiment_titles",
    "clear_result_cache",
    "run_experiment",
    "run_all",
]
