"""Figure 5: Apple's 2019 corporate carbon-emission breakdown.

Paper claims reproduced: hardware life cycle >98% of total emissions;
manufacturing 74%; product use 19%; integrated circuits ~33% of the
total — more than all product use combined.
"""

from __future__ import annotations

from ..data.corporate import APPLE_2019_BREAKDOWN, APPLE_2019_TOTAL
from ..report.charts import bar_chart
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Apple 2019 carbon-emission breakdown"

_LIFECYCLE_GROUPS = (
    "manufacturing",
    "product_use",
    "product_transport",
    "recycling",
)


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    categories = Table.from_records(
        [
            {
                "group": share.group,
                "category": share.category,
                "fraction": share.fraction,
                "megatonnes": APPLE_2019_TOTAL.megatonnes_value * share.fraction,
            }
            for share in APPLE_2019_BREAKDOWN
        ]
    )
    groups = categories.aggregate(
        by=["group"], fraction=("fraction", sum), megatonnes=("megatonnes", sum)
    ).sort_by("fraction", reverse=True)

    def group_fraction(name: str) -> float:
        return groups.where("group", "==", name).row(0)["fraction"]

    ic_fraction = categories.where(
        "category", "==", "integrated_circuits"
    ).row(0)["fraction"]
    use_fraction = group_fraction("product_use")
    lifecycle = sum(group_fraction(name) for name in _LIFECYCLE_GROUPS)

    checks = [
        Check("total_megatonnes", 25.0, APPLE_2019_TOTAL.megatonnes_value,
              rel_tolerance=0.0),
        Check("manufacturing_share", 0.74, group_fraction("manufacturing"),
              rel_tolerance=0.02),
        Check("product_use_share", 0.19, use_fraction, rel_tolerance=0.02),
        Check("integrated_circuits_share", 0.33, ic_fraction, rel_tolerance=0.02),
        Check.boolean("lifecycle_over_98_percent", lifecycle >= 0.98),
        Check.boolean("ic_exceeds_product_use", ic_fraction > use_fraction),
    ]
    chart = bar_chart(
        groups.column("group"), groups.column("fraction"), value_format="{:.3f}"
    )
    return ExperimentResult(
        experiment_id="fig05",
        title=TITLE,
        tables={"categories": categories, "groups": groups},
        checks=checks,
        charts={"group_shares": chart},
    )
