"""Figure 13: Intel/AMD life cycles under increasingly green energy.

Paper claims reproduced: on the US-grid baseline roughly 60% of Intel's
reported life-cycle emissions (45% of AMD's) come from hardware use;
rescaling only the use phase by each source's carbon intensity shows
that under solar or wind power, over 80% of the remaining footprint is
manufacturing-side (non-use).
"""

from __future__ import annotations

from ..analysis.breakdown import lifecycle_grid_sweep
from ..analysis.trends import is_monotonic
from ..core.intensity import EnergySource
from ..data.corporate import AMD_BREAKDOWN, INTEL_BREAKDOWN
from ..data.energy_sources import source_by_name
from ..data.grids import US_GRID, WORLD_GRID
from ..report.charts import bar_chart
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Intel and AMD life-cycle breakdown vs energy source"


def _sweep_sources() -> list[EnergySource]:
    """The figure's x-axis, dirty to clean."""
    world_avg = EnergySource(
        name="world_average", intensity=WORLD_GRID.intensity
    )
    us_avg = EnergySource(
        name="america_average", intensity=US_GRID.intensity
    )
    return [
        world_avg,
        source_by_name("coal"),
        source_by_name("gas"),
        us_avg,
        source_by_name("biomass"),
        source_by_name("solar"),
        source_by_name("geothermal"),
        source_by_name("hydropower"),
        source_by_name("nuclear"),
        source_by_name("wind"),
    ]


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    sources = _sweep_sources()
    intel = lifecycle_grid_sweep(INTEL_BREAKDOWN, sources)
    amd = lifecycle_grid_sweep(AMD_BREAKDOWN, sources)

    def row(table, source: str) -> dict:
        return table.where("source", "==", source).row(0)

    checks = [
        Check("intel_baseline_use_share", 0.60,
              row(intel, "america_average")["use_share"], rel_tolerance=0.01),
        Check("amd_baseline_use_share", 0.45,
              row(amd, "america_average")["use_share"], rel_tolerance=0.01),
        Check.boolean(
            "intel_solar_manufacturing_over_80pct",
            row(intel, "solar")["non_use_share"] > 0.80,
        ),
        Check.boolean(
            "intel_wind_manufacturing_over_80pct",
            row(intel, "wind")["non_use_share"] > 0.80,
        ),
        Check.boolean(
            "amd_solar_manufacturing_over_80pct",
            row(amd, "solar")["non_use_share"] > 0.80,
        ),
        Check.boolean(
            "amd_wind_manufacturing_over_80pct",
            row(amd, "wind")["non_use_share"] > 0.80,
        ),
        Check.boolean(
            # Order the sweep dirty-to-clean and require the life-cycle
            # total to never rise (the previous formulation compared a
            # sorted list against itself, which is vacuously true).
            "totals_fall_monotonically_with_cleaner_energy",
            is_monotonic(
                intel.sort_by("intensity_g_per_kwh", reverse=True)
                .column("total"),
                increasing=False,
            ),
        ),
    ]
    chart = bar_chart(
        intel.column("source"), intel.column("use_share"), value_format="{:.2f}"
    )
    return ExperimentResult(
        experiment_id="fig13",
        title=TITLE,
        tables={"intel": intel, "amd": amd},
        checks=checks,
        charts={"intel_use_share": chart},
        notes=[
            "Use-phase emissions scale with the source's Table II intensity"
            " relative to the US-grid baseline; all other categories fixed.",
        ],
    )
