"""Figure 6: life-cycle split and absolute footprint across devices.

Paper claims reproduced (for products released 2017 or later, matching
the paper's corpus): manufacturing is ~75% of the life cycle for
battery-powered devices and their energy use ~20%; always-connected
devices are use-dominated, but manufacturing is still ~40% for smart
speakers and ~50% for desktops; absolute footprints scale with
platform (a MacBook is ~3x an iPhone; always-connected devices carry
larger totals than battery devices).
"""

from __future__ import annotations

import statistics

from ..analysis.breakdown import device_class_breakdown, power_class_breakdown
from ..core.lca import DeviceClass
from ..data.devices import DEVICE_LCAS
from ..report.charts import bar_chart
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Carbon breakdown across personal-computing platforms"

_MIN_YEAR = 2017


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    per_class = device_class_breakdown(DEVICE_LCAS, min_year=_MIN_YEAR)
    per_power = power_class_breakdown(DEVICE_LCAS, min_year=_MIN_YEAR)

    def power_row(name: str) -> dict:
        return per_power.where("power_class", "==", name).row(0)

    def class_row(name: str) -> dict:
        return per_class.where("device_class", "==", name).row(0)

    battery = power_row("battery_powered")
    connected = power_row("always_connected")

    recent = [lca for lca in DEVICE_LCAS if lca.year >= _MIN_YEAR]
    macbook_mean = statistics.fmean(
        lca.total.kilograms
        for lca in recent
        if lca.device_class is DeviceClass.LAPTOP and lca.vendor == "apple"
    )
    iphone_mean = statistics.fmean(
        lca.total.kilograms
        for lca in recent
        if lca.device_class is DeviceClass.PHONE and lca.vendor == "apple"
    )

    checks = [
        Check("battery_manufacturing_share", 0.75,
              battery["manufacturing_mean"], rel_tolerance=0.07),
        Check("battery_use_share", 0.20, battery["use_mean"], rel_tolerance=0.15),
        Check("speaker_manufacturing_share", 0.40,
              class_row("speaker")["manufacturing_mean"], rel_tolerance=0.10),
        Check("desktop_manufacturing_share", 0.50,
              class_row("desktop")["manufacturing_mean"], rel_tolerance=0.10),
        Check("macbook_to_iphone_total_ratio", 3.0,
              macbook_mean / iphone_mean, rel_tolerance=0.30),
        Check.boolean(
            "always_connected_totals_exceed_battery",
            connected["total_kg_mean"] > battery["total_kg_mean"],
        ),
        Check.boolean(
            "connected_use_dominated",
            connected["use_mean"] > connected["manufacturing_mean"],
        ),
    ]
    chart = bar_chart(
        per_class.column("device_class"),
        per_class.column("manufacturing_mean"),
        value_format="{:.2f}",
    )
    return ExperimentResult(
        experiment_id="fig06",
        title=TITLE,
        tables={"per_device_class": per_class, "per_power_class": per_power},
        checks=checks,
        charts={"manufacturing_share_by_class": chart},
        notes=[f"Corpus restricted to products released in {_MIN_YEAR}+, as in the paper."],
    )
