"""Figure 12: Facebook's 2019 Scope 3 category breakdown.

Paper claims reproduced: capital goods account for 48% of the 2019
Scope 3 total, purchased goods 39%, travel 10%, and other 3% — i.e.
capex-flavored supply-chain categories carry ~87%.
"""

from __future__ import annotations

from ..core.ghg import Scope
from ..data.corporate import FACEBOOK_SCOPE3_2019, facebook_series
from ..report.charts import bar_chart
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Facebook 2019 Scope 3 breakdown"


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    inventory = facebook_series().inventory(2019)
    breakdown = inventory.category_breakdown(scope=Scope.SCOPE3_UPSTREAM)

    def share(category: str) -> float:
        return breakdown.where("category", "==", category).row(0)[
            "share"
        ]

    checks = [
        Check("capital_goods_share", FACEBOOK_SCOPE3_2019["capital_goods"],
              share("capital_goods"), rel_tolerance=0.0),
        Check("purchased_goods_share", FACEBOOK_SCOPE3_2019["purchased_goods"],
              share("purchased_goods"), rel_tolerance=0.0),
        Check("business_travel_share", FACEBOOK_SCOPE3_2019["business_travel"],
              share("business_travel"), rel_tolerance=0.0),
        Check("other_share", FACEBOOK_SCOPE3_2019["other"], share("other"),
              rel_tolerance=0.0),
        Check.boolean(
            "goods_dominates_scope3",
            share("capital_goods") + share("purchased_goods") >= 0.85,
        ),
    ]
    chart = bar_chart(
        breakdown.column("category"), breakdown.column("share"),
        value_format="{:.2f}",
    )
    return ExperimentResult(
        experiment_id="fig12",
        title=TITLE,
        tables={"scope3_categories": breakdown},
        checks=checks,
        charts={"category_shares": chart},
    )
