"""Figure 8: performance vs manufacturing-carbon Pareto frontier.

Paper claims reproduced: the 2019 frontier contains the stated anchor
devices (iPhone 11 Pro at 75 img/s and 66 kg, Pixel 3a at 20 img/s and
45 kg); the iPhone 11 doubles the iPhone X's throughput at slightly
lower manufacturing carbon; and between 2017 and 2019 the frontier
moved right (performance up >2x) rather than down (minimum carbon
essentially unchanged).
"""

from __future__ import annotations

from ..core.pareto import ParetoPoint, frontier_shift, pareto_frontier
from ..data.ai_benchmarks import AI_BENCHMARK_POINTS
from ..report.charts import scatter_chart
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "MobileNet v1 throughput vs manufacturing-carbon Pareto frontier"


def _points(max_year: int) -> list[ParetoPoint]:
    return [
        ParetoPoint(
            label=point.product,
            performance=point.throughput_ips,
            cost=point.manufacturing_kg,
        )
        for point in AI_BENCHMARK_POINTS
        if point.year <= max_year
    ]


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    frontier_2017 = pareto_frontier(_points(2017))
    frontier_2019 = pareto_frontier(_points(2019))
    shift = frontier_shift(frontier_2017, frontier_2019)

    scatter = Table.from_records(
        [
            {
                "product": point.product,
                "vendor": point.vendor,
                "year": point.year,
                "throughput_ips": point.throughput_ips,
                "manufacturing_kg": point.manufacturing_kg,
            }
            for point in AI_BENCHMARK_POINTS
        ]
    )
    frontier_table = Table.from_records(
        [
            {"frontier": "2017", "product": p.label,
             "throughput_ips": p.performance, "manufacturing_kg": p.cost}
            for p in frontier_2017
        ]
        + [
            {"frontier": "2019", "product": p.label,
             "throughput_ips": p.performance, "manufacturing_kg": p.cost}
            for p in frontier_2019
        ]
    )

    labels_2019 = {point.label for point in frontier_2019}
    by_name = {point.product: point for point in AI_BENCHMARK_POINTS}
    iphone_11 = by_name["iphone_11"]
    iphone_x = by_name["iphone_x"]

    checks = [
        Check("iphone_11_pro_throughput", 75.0,
              by_name["iphone_11_pro"].throughput_ips, rel_tolerance=0.0),
        Check("iphone_11_pro_manufacturing_kg", 66.0,
              by_name["iphone_11_pro"].manufacturing_kg, rel_tolerance=0.0),
        Check("pixel_3a_throughput", 20.0,
              by_name["pixel_3a"].throughput_ips, rel_tolerance=0.0),
        Check("pixel_3a_manufacturing_kg", 45.0,
              by_name["pixel_3a"].manufacturing_kg, rel_tolerance=0.0),
        Check("iphone_x_throughput", 35.0, iphone_x.throughput_ips,
              rel_tolerance=0.0),
        Check("iphone_11_doubles_iphone_x_throughput", 2.0,
              iphone_11.throughput_ips / iphone_x.throughput_ips,
              rel_tolerance=0.05),
        Check.boolean(
            "iphone_11_cheaper_carbon_than_x",
            iphone_11.manufacturing_kg < iphone_x.manufacturing_kg,
        ),
        Check.boolean(
            "anchors_on_2019_frontier",
            {"iphone_11_pro", "pixel_3a", "iphone_11"} <= labels_2019,
        ),
        Check.boolean("frontier_moved_right", shift["performance_gain"] >= 2.0),
        Check.boolean("frontier_not_moved_down", shift["cost_reduction"] <= 1.2),
    ]
    chart = scatter_chart(
        [
            (point.manufacturing_kg, point.throughput_ips, point.vendor[0].upper())
            for point in AI_BENCHMARK_POINTS
        ]
    )
    return ExperimentResult(
        experiment_id="fig08",
        title=TITLE,
        tables={"devices": scatter, "frontiers": frontier_table},
        checks=checks,
        charts={"throughput_vs_carbon": chart},
        notes=[
            f"frontier shift: performance x{shift['performance_gain']:.2f},"
            f" min-carbon x{shift['cost_reduction']:.2f}",
        ],
    )
