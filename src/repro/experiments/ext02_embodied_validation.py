"""Extension: validate the bottom-up embodied model against LCAs.

The ACT-style model in :mod:`repro.core.embodied` estimates a phone's
integrated-circuit carbon from die area, node, and memory capacity.
This experiment compares those bottom-up estimates against the
IC share implied by the reported device LCAs — the model must land in
the right order of magnitude (within ~2x) for the devices we can
parameterize.
"""

from __future__ import annotations

from ..core.embodied import BillOfMaterials, EmbodiedModel
from ..data.devices import device_by_name
from ..data.socs import SoCRecord, soc_by_product
from ..fab.process import node_by_name
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Bottom-up embodied model vs reported LCAs"

#: Phones with public die/memory specs (see repro.data.socs).
_PHONE_SPECS = ("pixel_3", "iphone_11", "iphone_x")


def _bill_for(record: SoCRecord) -> BillOfMaterials:
    node = node_by_name(record.node_name)
    legacy = node_by_name("28nm")
    return BillOfMaterials(
        name=record.product,
        logic_dies={
            "soc": (record.die_area_mm2, node),
            "companion_ics": (record.companion_die_area_mm2, node),
            "legacy_analog": (record.legacy_die_area_mm2, legacy),
        },
        dram_gb=record.dram_gb,
        nand_gb=record.nand_gb,
    )


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    model = EmbodiedModel()
    records = []
    ratios = []
    for product in _PHONE_SPECS:
        lca = device_by_name(product)
        bottom_up = model.total(_bill_for(soc_by_product(product)))
        if "integrated_circuits" in lca.component_fractions:
            reported = lca.component_carbon("integrated_circuits")
        else:
            reported = lca.production_carbon * 0.5
        ratio = bottom_up.kilograms / reported.kilograms
        ratios.append(ratio)
        records.append(
            {
                "product": product,
                "bottom_up_kg": bottom_up.kilograms,
                "reported_ic_kg": reported.kilograms,
                "ratio": ratio,
            }
        )
    table = Table.from_records(records)
    checks = [
        Check.boolean(
            "bottom_up_within_3x_of_reported",
            all(1.0 / 3.0 <= ratio <= 1.5 for ratio in ratios),
        ),
        Check.boolean(
            # The model covers the SoC, companion dies, DRAM, and NAND;
            # the vendor category also includes analog, RF, and
            # passives, so the bottom-up figure must come in below.
            "bottom_up_below_reported_everywhere",
            all(ratio <= 1.0 for ratio in ratios),
        ),
        Check.boolean(
            "bottom_up_orders_devices_consistently",
            (records[1]["bottom_up_kg"] > records[0]["bottom_up_kg"])
            == (records[1]["reported_ic_kg"] > records[0]["reported_ic_kg"])
            or abs(records[1]["reported_ic_kg"] - records[0]["reported_ic_kg"])
            < 2.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="ext02",
        title=TITLE,
        tables={"validation": table},
        checks=checks,
        notes=[
            "The bottom-up model covers SoC, companion dies, DRAM, and NAND;"
            " vendor 'integrated circuits' categories also include analog and"
            " passives, so landing below reported but within 3x is the"
            " expected regime.",
        ],
    )
