"""Table IV: Mac Pro configurations — capability vs embodied carbon.

Paper claims reproduced: the high-performance configuration offers ~4x
the GPU flops, 8x the GPU memory bandwidth, and far more memory and
storage at a ~2.7x higher manufacturing footprint. A bottom-up
cross-check with the embodied model must land the same ratio regime.
"""

from __future__ import annotations

from ..core.embodied import BillOfMaterials, EmbodiedModel
from ..data.macpro import MAC_PRO_CONFIGS
from ..fab.process import node_by_name
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Mac Pro configurations: capability vs manufacturing carbon"


def _bottom_up() -> tuple[float, float]:
    """Embodied-model estimates (kg) for both configurations."""
    model = EmbodiedModel()
    cpu_node = node_by_name("16nm")
    gpu_node = node_by_name("7nm")
    base = BillOfMaterials(
        name="mac_pro_1",
        logic_dies={"cpu": (350.0, cpu_node), "gpu": (331.0, gpu_node)},
        dram_gb=32.0,
        nand_gb=256.0,
        # The Mac Pro tower is a large machined-aluminum system; the
        # chassis/board masses dominate the base configuration.
        fixed_kg={"chassis_and_board": 310.0, "psu_and_misc": 80.0,
                  "assembly": 50.0},
    )
    maxed = BillOfMaterials(
        name="mac_pro_2",
        logic_dies={
            "cpu": (698.0, cpu_node),
            "gpu_0": (331.0, gpu_node),
            "gpu_1": (331.0, gpu_node),
            "gpu_2": (331.0, gpu_node),
            "gpu_3": (331.0, gpu_node),
        },
        dram_gb=1536.0,
        nand_gb=4096.0,
        fixed_kg={"chassis_and_board": 330.0, "psu_and_misc": 100.0,
                  "assembly": 60.0},
    )
    return model.total(base).kilograms, model.total(maxed).kilograms


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    base, maxed = MAC_PRO_CONFIGS
    table = Table.from_records(
        [
            {
                "config": config.name,
                "cpu_cores": config.cpu_cores,
                "dram_gb": config.dram_gb,
                "storage_gb": config.storage_gb,
                "gpu_teraflops": config.gpu_teraflops,
                "gpu_bw_gbs": config.gpu_memory_bw_gbs,
                "tdp_w": config.system_tdp.watts_value,
                "manufacturing_kg": config.manufacturing.kilograms,
            }
            for config in MAC_PRO_CONFIGS
        ]
    )
    bottom_up_base, bottom_up_maxed = _bottom_up()
    reported_ratio = maxed.manufacturing / base.manufacturing
    bottom_up_ratio = bottom_up_maxed / bottom_up_base

    checks = [
        Check("base_manufacturing_kg", 700.0, base.manufacturing.kilograms,
              rel_tolerance=0.0),
        Check("maxed_manufacturing_kg", 1900.0, maxed.manufacturing.kilograms,
              rel_tolerance=0.0),
        Check("manufacturing_ratio", 2.7, reported_ratio, rel_tolerance=0.02),
        Check("gpu_flops_ratio", 4.0,
              maxed.gpu_teraflops / base.gpu_teraflops, rel_tolerance=0.20),
        Check("gpu_bandwidth_ratio", 8.0,
              maxed.gpu_memory_bw_gbs / base.gpu_memory_bw_gbs,
              rel_tolerance=0.0),
        Check("bottom_up_ratio_matches_reported", reported_ratio,
              bottom_up_ratio, rel_tolerance=0.35),
    ]
    bottom_up_table = Table.from_records(
        [
            {"config": "mac_pro_1", "bottom_up_kg": bottom_up_base,
             "reported_kg": base.manufacturing.kilograms},
            {"config": "mac_pro_2", "bottom_up_kg": bottom_up_maxed,
             "reported_kg": maxed.manufacturing.kilograms},
        ]
    )
    return ExperimentResult(
        experiment_id="tab04",
        title=TITLE,
        tables={"reported": table, "bottom_up": bottom_up_table},
        checks=checks,
        notes=[
            "Bottom-up estimates use the ACT-style embodied model with the"
            " public die sizes (Xeon W ~350/698 mm2, Vega 20 ~331 mm2).",
        ],
    )
