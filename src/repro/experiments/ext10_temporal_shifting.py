"""Extension: temporal shifting across intensity-trace families.

ext01 proves carbon-aware scheduling works on one stylized duck curve.
This experiment runs the question at catalog scale: every Table III
region's duck-curve family (deterministic, noisy, renewable-ramp)
crossed with two canonical workload streams and the full policy
spectrum — carbon-agnostic, unboundedly carbon-aware, and
slack-bounded deferral — through the batched evaluator in
:mod:`repro.traces`, with a scalar-scheduler spot check pinning the
batched kernel to the reference implementation.
"""

from __future__ import annotations

import numpy as np

from ..report.charts import line_chart
from ..tabular import Table, col
from ..traces import (
    DEFAULT_POLICIES,
    diurnal_workload,
    evaluate_policies,
    evaluate_policies_scalar,
    profile_catalog,
    training_workload,
)
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Temporal shifting: scheduling policies across trace families"

_HOURS = 72
_CAPACITY_KW = 2500.0
_SLACK_POLICY = DEFAULT_POLICIES[2]


def _workloads():
    return [
        diurnal_workload(days=2),
        training_workload(num_jobs=8, horizon_hours=48),
    ]


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    catalog = profile_catalog(_HOURS)
    workloads = _workloads()
    results = evaluate_policies(catalog, workloads, capacity_kw=_CAPACITY_KW)

    by_policy = results.aggregate(
        by=["policy"],
        mean_savings=("savings_fraction", lambda v: float(np.mean(v))),
        mean_deferral_h=("mean_deferral_hours", lambda v: float(np.mean(v))),
        max_deferral_h=("max_deferral_hours", max),
        scenarios=("trace", len),
    )

    aware = results.where(col("policy") == "aware")
    slack = results.where(col("policy") == _SLACK_POLICY.name)
    aware_savings = np.asarray(aware.column("savings_fraction"), dtype=float)
    slack_savings = np.asarray(slack.column("savings_fraction"), dtype=float)
    slack_max_deferral = np.asarray(
        slack.column("max_deferral_hours"), dtype=float
    )

    # Pin the batched evaluator to the scalar reference on a subset
    # (full-catalog equivalence lives in the dedicated test suite).
    subset = dict(list(catalog.items())[:3])
    batched = evaluate_policies(subset, workloads, capacity_kw=_CAPACITY_KW)
    scalar = evaluate_policies_scalar(subset, workloads, capacity_kw=_CAPACITY_KW)
    matches = all(
        batched.column(name) == scalar.column(name)
        for name in batched.column_names
    )

    checks = [
        Check.boolean("aware_never_worse", bool(np.all(aware_savings >= -1e-9))),
        Check.boolean("savings_material", float(np.max(aware_savings)) >= 0.10),
        Check.boolean(
            "slack_bounds_deferral",
            bool(np.all(slack_max_deferral <= _SLACK_POLICY.slack_hours + 1e-9)),
        ),
        Check.boolean(
            "bounded_slack_cannot_beat_unbounded_on_average",
            float(np.mean(slack_savings)) <= float(np.mean(aware_savings)) + 1e-9,
        ),
        Check.boolean("batched_matches_scalar_reference", matches),
    ]

    dirty = catalog["india"]
    clean = catalog["iceland"]
    chart = line_chart(
        [float(hour) for hour in range(_HOURS)],
        {
            "india_g_per_kwh": list(dirty.values),
            "iceland_g_per_kwh": list(clean.values),
        },
    )
    mean_aware = float(np.mean(aware_savings))
    return ExperimentResult(
        experiment_id="ext10",
        title=TITLE,
        tables={"by_policy": by_policy, "scenarios": results},
        checks=checks,
        charts={"trace_families": chart},
        notes=[
            f"{results.num_rows} scenarios: {len(catalog)} traces x "
            f"{len(workloads)} workloads x {len(DEFAULT_POLICIES)} policies",
            f"mean carbon savings of unbounded carbon-aware: {mean_aware:.1%}",
        ],
    )
