"""Extension: temporal shifting across intensity-trace families.

ext01 proves carbon-aware scheduling works on one stylized duck curve.
This experiment runs the question at catalog scale: every Table III
region's duck-curve family (deterministic, noisy, renewable-ramp)
crossed with two canonical workload streams and the full policy
spectrum — carbon-agnostic, unboundedly carbon-aware, and
slack-bounded deferral — through the batched evaluator in
:mod:`repro.traces`, with a scalar-scheduler spot check pinning the
batched kernel to the reference implementation.
"""

from __future__ import annotations

import numpy as np

from ..report.charts import line_chart
from ..tabular import Table, col
from ..traces import (
    DEFAULT_POLICIES,
    canonical_workloads,
    evaluate_policies,
    evaluate_policies_scalar,
    profile_catalog,
)
from ..analysis.uncertainty import UncertaintyResult
from ..uncertainty import sweep_temporal_shifting_uncertain
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Temporal shifting: scheduling policies across trace families"

_HOURS = 72
_CAPACITY_KW = 2500.0
_SLACK_POLICY = DEFAULT_POLICIES[2]
_NOISE_DRAWS = 6


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    catalog = profile_catalog(_HOURS)
    workloads = canonical_workloads()
    results = evaluate_policies(catalog, workloads, capacity_kw=_CAPACITY_KW)

    by_policy = results.aggregate(
        by=["policy"],
        mean_savings=("savings_fraction", lambda v: float(np.mean(v))),
        mean_deferral_h=("mean_deferral_hours", lambda v: float(np.mean(v))),
        max_deferral_h=("max_deferral_hours", max),
        scenarios=("trace", len),
    )

    # Uncertainty view: the trace itself is the elusive input. Sample
    # weather/demand noise draws per region through the batched
    # evaluator and attach per-policy savings CI columns.
    uncertain = sweep_temporal_shifting_uncertain(
        _HOURS, capacity_kw=_CAPACITY_KW, draws=_NOISE_DRAWS, seed=0
    )
    noise_samples = uncertain.samples_for("savings_fraction")
    noise_p05, _, _ = uncertain.band("savings_fraction")
    policy_axis = uncertain.axes.column("policy")
    worst_aware_p05 = min(
        float(value)
        for value, name in zip(noise_p05, policy_axis)
        if name == "aware"
    )
    ordered_policies = list(by_policy.column("policy"))
    pooled = {
        policy: UncertaintyResult(
            noise_samples[
                [
                    index
                    for index, name in enumerate(policy_axis)
                    if name == policy
                ]
            ].ravel()
        )
        for policy in ordered_policies
    }
    by_policy = Table(
        {
            **{
                name: by_policy.column(name)
                for name in by_policy.column_names
            },
            # Pooled quantiles of each policy's savings distribution
            # over every region x workload x noise draw.
            "savings_p05": [
                pooled[policy].percentile(5.0) for policy in ordered_policies
            ],
            "savings_p50": [
                pooled[policy].percentile(50.0) for policy in ordered_policies
            ],
            "savings_p95": [
                pooled[policy].percentile(95.0) for policy in ordered_policies
            ],
        }
    )

    aware = results.where(col("policy") == "aware")
    slack = results.where(col("policy") == _SLACK_POLICY.name)
    aware_savings = np.asarray(aware.column("savings_fraction"), dtype=float)
    slack_savings = np.asarray(slack.column("savings_fraction"), dtype=float)
    slack_max_deferral = np.asarray(
        slack.column("max_deferral_hours"), dtype=float
    )

    # Pin the batched evaluator to the scalar reference on a subset
    # (full-catalog equivalence lives in the dedicated test suite).
    subset = dict(list(catalog.items())[:3])
    batched = evaluate_policies(subset, workloads, capacity_kw=_CAPACITY_KW)
    scalar = evaluate_policies_scalar(subset, workloads, capacity_kw=_CAPACITY_KW)
    matches = all(
        batched.column(name) == scalar.column(name)
        for name in batched.column_names
    )

    checks = [
        Check.boolean("aware_never_worse", bool(np.all(aware_savings >= -1e-9))),
        Check.boolean("savings_material", float(np.max(aware_savings)) >= 0.10),
        Check.boolean(
            "slack_bounds_deferral",
            bool(np.all(slack_max_deferral <= _SLACK_POLICY.slack_hours + 1e-9)),
        ),
        Check.boolean(
            "bounded_slack_cannot_beat_unbounded_on_average",
            float(np.mean(slack_savings)) <= float(np.mean(aware_savings)) + 1e-9,
        ),
        Check.boolean("batched_matches_scalar_reference", matches),
        Check.boolean(
            # Carbon-aware savings survive weather/demand noise: even
            # the worst 5th-percentile draw across every region and
            # workload still saves carbon.
            "aware_savings_p05_material_under_noise",
            worst_aware_p05 > 0.05,
        ),
    ]

    dirty = catalog["india"]
    clean = catalog["iceland"]
    chart = line_chart(
        [float(hour) for hour in range(_HOURS)],
        {
            "india_g_per_kwh": list(dirty.values),
            "iceland_g_per_kwh": list(clean.values),
        },
    )
    mean_aware = float(np.mean(aware_savings))
    return ExperimentResult(
        experiment_id="ext10",
        title=TITLE,
        tables={"by_policy": by_policy, "scenarios": results},
        checks=checks,
        charts={"trace_families": chart},
        notes=[
            f"{results.num_rows} scenarios: {len(catalog)} traces x "
            f"{len(workloads)} workloads x {len(DEFAULT_POLICIES)} policies",
            f"mean carbon savings of unbounded carbon-aware: {mean_aware:.1%}",
            "CI columns: pooled p05/p50/p95 of each policy's savings "
            f"over every region x workload x {_NOISE_DRAWS} seeded noise "
            "draws (repro.uncertainty.sweep_temporal_shifting_uncertain); "
            "expected range: per-scenario aware savings p05 stays above "
            f"0.05 for every region x workload, worst-case "
            f"{worst_aware_p05:.3f}.",
        ],
    )
