"""Extension: a Facebook-like fleet reproduces the Figure 11 mechanism.

Simulates six years of a growing server fleet with a renewable ramp:
energy grows every year, market-based operational carbon collapses
once procurement covers demand, and capex (new-server manufacturing
plus construction) ends up dominating — the generative mechanism
behind the reported Figure 2/11 data. Runs on the batched
struct-of-arrays kernel (:func:`repro.datacenter.fleet.simulate_fleet_batch`);
the scalar :func:`repro.datacenter.fleet.simulate_fleet` is the
reference implementation the kernel is pinned against.
"""

from __future__ import annotations

import numpy as np

from ..datacenter.fleet import FleetParameters, simulate_fleet_batch
from ..report.charts import line_chart
from ..scenarios.presets import facebook_like_fleet
from .result import Check, ExperimentResult

__all__ = ["run", "facebook_like_parameters"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Fleet simulation: the mechanism behind Figures 2 and 11"


def facebook_like_parameters() -> FleetParameters:
    """A 2014-2019 fleet with an aggressive renewable ramp."""
    return facebook_like_fleet()


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    batch = simulate_fleet_batch([facebook_like_parameters()])
    table = batch.to_table().select(
        "year",
        "servers",
        "energy_gwh",
        "opex_location_kt",
        "opex_market_kt",
        "capex_kt",
        "coverage",
        "capex_fraction_market",
    )
    energy = np.asarray(table.column("energy_gwh"))
    market = table.column("opex_market_kt")
    location = table.column("opex_location_kt")
    final_fraction = float(batch.capex_fraction_market()[0, -1])
    final_ratio = float(batch.capex_to_opex_market()[0, -1])
    checks = [
        Check.boolean(
            "energy_rises_every_year",
            bool(np.all(np.diff(energy) > 0.0)),
        ),
        Check.boolean(
            "market_opex_falls_after_ramp",
            market[-1] < market[0],
        ),
        Check.boolean(
            "capex_dominates_by_final_year",
            final_fraction > 0.80,
        ),
        Check.boolean(
            # The paper's 23x covers the whole supply chain (all
            # purchased goods); this simulation counts only servers and
            # construction, so several-fold is the expected regime.
            "capex_to_opex_ratio_large",
            final_ratio > 4.0,
        ),
        Check.boolean(
            "location_opex_still_rising",
            location[-1] > location[0],
        ),
    ]
    chart = line_chart(
        [float(year) for year in table.column("year")],
        {
            "opex_location_kt": location,
            "opex_market_kt": market,
            "capex_kt": table.column("capex_kt"),
        },
    )
    return ExperimentResult(
        experiment_id="ext04",
        title=TITLE,
        tables={"fleet": table},
        checks=checks,
        charts={"carbon_series": chart},
    )
