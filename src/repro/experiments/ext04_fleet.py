"""Extension: a Facebook-like fleet reproduces the Figure 11 mechanism.

Simulates six years of a growing server fleet with a renewable ramp:
energy grows every year, market-based operational carbon collapses
once procurement covers demand, and capex (new-server manufacturing
plus construction) ends up dominating — the generative mechanism
behind the reported Figure 2/11 data.
"""

from __future__ import annotations

from ..data.energy_sources import source_by_name
from ..data.grids import US_GRID
from ..datacenter.facility import Facility
from ..datacenter.fleet import FleetParameters, simulate_fleet
from ..datacenter.renewable import PPAContract, RenewablePortfolio
from ..datacenter.server import WEB_SERVER
from ..report.charts import line_chart
from ..tabular import Table
from ..units import Carbon, Energy
from .result import Check, ExperimentResult

__all__ = ["run", "facebook_like_parameters"]


def _portfolio(wind_gwh: float, solar_gwh: float) -> RenewablePortfolio:
    contracts: list[PPAContract] = []
    if wind_gwh > 0.0:
        contracts.append(
            PPAContract("wind_ppa", source_by_name("wind"), Energy.gwh(wind_gwh))
        )
    if solar_gwh > 0.0:
        contracts.append(
            PPAContract("solar_ppa", source_by_name("solar"), Energy.gwh(solar_gwh))
        )
    return RenewablePortfolio(tuple(contracts))


def facebook_like_parameters() -> FleetParameters:
    """A 2014-2019 fleet with an aggressive renewable ramp."""
    facility = Facility(
        name="prineville_like",
        pue=1.10,
        construction_carbon=Carbon.kilotonnes(120.0),
    )
    return FleetParameters(
        server=WEB_SERVER,
        facility=facility,
        location_intensity=US_GRID.intensity,
        initial_servers=50_000,
        annual_growth=0.25,
        utilization=0.45,
        years=6,
        start_year=2014,
        # The ramp leans into wind (11 g/kWh) the way the hyperscalers'
        # PPA books do; by the final year contracts cover all demand.
        renewable_ramp={
            0: _portfolio(30.0, 10.0),
            1: _portfolio(80.0, 30.0),
            2: _portfolio(160.0, 60.0),
            3: _portfolio(320.0, 80.0),
            4: _portfolio(600.0, 80.0),
            5: _portfolio(1200.0, 100.0),
        },
    )


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    reports = simulate_fleet(facebook_like_parameters())
    table = Table.from_records(
        [
            {
                "year": report.year,
                "servers": report.servers,
                "energy_gwh": report.energy.gigawatt_hours,
                "opex_location_kt": report.opex_location.kilotonnes_value,
                "opex_market_kt": report.opex_market.kilotonnes_value,
                "capex_kt": report.capex.kilotonnes_value,
                "coverage": report.renewable_coverage,
                "capex_fraction_market": report.capex_fraction_market,
            }
            for report in reports
        ]
    )
    energy = table.column("energy_gwh")
    market = table.column("opex_market_kt")
    final = reports[-1]
    checks = [
        Check.boolean(
            "energy_rises_every_year",
            all(a < b for a, b in zip(energy, energy[1:])),
        ),
        Check.boolean(
            "market_opex_falls_after_ramp",
            market[-1] < market[0],
        ),
        Check.boolean(
            "capex_dominates_by_final_year",
            final.capex_fraction_market > 0.80,
        ),
        Check.boolean(
            # The paper's 23x covers the whole supply chain (all
            # purchased goods); this simulation counts only servers and
            # construction, so several-fold is the expected regime.
            "capex_to_opex_ratio_large",
            final.capex_to_opex_market > 4.0,
        ),
        Check.boolean(
            "location_opex_still_rising",
            table.column("opex_location_kt")[-1]
            > table.column("opex_location_kt")[0],
        ),
    ]
    chart = line_chart(
        [float(report.year) for report in reports],
        {
            "opex_location_kt": table.column("opex_location_kt"),
            "opex_market_kt": market,
            "capex_kt": table.column("capex_kt"),
        },
    )
    return ExperimentResult(
        experiment_id="ext04",
        title="Fleet simulation: the mechanism behind Figures 2 and 11",
        tables={"fleet": table},
        checks=checks,
        charts={"carbon_series": chart},
    )
