"""Extension: a Facebook-like fleet reproduces the Figure 11 mechanism.

Simulates six years of a growing server fleet with a renewable ramp:
energy grows every year, market-based operational carbon collapses
once procurement covers demand, and capex (new-server manufacturing
plus construction) ends up dominating — the generative mechanism
behind the reported Figure 2/11 data. Runs on the batched
struct-of-arrays kernel (:func:`repro.datacenter.fleet.simulate_fleet_batch`);
the scalar :func:`repro.datacenter.fleet.simulate_fleet` is the
reference implementation the kernel is pinned against.
"""

from __future__ import annotations

import numpy as np

from ..analysis.uncertainty import Normal, Triangular
from ..datacenter.fleet import FleetParameters, simulate_fleet_batch
from ..report.charts import line_chart
from ..scenarios.presets import facebook_like_fleet
from ..uncertainty import UncertainResult, sweep_fleet_uncertain
from .result import Check, ExperimentResult

__all__ = ["run", "facebook_like_parameters", "uncertain_fleet"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Fleet simulation: the mechanism behind Figures 2 and 11"

_DRAWS = 256


def facebook_like_parameters() -> FleetParameters:
    """A 2014-2019 fleet with an aggressive renewable ramp."""
    return facebook_like_fleet()


def uncertain_fleet(draws: int = _DRAWS, seed: int = 0) -> UncertainResult:
    """The same fleet with its elusive parameters left as distributions.

    Lifetime, utilization, and PUE are the inputs the paper flags as
    assumption-laden; tagging them and sweeping the draw matrix turns
    the capex-dominance claim from a point estimate into a band.
    """
    scenario = {
        "server.lifetime_years": Triangular(3.0, 4.0, 6.0),
        "utilization": Normal(0.45, 0.05),
        "facility.pue": Triangular(1.07, 1.10, 1.30),
    }
    return sweep_fleet_uncertain(
        facebook_like_fleet(), [scenario], draws=draws, seed=seed
    )


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    batch = simulate_fleet_batch([facebook_like_parameters()])
    table = batch.to_table().select(
        "year",
        "servers",
        "energy_gwh",
        "opex_location_kt",
        "opex_market_kt",
        "capex_kt",
        "coverage",
        "capex_fraction_market",
    )
    energy = np.asarray(table.column("energy_gwh"))
    market = table.column("opex_market_kt")
    location = table.column("opex_location_kt")
    final_fraction = float(batch.capex_fraction_market()[0, -1])
    final_ratio = float(batch.capex_to_opex_market()[0, -1])

    # Uncertainty view: the same claims with lifetime/utilization/PUE
    # sampled instead of assumed. CI columns land in the summary table;
    # the checks assert the claims hold across the band, not just at
    # the point estimate.
    uncertain = uncertain_fleet()
    fraction = uncertain.distribution("capex_fraction_market")
    ratio = uncertain.distribution("capex_to_opex_market")
    fraction_p05, fraction_p95 = fraction.interval(0.90)
    checks = [
        Check.boolean(
            "energy_rises_every_year",
            bool(np.all(np.diff(energy) > 0.0)),
        ),
        Check.boolean(
            "market_opex_falls_after_ramp",
            market[-1] < market[0],
        ),
        Check.boolean(
            "capex_dominates_by_final_year",
            final_fraction > 0.80,
        ),
        Check.boolean(
            # The paper's 23x covers the whole supply chain (all
            # purchased goods); this simulation counts only servers and
            # construction, so several-fold is the expected regime.
            "capex_to_opex_ratio_large",
            final_ratio > 4.0,
        ),
        Check.boolean(
            "location_opex_still_rising",
            location[-1] > location[0],
        ),
        Check.boolean(
            "point_estimate_inside_p05_p95_band",
            fraction_p05 <= final_fraction <= fraction_p95,
        ),
        Check.boolean(
            # Capex dominance survives the assumption error bars: even
            # the 5th percentile of the sampled capex fraction clears
            # 3/4 of the market-based footprint.
            "capex_dominates_even_at_p05",
            fraction_p05 > 0.75,
        ),
        Check.boolean(
            "capex_to_opex_ratio_large_even_at_p05",
            ratio.percentile(5.0) > 3.0,
        ),
    ]
    chart = line_chart(
        [float(year) for year in table.column("year")],
        {
            "opex_location_kt": location,
            "opex_market_kt": market,
            "capex_kt": table.column("capex_kt"),
        },
    )
    return ExperimentResult(
        experiment_id="ext04",
        title=TITLE,
        tables={"fleet": table, "uncertainty": uncertain.metric_summary()},
        checks=checks,
        charts={"carbon_series": chart},
        notes=[
            f"CI columns: {_DRAWS} draws over lifetime Triangular(3,4,6), "
            "utilization Normal(0.45,0.05), PUE Triangular(1.07,1.10,1.30); "
            f"final-year capex fraction p05-p95 = "
            f"[{fraction_p05:.3f}, {fraction_p95:.3f}] around the "
            f"{final_fraction:.3f} point estimate.",
        ],
    )
