"""Extension: device-portfolio embodied carbon at fleet scale.

The paper's consumer-device story (Figures 2, 10, 14) says three
things: battery-powered devices are *embodied*-dominated, node shrink
moves per-wafer fab carbon up the roadmap, and a phone's IC capex
takes on the order of a device lifetime of continuous inference to
amortize. This experiment runs the ``repro.portfolio`` fleet model —
the default eight-archetype catalog across node-shrink, fab-grid, and
lifetime scenarios, deterministic and with fab-yield / lifetime
uncertainty bands — and checks all three anchors, plus a batch-vs-
scalar equivalence spot check (the full pin lives in
``tests/test_portfolio_batch_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from ..core.amortization import break_even_days
from ..data.grids import US_GRID
from ..mobile.device import pixel3
from ..portfolio import (
    DEVICE_METRICS,
    default_catalog,
    simulate_device,
    simulate_device_batch,
    sweep_portfolio,
    sweep_portfolio_uncertain,
)
from ..report.charts import bar_chart
from ..scenarios import ScenarioGrid
from ..analysis.uncertainty import LogNormal, Triangular
from ..tabular import col
from ..units import Carbon
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Device portfolio: fleet embodied carbon across node and lifetime"

_DRAWS = 64


def _grid() -> ScenarioGrid:
    return ScenarioGrid(
        **{
            "node_shift": [0.0, 1.0, 2.0],
            "fab_intensity_g_per_kwh": [583.0, 250.0],
            "lifetime_scale": [1.0, 1.5],
        }
    )


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    catalog = default_catalog()
    fleet = sweep_portfolio(catalog, _grid())
    devices = simulate_device_batch(catalog)

    # Figure 2/10 direction: for the battery-powered fleet, embodied
    # (hardware production) carbon dominates the life-cycle total.
    baseline = fleet.where(
        (col("node_shift") == 0.0)
        & (col("fab_intensity_g_per_kwh") == 583.0)
        & (col("lifetime_scale") == 1.0)
    )
    baseline_fraction = float(baseline.column("embodied_fraction")[0])

    # Figure 14 direction: each node shrink raises per-wafer (and so
    # fleet embodied) fab carbon — the roadmap's energy and gas
    # footprints grow faster than yield improves.
    shrink = fleet.where(
        (col("fab_intensity_g_per_kwh") == 583.0)
        & (col("lifetime_scale") == 1.0)
    )
    embodied_by_shift = [
        value
        for _, value in sorted(
            zip(shrink.column("node_shift"), shrink.column("embodied_t"))
        )
    ]
    shrink_monotone = all(
        later > earlier
        for earlier, later in zip(embodied_by_shift, embodied_by_shift[1:])
    )

    # Figure 10 anchor: the flagship archetype's IC capex, driven
    # through the *same* amortization primitive as the pixel3 model,
    # lands in the neighborhood of the phone's measured break-even
    # (~350 days of continuous mobilenet inference on CPU).
    phone = pixel3()
    flagship = next(
        spec for spec in catalog if spec.name == "flagship_phone"
    )
    flagship_ic = Carbon.kg(simulate_device(flagship)["ic_kg"])
    power = phone.simulator.sustained_power("mobilenet_v3", "cpu")
    flagship_break_even = float(
        break_even_days(flagship_ic, power, US_GRID.intensity)
    )
    phone_break_even = float(phone.break_even_days("mobilenet_v3", "cpu"))

    # Batch-vs-scalar spot check: every catalog row of the batch kernel
    # equals the scalar reference exactly.
    matches = all(
        devices.column(metric)[index] == simulate_device(spec)[metric]
        for index, spec in enumerate(catalog)
        for metric in DEVICE_METRICS
    )

    # Uncertainty bands: fab-yield and lifetime distributions around
    # the node-shrink axis. The deterministic baseline must sit inside
    # the p05-p95 band of its own scenario.
    uncertain = sweep_portfolio_uncertain(
        catalog,
        ScenarioGrid(
            **{
                "node_shift": [0.0, 1.0, 2.0],
                "defect_density_scale": [LogNormal.from_median(1.0, 0.25)],
                "lifetime_scale": [Triangular(0.8, 1.0, 1.4)],
            }
        ),
        draws=_DRAWS,
        seed=0,
    )
    bands = uncertain.quantile_table()
    det_total = float(
        fleet.where(
            (col("node_shift") == 0.0)
            & (col("fab_intensity_g_per_kwh") == 583.0)
            & (col("lifetime_scale") == 1.0)
        ).column("total_t")[0]
    )
    p05 = float(bands.column("total_t_p05")[0])
    p95 = float(bands.column("total_t_p95")[0])
    band_covers_deterministic = p05 <= det_total <= p95

    checks = [
        Check.boolean(
            "fleet_embodied_share_dominates", baseline_fraction > 0.5
        ),
        Check.boolean("node_shrink_raises_embodied_carbon", shrink_monotone),
        Check(
            name="flagship_break_even_near_pixel3",
            expected=phone_break_even,
            measured=flagship_break_even,
            rel_tolerance=0.25,
        ),
        Check.boolean("batch_matches_scalar_reference", matches),
        Check.boolean(
            "uncertainty_band_covers_deterministic",
            band_covers_deterministic,
        ),
    ]

    chart = bar_chart(
        [f"shift_{int(shift)}" for shift in sorted(set(shrink.column("node_shift")))],
        [float(value) / 1e6 for value in embodied_by_shift],
        value_format="{:.2f} Mt",
    )
    return ExperimentResult(
        experiment_id="ext11",
        title=TITLE,
        tables={"fleet": fleet, "devices": devices, "bands": bands},
        checks=checks,
        charts={"embodied_by_node_shift": chart},
        notes=[
            f"{fleet.num_rows} scenarios x {len(catalog)} devices "
            f"({int(sum(spec.units for spec in catalog)):,} units)",
            f"baseline fleet embodied share {baseline_fraction:.1%} "
            "(expected range 0.6-0.8: battery devices are "
            "production-dominated, Figures 2/10)",
            "node-shrink embodied totals (Mt): "
            + ", ".join(f"{value / 1e6:.2f}" for value in embodied_by_shift)
            + " (expected strictly increasing, Figure 14 direction)",
            f"flagship IC break-even {flagship_break_even:.0f} days vs "
            f"pixel3's {phone_break_even:.0f} (expected within 25%)",
            f"deterministic baseline total {det_total / 1e6:.2f} Mt inside "
            f"[{p05 / 1e6:.2f}, {p95 / 1e6:.2f}] Mt p05-p95 band over "
            f"{_DRAWS} fab-yield x lifetime draws",
        ],
    )
