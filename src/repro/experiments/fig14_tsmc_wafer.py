"""Figure 14: TSMC wafer carbon vs renewable-energy scaling.

Paper claims reproduced: energy is over 63% of per-wafer emissions and
PFCs/chemicals/gases nearly 30%; sweeping the fab's electricity 1x-64x
cleaner shrinks only the energy wedge, so the best case improves the
wafer total by only ~2.7x.
"""

from __future__ import annotations

from ..data.tsmc import tsmc_wafer_model
from ..fab.wafer import WAFER_COMPONENTS
from ..report.charts import stacked_bar_chart
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "TSMC wafer carbon breakdown under renewable scaling"

_FACTORS = (1, 2, 4, 8, 16, 32, 64)


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    model = tsmc_wafer_model()
    sweep_rows = model.sweep(_FACTORS)
    sweep = Table.from_records(sweep_rows)

    shares = model.baseline.shares()
    gas_share = (
        shares["pfc_diffusive"] + shares["chemicals_gases"] + shares["bulk_gases"]
    )

    checks = [
        Check("energy_share", 0.63, shares["energy"], rel_tolerance=0.01),
        Check("process_gas_share", 0.30, gas_share, rel_tolerance=0.02),
        Check("reduction_at_64x", 2.7, model.total_reduction(64.0),
              rel_tolerance=0.05),
        Check.boolean(
            "total_falls_monotonically",
            all(
                earlier["total"] > later["total"]
                for earlier, later in zip(sweep_rows, sweep_rows[1:])
            ),
        ),
        Check.boolean(
            "non_energy_components_fixed",
            all(
                abs(row[name] - sweep_rows[0][name]) < 1e-12
                for row in sweep_rows
                for name in WAFER_COMPONENTS
                if name != "energy"
            ),
        ),
    ]
    chart = stacked_bar_chart(
        [f"{int(row['factor'])}x" for row in sweep_rows],
        [
            {name: row[name] for name in WAFER_COMPONENTS}
            for row in sweep_rows
        ],
    )
    return ExperimentResult(
        experiment_id="fig14",
        title=TITLE,
        tables={"sweep": sweep},
        checks=checks,
        charts={"component_stack": chart},
    )
