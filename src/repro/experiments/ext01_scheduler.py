"""Extension: carbon-aware batch scheduling (Section VI direction).

The paper points run-time-systems research at scheduling batch work
when renewable energy is plentiful. This experiment schedules a mixed
batch workload against a duck-curve grid with a carbon-agnostic
baseline and the greedy carbon-aware scheduler, and quantifies the
savings.
"""

from __future__ import annotations

from ..datacenter.grid_sim import DiurnalGridModel
from ..datacenter.scheduler import (
    BatchJob,
    schedule_carbon_agnostic,
    schedule_carbon_aware,
)
from ..report.charts import line_chart
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run", "example_jobs"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Carbon-aware vs carbon-agnostic batch scheduling"

_HORIZON_HOURS = 48
_CAPACITY_KW = 900.0


def example_jobs() -> list[BatchJob]:
    """A mixed nightly batch: training, ETL, media, backups."""
    return [
        BatchJob("ml_training_a", duration_hours=8, power_kw=400.0,
                 arrival_hour=0, deadline_hour=36),
        BatchJob("ml_training_b", duration_hours=6, power_kw=350.0,
                 arrival_hour=2, deadline_hour=40),
        BatchJob("etl_pipeline", duration_hours=4, power_kw=200.0,
                 arrival_hour=0, deadline_hour=24),
        BatchJob("media_transcode", duration_hours=3, power_kw=150.0,
                 arrival_hour=1, deadline_hour=30),
        BatchJob("db_backup", duration_hours=2, power_kw=100.0,
                 arrival_hour=0, deadline_hour=12),
        BatchJob("index_rebuild", duration_hours=5, power_kw=250.0,
                 arrival_hour=4, deadline_hour=46),
    ]


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    grid = DiurnalGridModel()
    intensity = grid.hourly_series(_HORIZON_HOURS)
    jobs = example_jobs()
    agnostic = schedule_carbon_agnostic(jobs, intensity, _CAPACITY_KW)
    aware = schedule_carbon_aware(jobs, intensity, _CAPACITY_KW)

    records = []
    for job in jobs:
        baseline = agnostic.placement_for(job.name)
        improved = aware.placement_for(job.name)
        records.append(
            {
                "job": job.name,
                "agnostic_start": baseline.start_hour,
                "aware_start": improved.start_hour,
                "agnostic_kg": baseline.carbon.kilograms,
                "aware_kg": improved.carbon.kilograms,
            }
        )
    table = Table.from_records(records)
    savings = 1.0 - aware.total_carbon.grams / agnostic.total_carbon.grams

    checks = [
        Check.boolean("aware_never_worse",
                      aware.total_carbon.grams <= agnostic.total_carbon.grams),
        Check.boolean("savings_material", savings >= 0.10),
        Check.boolean(
            "same_energy_delivered",
            abs(
                sum(p.job.energy.kilowatt_hours for p in aware.placements)
                - sum(p.job.energy.kilowatt_hours for p in agnostic.placements)
            )
            < 1e-9,
        ),
        Check.boolean(
            "aware_prefers_midday_valley",
            any(
                10 <= (p.start_hour % 24) <= 16 for p in aware.placements
            ),
        ),
    ]
    chart = line_chart(
        [float(hour) for hour in range(_HORIZON_HOURS)],
        {"grid_g_per_kwh": list(intensity)},
    )
    return ExperimentResult(
        experiment_id="ext01",
        title=TITLE,
        tables={"placements": table},
        checks=checks,
        charts={"grid_profile": chart},
        notes=[f"carbon savings: {savings:.1%} on a duck-curve grid"],
    )
