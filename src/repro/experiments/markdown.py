"""Markdown rendering of experiment results (EXPERIMENTS.md generator).

``markdown_report(run_all())`` produces the paper-vs-measured record
for every experiment; the repository's EXPERIMENTS.md is this output
plus hand-written commentary. Regenerate with::

    python -m repro.experiments.markdown
"""

from __future__ import annotations

from typing import Mapping

from ..tabular import Table
from .result import ExperimentResult

__all__ = ["markdown_table", "markdown_report"]


def markdown_table(table: Table, float_format: str = "{:.4g}") -> str:
    """Render a Table as GitHub-flavored markdown."""
    names = table.column_names

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    lines = [
        "| " + " | ".join(names) + " |",
        "|" + "|".join("---" for _ in names) + "|",
    ]
    columns = [table.column(name) for name in names]
    for row_values in zip(*columns):
        lines.append("| " + " | ".join(fmt(value) for value in row_values) + " |")
    return "\n".join(lines)


def markdown_report(results: Mapping[str, ExperimentResult]) -> str:
    """One markdown section per experiment: title, checks, notes."""
    sections: list[str] = []
    for experiment_id, result in results.items():
        status = "all checks pass" if result.all_checks_pass else "CHECKS FAILING"
        sections.append(f"## {experiment_id} — {result.title}")
        sections.append(f"Status: **{status}** ({len(result.checks)} checks)")
        sections.append("")
        sections.append(markdown_table(result.checks_table()))
        for note in result.notes:
            sections.append("")
            sections.append(f"*Note: {note}*")
        sections.append("")
    return "\n".join(sections)


def main() -> None:
    """Print the full paper-vs-measured report as markdown."""
    from .registry import run_all

    print(markdown_report(run_all()))


if __name__ == "__main__":
    main()
