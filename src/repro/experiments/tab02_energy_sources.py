"""Table II: carbon intensity and energy-payback of energy sources.

Paper claims reproduced: the exact intensity values (coal 820 down to
wind 11 g CO2e/kWh) and the headline that green sources produce up to
~30x fewer GHG emissions than brown sources.
"""

from __future__ import annotations

from ..data.energy_sources import ENERGY_SOURCES, source_by_name
from ..report.charts import bar_chart
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Carbon efficiency of energy sources"

_EXPECTED = {
    "coal": 820.0,
    "gas": 490.0,
    "biomass": 230.0,
    "solar": 41.0,
    "geothermal": 38.0,
    "hydropower": 24.0,
    "nuclear": 12.0,
    "wind": 11.0,
}


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    table = Table.from_records(
        [
            {
                "source": source.name,
                "g_per_kwh": source.intensity.grams_per_kwh,
                "payback_months": source.payback_months,
                "renewable": source.renewable,
            }
            for source in ENERGY_SOURCES
        ]
    )
    checks = [
        Check(f"{name}_g_per_kwh", expected,
              source_by_name(name).intensity.grams_per_kwh, rel_tolerance=0.0)
        for name, expected in _EXPECTED.items()
    ]
    brown_floor = source_by_name("gas").intensity.grams_per_kwh
    green_sources = ("solar", "hydropower", "wind", "nuclear", "geothermal")
    green_ceiling = max(
        source_by_name(name).intensity.grams_per_kwh for name in green_sources
    )
    checks.append(
        Check.boolean(
            "green_up_to_30x_cleaner_than_brown",
            brown_floor / green_ceiling >= 10.0
            and source_by_name("coal").intensity.grams_per_kwh
            / source_by_name("hydropower").intensity.grams_per_kwh
            >= 30.0,
        )
    )
    chart = bar_chart(
        table.column("source"), table.column("g_per_kwh"),
        value_format="{:.0f}",
    )
    return ExperimentResult(
        experiment_id="tab02",
        title=TITLE,
        tables={"sources": table},
        checks=checks,
        charts={"intensity": chart},
    )
