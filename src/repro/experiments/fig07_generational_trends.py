"""Figure 7: generational trends for iPhone, Apple Watch, and iPad.

Paper claims reproduced: the manufacturing fraction rises in every
family (iPhone 40% -> 75%, Watch 60% -> 75%, iPad 60% -> 75%); iPad
absolute totals fall across generations while iPhone and Watch totals
rise; per-generation use-phase carbon falls as efficiency improves.
"""

from __future__ import annotations

from ..analysis.trends import generational_table, trend_summary
from ..data.devices import family
from ..report.charts import line_chart
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Generational carbon trends: iPhone, Apple Watch, iPad"

_EXPECTED_FRACTIONS = {
    "iphone": (0.40, 0.75),
    "apple_watch": (0.60, 0.75),
    "ipad": (0.60, 0.75),
}


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    tables = {}
    checks = []
    fraction_series: dict[str, list[float]] = {}
    for family_name, (first_expected, last_expected) in _EXPECTED_FRACTIONS.items():
        generations = family(family_name)
        tables[family_name] = generational_table(generations)
        summary = trend_summary(generations)
        fraction_series[family_name] = [
            lca.manufacturing_fraction for lca in generations
        ]
        checks.append(
            Check(
                f"{family_name}_first_manufacturing_fraction",
                first_expected,
                float(summary["first_manufacturing_fraction"]),
                rel_tolerance=0.02,
            )
        )
        checks.append(
            Check(
                f"{family_name}_last_manufacturing_fraction",
                last_expected,
                float(summary["last_manufacturing_fraction"]),
                rel_tolerance=0.02,
            )
        )
        checks.append(
            Check.boolean(
                f"{family_name}_manufacturing_fraction_rising",
                bool(summary["manufacturing_fraction_rising"]),
            )
        )
    iphone_summary = trend_summary(family("iphone"))
    watch_summary = trend_summary(family("apple_watch"))
    ipad_summary = trend_summary(family("ipad"))
    checks.extend(
        [
            Check.boolean("iphone_total_rising", bool(iphone_summary["total_rising"])),
            Check.boolean("watch_total_rising", bool(watch_summary["total_rising"])),
            Check.boolean("ipad_total_falling", not bool(ipad_summary["total_rising"])),
            Check.boolean("iphone_use_kg_falling", bool(iphone_summary["use_kg_falling"])),
        ]
    )
    longest = max(len(values) for values in fraction_series.values())
    chart = line_chart(
        list(range(longest)),
        {
            name: values + [values[-1]] * (longest - len(values))
            for name, values in fraction_series.items()
        },
    )
    return ExperimentResult(
        experiment_id="fig07",
        title=TITLE,
        tables=tables,
        checks=checks,
        charts={"manufacturing_fraction_by_generation": chart},
    )
