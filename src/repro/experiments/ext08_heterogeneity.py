"""Extension: heterogeneous provisioning as a capex lever.

Serves a mixed workload (web, AI inference, video transcode) with a
general-purpose fleet and with specialized SKUs, and compares both
fleets' embodied and operational carbon. The reproduced structural
claim from Section VI: specialization shrinks the machine count enough
to cut both carbon columns — heterogeneity is a capex lever, not just
a performance one. Provisioning runs on the batched ceil-divide/argmin
kernel; the scalar provisioners remain the pinned reference.
"""

from __future__ import annotations

from ..core.embodied import EmbodiedModel
from ..data.grids import US_GRID
from ..datacenter.heterogeneity import (
    ServerType,
    WorkloadClass,
    provision_heterogeneous_batch,
    provision_homogeneous_batch,
)
from ..scenarios.presets import example_service_mix
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run", "example_mix"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Heterogeneous provisioning as a capex lever"


def example_mix() -> tuple[list[WorkloadClass], ServerType, list[ServerType]]:
    """A three-service mix plus general and specialized SKUs.

    The general SKU runs everything but is slow at AI and video; the
    accelerator SKU is ~12x faster at AI inference, the storage SKU
    ~3x at video. Throughputs are requests (or streams) per second.
    """
    return example_service_mix()


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    workloads, general, server_types = example_mix()
    model = EmbodiedModel()
    grid = US_GRID.intensity
    homogeneous = provision_homogeneous_batch(workloads, general)
    heterogeneous = provision_heterogeneous_batch(workloads, server_types)
    comparison = Table.concat(
        [
            plan.summary_table(grid, model).select(
                "plan",
                "servers",
                "embodied_t_per_year",
                "operational_t_per_year",
                "total_t_per_year",
            )
            for plan in (homogeneous, heterogeneous)
        ]
    )

    homo = comparison.where("plan", "==", "homogeneous").row(0)
    hetero = comparison.where("plan", "==", "heterogeneous").row(0)

    checks = [
        Check.boolean(
            "specialization_shrinks_fleet",
            hetero["servers"] < 0.6 * homo["servers"],
        ),
        Check.boolean(
            "specialization_cuts_embodied",
            hetero["embodied_t_per_year"] < homo["embodied_t_per_year"],
        ),
        Check.boolean(
            "specialization_cuts_operational",
            hetero["operational_t_per_year"] < homo["operational_t_per_year"],
        ),
        Check.boolean(
            "total_carbon_reduced_by_at_least_a_quarter",
            hetero["total_t_per_year"] < 0.75 * homo["total_t_per_year"],
        ),
        Check.boolean(
            "web_still_runs_on_general_sku",
            any(
                server_type.config.name == "web_server"
                and workload.name == "web"
                for server_type, workload, _ in heterogeneous.plan(0).assignments
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id="ext08",
        title=TITLE,
        tables={"comparison": comparison},
        checks=checks,
        notes=[
            "Accelerator throughput advantage (~12x on AI inference) is the"
            " regime the paper cites for Facebook's custom inference/training"
            " servers; the carbon result follows from fewer machines.",
        ],
    )
