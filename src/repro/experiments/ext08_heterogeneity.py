"""Extension: heterogeneous provisioning as a capex lever.

Serves a mixed workload (web, AI inference, video transcode) with a
general-purpose fleet and with specialized SKUs, and compares both
fleets' embodied and operational carbon. The reproduced structural
claim from Section VI: specialization shrinks the machine count enough
to cut both carbon columns — heterogeneity is a capex lever, not just
a performance one.
"""

from __future__ import annotations

from ..data.grids import US_GRID
from ..datacenter.heterogeneity import (
    ServerType,
    WorkloadClass,
    compare_provisioning,
    provision_heterogeneous,
    provision_homogeneous,
)
from ..datacenter.server import AI_TRAINING_SERVER, STORAGE_SERVER, WEB_SERVER
from .result import Check, ExperimentResult

__all__ = ["run", "example_mix"]


def example_mix() -> tuple[list[WorkloadClass], ServerType, list[ServerType]]:
    """A three-service mix plus general and specialized SKUs.

    The general SKU runs everything but is slow at AI and video; the
    accelerator SKU is ~12x faster at AI inference, the storage SKU
    ~3x at video. Throughputs are requests (or streams) per second.
    """
    workloads = [
        WorkloadClass("web", demand_rps=900_000.0),
        WorkloadClass("ai_inference", demand_rps=400_000.0),
        WorkloadClass("video", demand_rps=60_000.0),
    ]
    general = ServerType(
        config=WEB_SERVER,
        throughput_rps={"web": 1_500.0, "ai_inference": 120.0, "video": 25.0},
    )
    accelerator = ServerType(
        config=AI_TRAINING_SERVER,
        throughput_rps={"ai_inference": 4_000.0},
    )
    video_sku = ServerType(
        config=STORAGE_SERVER,
        throughput_rps={"video": 80.0},
    )
    return workloads, general, [general, accelerator, video_sku]


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    workloads, general, server_types = example_mix()
    homogeneous = provision_homogeneous(workloads, general)
    heterogeneous = provision_heterogeneous(workloads, server_types)
    comparison = compare_provisioning(
        homogeneous, heterogeneous, US_GRID.intensity
    )

    homo = comparison.where("plan", "==", "homogeneous").row(0)
    hetero = comparison.where("plan", "==", "heterogeneous").row(0)

    checks = [
        Check.boolean(
            "specialization_shrinks_fleet",
            hetero["servers"] < 0.6 * homo["servers"],
        ),
        Check.boolean(
            "specialization_cuts_embodied",
            hetero["embodied_t_per_year"] < homo["embodied_t_per_year"],
        ),
        Check.boolean(
            "specialization_cuts_operational",
            hetero["operational_t_per_year"] < homo["operational_t_per_year"],
        ),
        Check.boolean(
            "total_carbon_reduced_by_at_least_a_quarter",
            hetero["total_t_per_year"] < 0.75 * homo["total_t_per_year"],
        ),
        Check.boolean(
            "web_still_runs_on_general_sku",
            any(
                server_type.config.name == "web_server"
                and workload.name == "web"
                for server_type, workload, _ in heterogeneous.assignments
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id="ext08",
        title="Heterogeneous provisioning as a capex lever",
        tables={"comparison": comparison},
        checks=checks,
        notes=[
            "Accelerator throughput advantage (~12x on AI inference) is the"
            " regime the paper cites for Facebook's custom inference/training"
            " servers; the carbon result follows from fewer machines.",
        ],
    )
