"""Table III: global carbon intensity of electricity production."""

from __future__ import annotations

from ..data.grids import GRID_REGIONS, grid_by_name
from ..report.charts import bar_chart
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Global carbon efficiency of energy production"

_EXPECTED = {
    "world": 301.0,
    "india": 725.0,
    "australia": 597.0,
    "taiwan": 583.0,
    "singapore": 495.0,
    "united_states": 380.0,
    "europe": 295.0,
    "brazil": 82.0,
    "iceland": 28.0,
}


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    table = Table.from_records(
        [
            {
                "region": region.name,
                "g_per_kwh": region.intensity.grams_per_kwh,
                "dominant_source": region.dominant_source or "-",
            }
            for region in GRID_REGIONS
        ]
    )
    checks = [
        Check(f"{name}_g_per_kwh", expected,
              grid_by_name(name).intensity.grams_per_kwh, rel_tolerance=0.0)
        for name, expected in _EXPECTED.items()
    ]
    values = table.column("g_per_kwh")
    checks.append(
        Check.boolean(
            "rows_ordered_dirtiest_first",
            all(a >= b for a, b in zip(values, values[1:])),
        )
    )
    checks.append(
        Check(
            "india_to_iceland_spread",
            725.0 / 28.0,
            grid_by_name("india").intensity / grid_by_name("iceland").intensity,
            rel_tolerance=0.0,
        )
    )
    chart = bar_chart(
        table.column("region"), table.column("g_per_kwh"), value_format="{:.0f}"
    )
    return ExperimentResult(
        experiment_id="tab03",
        title=TITLE,
        tables={"grids": table},
        checks=checks,
        charts={"intensity": chart},
    )
