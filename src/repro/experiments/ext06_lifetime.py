"""Extension: lifetime and replacement economics in CO2e.

Quantifies Takeaway 6's "longer system lifetimes" direction two ways:

* annualized footprint vs lifetime for an iPhone-11-class device —
  the embodied share falls as hardware lives longer;
* replacement break-even: how many years of a new phone's efficiency
  gain are needed to repay its manufacturing carbon. With the use
  phase already small, an annual upgrade cycle can never pay back.
"""

from __future__ import annotations

from ..analysis.lifetime import (
    annualized_footprint,
    lifetime_sweep,
    replacement_break_even_years,
)
from ..analysis.uncertainty import Triangular, Uniform, monte_carlo
from ..data.devices import device_by_name
from ..data.grids import US_GRID
from ..tabular import Table
from ..units import Energy
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Lifetime extension and replacement economics (CO2e)"


def _annual_use_energy(product: str) -> Energy:
    """Back out the modeled annual energy from the LCA's use stage."""
    lca = device_by_name(product)
    use_grams_per_year = lca.use_carbon.grams / lca.lifetime_years
    kwh_per_year = use_grams_per_year / US_GRID.intensity.grams_per_kwh
    return Energy.kwh(kwh_per_year)


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    iphone = device_by_name("iphone_11")
    annual_energy = _annual_use_energy("iphone_11")
    embodied = iphone.capex_carbon

    sweep = lifetime_sweep(embodied, annual_energy, US_GRID.intensity)

    # Replacement question: a new device 30% more efficient, same
    # embodied carbon. How long to pay back the new manufacturing?
    new_embodied = embodied
    payback_30pct = replacement_break_even_years(
        new_embodied,
        old_annual_energy=annual_energy,
        new_annual_energy=annual_energy * 0.70,
        grid=US_GRID.intensity,
    )
    payback_worse = replacement_break_even_years(
        new_embodied,
        old_annual_energy=annual_energy,
        new_annual_energy=annual_energy * 1.10,
        grid=US_GRID.intensity,
    )
    replacement = Table.from_records(
        [
            {"scenario": "new_device_30pct_more_efficient",
             "payback_years": payback_30pct},
            {"scenario": "new_device_10pct_less_efficient",
             "payback_years": payback_worse},
        ]
    )

    annualized = sweep.column("annualized_kg")
    embodied_share = sweep.column("embodied_share")
    three_year = annualized_footprint(
        embodied, annual_energy, US_GRID.intensity, 3.0
    )
    six_year = annualized_footprint(
        embodied, annual_energy, US_GRID.intensity, 6.0
    )

    # Uncertainty view: the lifetime and grid assumptions are the
    # elusive inputs; propagate them through the scalar models with the
    # reference Monte Carlo and report CI columns alongside the point
    # checks.
    kwh_per_year = annual_energy.kilowatt_hours
    embodied_grams = embodied.grams

    def annualized_kg_model(params):
        return (
            embodied_grams / params["lifetime_years"]
            + kwh_per_year * params["grid_g_per_kwh"]
        ) / 1e3

    def payback_years_model(params):
        saved_per_year = (
            kwh_per_year * params["efficiency_gain"] * params["grid_g_per_kwh"]
        )
        return embodied_grams / saved_per_year

    annualized_ci = monte_carlo(
        annualized_kg_model,
        {
            "lifetime_years": Triangular(2.0, 3.0, 5.0),
            "grid_g_per_kwh": Uniform(295.0, 583.0),
        },
        samples=2000,
        seed=0,
        vectorized=True,
    )
    payback_ci = monte_carlo(
        payback_years_model,
        {
            "efficiency_gain": Uniform(0.2, 0.4),
            "grid_g_per_kwh": Uniform(295.0, 583.0),
        },
        samples=2000,
        seed=0,
        vectorized=True,
    )
    annualized_p05, annualized_p95 = annualized_ci.interval(0.90)
    payback_p05, payback_p95 = payback_ci.interval(0.90)
    uncertainty = Table.from_records(
        [
            {
                "metric": "annualized_kg",
                "mean": annualized_ci.mean,
                "p05": annualized_p05,
                "p50": annualized_ci.percentile(50.0),
                "p95": annualized_p95,
            },
            {
                "metric": "upgrade_payback_years",
                "mean": payback_ci.mean,
                "p05": payback_p05,
                "p50": payback_ci.percentile(50.0),
                "p95": payback_p95,
            },
        ]
    )
    point_annualized_kg = three_year.grams / 1e3

    checks = [
        Check.boolean(
            "annualized_footprint_falls_with_lifetime",
            all(a > b for a, b in zip(annualized, annualized[1:])),
        ),
        Check.boolean(
            "embodied_share_falls_with_lifetime",
            all(a > b for a, b in zip(embodied_share, embodied_share[1:])),
        ),
        Check(
            "doubling_lifetime_nearly_halves_annual_footprint",
            0.52,
            six_year.grams / three_year.grams,
            rel_tolerance=0.10,
        ),
        Check.boolean(
            # Embodied dominates, so a 30%-efficiency upgrade needs many
            # times the device lifetime to pay back.
            "efficiency_upgrade_never_pays_back_within_lifetime",
            payback_30pct > 3.0 * iphone.lifetime_years,
        ),
        Check.boolean(
            "less_efficient_replacement_never_pays_back",
            payback_worse == float("inf"),
        ),
        Check.boolean(
            "annualized_point_estimate_inside_p05_p95_band",
            annualized_p05 <= point_annualized_kg <= annualized_p95,
        ),
        Check.boolean(
            # Even the luckiest 5th-percentile draw (big efficiency
            # gain, dirty grid) needs several device lifetimes to repay
            # the new manufacturing carbon.
            "upgrade_payback_p05_exceeds_three_lifetimes",
            payback_p05 > 3.0 * iphone.lifetime_years,
        ),
    ]
    return ExperimentResult(
        experiment_id="ext06",
        title=TITLE,
        tables={
            "lifetime_sweep": sweep,
            "replacement": replacement,
            "uncertainty": uncertainty,
        },
        checks=checks,
        notes=[
            "Annual energy is backed out of the iPhone 11 LCA's use stage"
            " at the US grid; embodied carbon is its capex total.",
            "CI columns: 2000 draws over lifetime Triangular(2,3,5) and "
            "grid Uniform(295,583) g/kWh (annualized footprint), and "
            "efficiency gain Uniform(0.2,0.4) x the same grid band "
            "(upgrade payback), via the reference monte_carlo. "
            f"Expected ranges: annualized p05-p95 = "
            f"[{annualized_p05:.1f}, {annualized_p95:.1f}] kg around the "
            f"{point_annualized_kg:.1f} kg 3-year point estimate; upgrade "
            f"payback p05-p95 = [{payback_p05:.0f}, {payback_p95:.0f}] years "
            f"vs the {iphone.lifetime_years:.0f}-year device lifetime.",
        ],
    )
