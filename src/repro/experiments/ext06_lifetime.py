"""Extension: lifetime and replacement economics in CO2e.

Quantifies Takeaway 6's "longer system lifetimes" direction two ways:

* annualized footprint vs lifetime for an iPhone-11-class device —
  the embodied share falls as hardware lives longer;
* replacement break-even: how many years of a new phone's efficiency
  gain are needed to repay its manufacturing carbon. With the use
  phase already small, an annual upgrade cycle can never pay back.
"""

from __future__ import annotations

from ..analysis.lifetime import (
    annualized_footprint,
    lifetime_sweep,
    replacement_break_even_years,
)
from ..data.devices import device_by_name
from ..data.grids import US_GRID
from ..tabular import Table
from ..units import Energy
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Lifetime extension and replacement economics (CO2e)"


def _annual_use_energy(product: str) -> Energy:
    """Back out the modeled annual energy from the LCA's use stage."""
    lca = device_by_name(product)
    use_grams_per_year = lca.use_carbon.grams / lca.lifetime_years
    kwh_per_year = use_grams_per_year / US_GRID.intensity.grams_per_kwh
    return Energy.kwh(kwh_per_year)


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    iphone = device_by_name("iphone_11")
    annual_energy = _annual_use_energy("iphone_11")
    embodied = iphone.capex_carbon

    sweep = lifetime_sweep(embodied, annual_energy, US_GRID.intensity)

    # Replacement question: a new device 30% more efficient, same
    # embodied carbon. How long to pay back the new manufacturing?
    new_embodied = embodied
    payback_30pct = replacement_break_even_years(
        new_embodied,
        old_annual_energy=annual_energy,
        new_annual_energy=annual_energy * 0.70,
        grid=US_GRID.intensity,
    )
    payback_worse = replacement_break_even_years(
        new_embodied,
        old_annual_energy=annual_energy,
        new_annual_energy=annual_energy * 1.10,
        grid=US_GRID.intensity,
    )
    replacement = Table.from_records(
        [
            {"scenario": "new_device_30pct_more_efficient",
             "payback_years": payback_30pct},
            {"scenario": "new_device_10pct_less_efficient",
             "payback_years": payback_worse},
        ]
    )

    annualized = sweep.column("annualized_kg")
    embodied_share = sweep.column("embodied_share")
    three_year = annualized_footprint(
        embodied, annual_energy, US_GRID.intensity, 3.0
    )
    six_year = annualized_footprint(
        embodied, annual_energy, US_GRID.intensity, 6.0
    )

    checks = [
        Check.boolean(
            "annualized_footprint_falls_with_lifetime",
            all(a > b for a, b in zip(annualized, annualized[1:])),
        ),
        Check.boolean(
            "embodied_share_falls_with_lifetime",
            all(a > b for a, b in zip(embodied_share, embodied_share[1:])),
        ),
        Check(
            "doubling_lifetime_nearly_halves_annual_footprint",
            0.52,
            six_year.grams / three_year.grams,
            rel_tolerance=0.10,
        ),
        Check.boolean(
            # Embodied dominates, so a 30%-efficiency upgrade needs many
            # times the device lifetime to pay back.
            "efficiency_upgrade_never_pays_back_within_lifetime",
            payback_30pct > 3.0 * iphone.lifetime_years,
        ),
        Check.boolean(
            "less_efficient_replacement_never_pays_back",
            payback_worse == float("inf"),
        ),
    ]
    return ExperimentResult(
        experiment_id="ext06",
        title=TITLE,
        tables={"lifetime_sweep": sweep, "replacement": replacement},
        checks=checks,
        notes=[
            "Annual energy is backed out of the iPhone 11 LCA's use stage"
            " at the US grid; embodied carbon is its capex total.",
        ],
    )
