"""Result and check types shared by all experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExperimentError
from ..report.tables import render_table
from ..tabular import Table

__all__ = ["Check", "ExperimentResult"]


@dataclass(frozen=True, slots=True)
class Check:
    """A paper-reported anchor compared against our measurement.

    ``expected`` is what the paper states; ``measured`` is what this
    repository computes; the check passes when the relative deviation
    is within ``rel_tolerance``. Boolean claims encode expected=1.0 and
    measured in {0.0, 1.0}.
    """

    name: str
    expected: float
    measured: float
    rel_tolerance: float = 0.05

    def __post_init__(self) -> None:
        if self.rel_tolerance < 0.0:
            raise ExperimentError(f"{self.name}: tolerance must be non-negative")

    @property
    def deviation(self) -> float:
        """Relative deviation of measured from expected."""
        if self.expected == 0.0:
            return abs(self.measured)
        return abs(self.measured - self.expected) / abs(self.expected)

    @property
    def ok(self) -> bool:
        return self.deviation <= self.rel_tolerance

    @classmethod
    def boolean(cls, name: str, claim: bool) -> "Check":
        """A pass/fail claim with no numeric tolerance."""
        return cls(name=name, expected=1.0, measured=1.0 if claim else 0.0,
                   rel_tolerance=0.0)


@dataclass
class ExperimentResult:
    """Everything a driver produces for one paper artifact."""

    experiment_id: str
    title: str
    tables: dict[str, Table] = field(default_factory=dict)
    checks: list[Check] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    charts: dict[str, str] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(check.ok for check in self.checks)

    def failed_checks(self) -> list[Check]:
        return [check for check in self.checks if not check.ok]

    def check(self, name: str) -> Check:
        for check in self.checks:
            if check.name == name:
                return check
        raise ExperimentError(
            f"{self.experiment_id}: no check named {name!r}; "
            f"have {[c.name for c in self.checks]}"
        )

    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise ExperimentError(
                f"{self.experiment_id}: no table named {name!r}; "
                f"have {sorted(self.tables)}"
            )
        return self.tables[name]

    def checks_table(self) -> Table:
        """The paper-vs-measured summary as a table."""
        if not self.checks:
            raise ExperimentError(f"{self.experiment_id}: no checks recorded")
        return Table.from_records(
            [
                {
                    "check": check.name,
                    "paper": check.expected,
                    "measured": check.measured,
                    "deviation": check.deviation,
                    "ok": check.ok,
                }
                for check in self.checks
            ]
        )

    def render(self) -> str:
        """Full text report: tables, charts, checks, notes."""
        sections: list[str] = [f"{self.experiment_id}: {self.title}"]
        sections.append("=" * len(sections[0]))
        for name, table in self.tables.items():
            sections.append(render_table(table, title=name))
            sections.append("")
        for name, chart in self.charts.items():
            sections.append(f"{name}\n{'-' * len(name)}\n{chart}")
            sections.append("")
        if self.checks:
            sections.append(
                render_table(self.checks_table(), title="paper vs measured")
            )
        for note in self.notes:
            sections.append(f"note: {note}")
        return "\n".join(sections)
