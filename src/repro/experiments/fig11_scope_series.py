"""Figure 11: Facebook and Google carbon footprints by scope.

Paper claims reproduced: Facebook's 2019 Scope 3 is 23x its
market-based Scope 2 (5.8 Mt vs 252 kt); Google's 2018 Scope 3 is ~21x
its market-based Scope 2 (14 Mt vs 684 kt); Google's Scope 3 jumped
~5x between 2017 and 2018 on a disclosure change while location-based
Scope 2 grew only ~30%; and for both companies market-based Scope 2
falls over the series while location-based Scope 2 rises (the impact
of buying renewable energy).
"""

from __future__ import annotations

from ..analysis.trends import is_monotonic
from ..data.corporate import facebook_series, google_series
from ..report.charts import line_chart
from ..tabular import col
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Facebook and Google carbon footprint by scope"


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    facebook = facebook_series()
    google = google_series()
    fb_table = facebook.scope_table()
    goog_table = google.scope_table()

    fb_2019 = facebook.inventory(2019)
    goog_2018 = google.inventory(2018)
    goog_2017 = google.inventory(2017)

    goog_scope3_jump = (
        goog_2018.scope3_total().grams / goog_2017.scope3_total().grams
    )
    goog_location_growth = (
        goog_table.where("year", "==", 2018).row(0)["scope2_location_t"]
        / goog_table.where("year", "==", 2017).row(0)["scope2_location_t"]
    )

    checks = [
        Check("facebook_2019_scope3_megatonnes", 5.8,
              fb_2019.scope3_total().megatonnes_value, rel_tolerance=0.0),
        Check("facebook_2019_scope2_market_kilotonnes", 252.0,
              fb_2019.scope_total(
                  type(fb_2019.entries[0].scope).SCOPE2_MARKET
              ).kilotonnes_value, rel_tolerance=0.0),
        Check("facebook_2019_scope3_to_scope2_ratio", 23.0,
              fb_2019.scope3_to_scope2_ratio(), rel_tolerance=0.02),
        Check("google_2018_scope3_megatonnes", 14.0,
              goog_2018.scope3_total().megatonnes_value, rel_tolerance=0.0),
        Check("google_2018_scope3_to_scope2_ratio", 21.0,
              goog_2018.scope3_to_scope2_ratio(), rel_tolerance=0.05),
        Check("google_scope3_disclosure_jump", 5.0, goog_scope3_jump,
              rel_tolerance=0.05),
        Check("google_location_scope2_growth", 1.30, goog_location_growth,
              rel_tolerance=0.05),
        Check.boolean(
            "facebook_market_scope2_falls_2016_to_2018",
            is_monotonic(
                fb_table.where((col("year") >= 2016) & (col("year") <= 2018))
                .column("scope2_market_t"),
                increasing=False,
            ),
        ),
        Check.boolean(
            "facebook_2019_market_far_below_location",
            fb_table.where("year", "==", 2019).row(0)["scope2_market_t"]
            < 0.15
            * fb_table.where("year", "==", 2019).row(0)[
                "scope2_location_t"
            ],
        ),
        Check.boolean(
            "location_scope2_rises_for_both",
            is_monotonic(fb_table.column("scope2_location_t"), increasing=True)
            and is_monotonic(goog_table.column("scope2_location_t"), increasing=True),
        ),
    ]
    chart = line_chart(
        [float(year) for year in fb_table.column("year")],
        {
            "fb_scope3": fb_table.column("scope3_t"),
            "fb_scope2_market": fb_table.column("scope2_market_t"),
            "fb_scope2_location": fb_table.column("scope2_location_t"),
        },
    )
    return ExperimentResult(
        experiment_id="fig11",
        title=TITLE,
        tables={"facebook": fb_table, "google": goog_table},
        checks=checks,
        charts={"facebook_series": chart},
        notes=[
            "Non-anchor years are estimated from the figure; anchor years"
            " (Facebook 2019, Google 2017/2018) are exact.",
        ],
    )
