"""Extension: embodied carbon across the process-node roadmap.

Section V argues manufacturing emissions grow as fabrication advances;
this sweep quantifies it: per-cm^2 wafer carbon rises monotonically
from 65nm to 3nm, and pairing renewable fab energy with PFC abatement
attacks both wedges where neither lever alone suffices.
"""

from __future__ import annotations

from ..data.grids import TAIWAN_GRID
from ..fab.abatement import AbatementPolicy
from ..fab.process import NODE_ROADMAP
from ..fab.wafer import WaferFootprintModel
from ..report.charts import bar_chart
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Wafer carbon across the process-node roadmap"


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    abatement = AbatementPolicy(coverage=0.9, destruction_efficiency=0.95)
    records = []
    for node in NODE_ROADMAP:
        model = WaferFootprintModel.from_node(node, TAIWAN_GRID.intensity)
        base_total = model.baseline.total.kilograms
        renewables_only = model.with_energy_improvement(64.0).total.kilograms
        both = abatement.apply(model.with_energy_improvement(64.0)).total.kilograms
        records.append(
            {
                "node": node.name,
                "per_cm2_kg": model.carbon_per_cm2().kilograms,
                "wafer_kg": base_total,
                "renewables_64x_kg": renewables_only,
                "renewables_plus_abatement_kg": both,
            }
        )
    table = Table.from_records(records)

    per_cm2 = table.column("per_cm2_kg")
    renewables = table.column("renewables_64x_kg")
    combined = table.column("renewables_plus_abatement_kg")
    wafer = table.column("wafer_kg")
    checks = [
        Check.boolean(
            "per_area_carbon_rises_with_node_advancement",
            all(a < b for a, b in zip(per_cm2, per_cm2[1:])),
        ),
        Check(
            "3nm_to_65nm_per_area_ratio", 3.5, per_cm2[-1] / per_cm2[0],
            rel_tolerance=0.25,
        ),
        Check.boolean(
            "renewables_alone_leave_large_residual",
            all(r > 0.25 * w for r, w in zip(renewables, wafer)),
        ),
        Check.boolean(
            "abatement_composes_with_renewables",
            all(c < 0.5 * r for c, r in zip(combined, renewables)),
        ),
    ]
    chart = bar_chart(
        table.column("node"), per_cm2, value_format="{:.2f} kg/cm2"
    )
    return ExperimentResult(
        experiment_id="ext03",
        title=TITLE,
        tables={"roadmap": table},
        checks=checks,
        charts={"per_cm2": chart},
    )
