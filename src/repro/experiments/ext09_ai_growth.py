"""Extension: AI fleet growth vs efficiency — who wins?

The introduction anchors: Facebook's AI training hardware grew 4x and
inference hardware 3.5x in under two years, while each generation got
more efficient. This experiment runs the race with the growth model:
carbon per unit of work falls every year, yet total carbon rises and
the embodied share climbs — efficiency alone cannot outrun compounding
demand, the paper's "if left unchecked" warning.
"""

from __future__ import annotations

import math

from ..analysis.growth import (
    FACEBOOK_TRAINING_GROWTH_2YR,
    GrowthScenario,
    growth_trajectory,
)
from ..data.energy_sources import source_by_name
from ..data.grids import US_GRID
from ..datacenter.server import AI_TRAINING_SERVER
from ..units import CarbonIntensity
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "AI fleet growth vs efficiency gains"

_YEARS = 5


def _scenario(grid: CarbonIntensity, name: str) -> GrowthScenario:
    annual_growth = math.sqrt(FACEBOOK_TRAINING_GROWTH_2YR)  # 4x per 2 years
    return GrowthScenario(
        name=name,
        initial_units=5_000.0,
        embodied_per_unit=AI_TRAINING_SERVER.embodied_carbon(),
        unit_lifetime_years=AI_TRAINING_SERVER.lifetime_years,
        initial_energy_per_unit=AI_TRAINING_SERVER.annual_energy(0.7),
        fleet_growth_per_year=annual_growth,
        efficiency_gain_per_year=1.35,
        grid=grid,
    )


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    wind = source_by_name("wind").intensity
    dirty = growth_trajectory(_scenario(US_GRID.intensity, "us_grid"), _YEARS)
    clean = growth_trajectory(_scenario(wind, "wind_grid"), _YEARS)

    units = dirty.column("units")
    dirty_totals = dirty.column("total_t")
    clean_totals = clean.column("total_t")
    dirty_share = dirty.column("embodied_share")
    clean_share = clean.column("embodied_share")
    per_work = dirty.column("carbon_per_unit_work")

    checks = [
        Check(
            "fleet_grows_4x_per_two_years",
            4.0,
            units[2] / units[0],
            rel_tolerance=0.01,
        ),
        Check.boolean(
            "carbon_per_unit_work_falls_every_year",
            all(a > b for a, b in zip(per_work, per_work[1:])),
        ),
        Check.boolean(
            "total_carbon_rises_on_both_grids",
            all(a < b for a, b in zip(dirty_totals, dirty_totals[1:]))
            and all(a < b for a, b in zip(clean_totals, clean_totals[1:])),
        ),
        Check.boolean(
            "embodied_share_climbs_on_dirty_grid",
            all(a <= b for a, b in zip(dirty_share, dirty_share[1:])),
        ),
        Check.boolean(
            # With renewable power, embodied carbon is the majority of
            # the AI fleet's footprint from day one — the data-center
            # version of the paper's thesis.
            "embodied_majority_under_renewables",
            all(share > 0.5 for share in clean_share),
        ),
        Check.boolean(
            "renewables_shrink_but_do_not_stop_growth",
            clean_totals[-1] < 0.25 * dirty_totals[-1]
            and clean_totals[-1] > clean_totals[0],
        ),
    ]
    return ExperimentResult(
        experiment_id="ext09",
        title=TITLE,
        tables={"us_grid": dirty, "wind_grid": clean},
        checks=checks,
        notes=[
            "Growth anchored to the paper's 4x-in-two-years figure for"
            " Facebook AI training hardware; efficiency gain of 1.35x/yr"
            " blends hardware generations and algorithmic progress.",
            "On the US grid operational carbon still dominates a"
            " power-hungry training fleet; under wind power the embodied"
            " column is the majority from the first year.",
        ],
    )
