"""Central registry of experiment drivers."""

from __future__ import annotations

import importlib
from typing import Callable

from ..errors import ExperimentError
from .result import ExperimentResult

__all__ = ["EXPERIMENT_IDS", "get_experiment", "run_experiment", "run_all"]

#: Experiment id -> module path (relative to this package).
_MODULES: dict[str, str] = {
    "fig01": "fig01_ict_projections",
    "fig02": "fig02_opex_capex_shift",
    "fig05": "fig05_apple_breakdown",
    "fig06": "fig06_device_lca",
    "fig07": "fig07_generational_trends",
    "fig08": "fig08_pareto",
    "fig09": "fig09_inference",
    "fig10": "fig10_breakeven",
    "fig11": "fig11_scope_series",
    "fig12": "fig12_fb_scope3",
    "fig13": "fig13_renewable_shift",
    "fig14": "fig14_tsmc_wafer",
    "tab01": "tab01_scope_taxonomy",
    "tab02": "tab02_energy_sources",
    "tab03": "tab03_grid_intensity",
    "tab04": "tab04_macpro",
    "ext01": "ext01_scheduler",
    "ext02": "ext02_embodied_validation",
    "ext03": "ext03_node_sweep",
    "ext04": "ext04_fleet",
    "ext05": "ext05_levers",
    "ext06": "ext06_lifetime",
    "ext07": "ext07_vendor",
    "ext08": "ext08_heterogeneity",
    "ext09": "ext09_ai_growth",
}

EXPERIMENT_IDS: tuple[str, ...] = tuple(_MODULES)


def get_experiment(experiment_id: str) -> Callable[[], ExperimentResult]:
    """Resolve an experiment id to its ``run`` callable."""
    if experiment_id not in _MODULES:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; have {list(_MODULES)}"
        )
    module = importlib.import_module(
        f".{_MODULES[experiment_id]}", package=__package__
    )
    return module.run


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id and return its result."""
    return get_experiment(experiment_id)()


def run_all() -> dict[str, ExperimentResult]:
    """Run the entire evaluation, in registry order."""
    return {
        experiment_id: run_experiment(experiment_id)
        for experiment_id in EXPERIMENT_IDS
    }
