"""Central registry of experiment drivers.

Every driver module exposes ``run() -> ExperimentResult`` plus a
``TITLE`` constant, so listing the catalogue costs imports, not
simulations. Experiments are deterministic and take no inputs, which
makes three accelerations safe:

* an in-process result cache keyed by the driver module's source
  content (editing a driver invalidates only its own entry),
* a content-addressed on-disk cache (:class:`repro.exec.ResultCache`,
  keyed by the driver digest *and* the whole-package source
  fingerprint) shared across processes and CLI invocations — pass
  ``cache_dir=`` to opt in, and
* ``run_all(parallel=True)``, which fans the drivers out over a
  process pool; each worker reads and writes the shared disk cache, so
  a warm cache skips the pool entirely and a crashed run keeps every
  completed result.

The parallel path rides the same wave-based fault-tolerant engine as
:func:`repro.exec.run_sharded`: ``retries=`` re-runs drivers that
raise or whose worker dies (deterministic seeded backoff), a per-run
``timeout=`` bounds hung drivers, and ``on_error="skip"`` returns the
results that completed instead of aborting the whole evaluation.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import time
from dataclasses import replace
from types import ModuleType
from typing import Callable

from ..errors import ExperimentError
from ..exec import ResultCache, RetryPolicy, cache_key, package_fingerprint
from ..exec.runner import _PoolTask, _run_pool_tasks
from ..obs.recorder import active_recorder
from .result import ExperimentResult

__all__ = [
    "EXPERIMENT_IDS",
    "get_experiment",
    "experiment_title",
    "experiment_titles",
    "clear_result_cache",
    "run_experiment",
    "run_all",
]

#: Experiment id -> module path (relative to this package).
_MODULES: dict[str, str] = {
    "fig01": "fig01_ict_projections",
    "fig02": "fig02_opex_capex_shift",
    "fig05": "fig05_apple_breakdown",
    "fig06": "fig06_device_lca",
    "fig07": "fig07_generational_trends",
    "fig08": "fig08_pareto",
    "fig09": "fig09_inference",
    "fig10": "fig10_breakeven",
    "fig11": "fig11_scope_series",
    "fig12": "fig12_fb_scope3",
    "fig13": "fig13_renewable_shift",
    "fig14": "fig14_tsmc_wafer",
    "tab01": "tab01_scope_taxonomy",
    "tab02": "tab02_energy_sources",
    "tab03": "tab03_grid_intensity",
    "tab04": "tab04_macpro",
    "ext01": "ext01_scheduler",
    "ext02": "ext02_embodied_validation",
    "ext03": "ext03_node_sweep",
    "ext04": "ext04_fleet",
    "ext05": "ext05_levers",
    "ext06": "ext06_lifetime",
    "ext07": "ext07_vendor",
    "ext08": "ext08_heterogeneity",
    "ext09": "ext09_ai_growth",
    "ext10": "ext10_temporal_shifting",
    "ext11": "ext11_device_portfolio",
}

EXPERIMENT_IDS: tuple[str, ...] = tuple(_MODULES)

#: experiment id -> (source fingerprint, result). Results are served as
#: shallow copies so a caller mutating its copy cannot poison the cache.
_RESULT_CACHE: dict[str, tuple[str, ExperimentResult]] = {}


def _module(experiment_id: str) -> ModuleType:
    if experiment_id not in _MODULES:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; have {list(_MODULES)}"
        )
    return importlib.import_module(
        f".{_MODULES[experiment_id]}", package=__package__
    )


def get_experiment(experiment_id: str) -> Callable[[], ExperimentResult]:
    """Resolve an experiment id to its ``run`` callable."""
    return _module(experiment_id).run


def experiment_title(experiment_id: str) -> str:
    """The experiment's title, without running it."""
    return _module(experiment_id).TITLE


def experiment_titles() -> dict[str, str]:
    """id -> title for the whole catalogue; costs imports, not runs."""
    return {
        experiment_id: experiment_title(experiment_id)
        for experiment_id in EXPERIMENT_IDS
    }


def _fingerprint(experiment_id: str) -> str:
    """Content key: the driver module's source digest."""
    module = _module(experiment_id)
    source = getattr(module, "__file__", None)
    if source is None or not os.path.exists(source):
        return "<no-source>"
    with open(source, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def _copy_result(result: ExperimentResult) -> ExperimentResult:
    return replace(
        result,
        tables=dict(result.tables),
        checks=list(result.checks),
        notes=list(result.notes),
        charts=dict(result.charts),
    )


def clear_result_cache() -> None:
    """Drop every cached experiment result (in-process entries only)."""
    _RESULT_CACHE.clear()


def _disk_key(experiment_id: str, fingerprint: str) -> str:
    """The on-disk cache key: driver digest + whole-package fingerprint.

    The package fingerprint makes the disk cache safe across sessions:
    a kernel edit anywhere in ``repro`` orphans every entry, even when
    the driver module itself is untouched (the in-process cache never
    outlives the code it ran, so it needs only the driver digest).
    """
    return cache_key("experiment", experiment_id, fingerprint, package_fingerprint())


def run_experiment(
    experiment_id: str,
    *,
    cache: bool = False,
    cache_dir: "str | os.PathLike[str] | None" = None,
) -> ExperimentResult:
    """Run one experiment by id and return its result.

    With ``cache=True`` a result computed earlier in this process is
    reused as long as the driver module's source is unchanged
    (experiments are deterministic and input-free, so the cache can
    only go stale through code edits — which the content key detects).
    ``cache_dir`` additionally consults and fills the shared on-disk
    cache at that directory, so results survive the process and are
    visible to concurrent workers.
    """
    recorder = active_recorder()
    if not cache and cache_dir is None:
        with recorder.span("experiment", id=experiment_id):
            return get_experiment(experiment_id)()
    fingerprint = _fingerprint(experiment_id)
    if cache:
        entry = _RESULT_CACHE.get(experiment_id)
        if entry is not None and entry[0] == fingerprint:
            recorder.event("cache", scope="memory", op="hit")
            return _copy_result(entry[1])
        recorder.event("cache", scope="memory", op="miss")
    disk = ResultCache(cache_dir) if cache_dir is not None else None
    result: ExperimentResult | None = None
    if disk is not None:
        value = disk.get(_disk_key(experiment_id, fingerprint))
        # A wrong-typed entry (foreign pickle under a colliding key) is
        # a miss, not an error.
        if isinstance(value, ExperimentResult):
            result = value
    if result is None:
        with recorder.span("experiment", id=experiment_id):
            result = get_experiment(experiment_id)()
        if disk is not None:
            disk.put(_disk_key(experiment_id, fingerprint), result)
    if cache:
        _RESULT_CACHE[experiment_id] = (fingerprint, result)
    return _copy_result(result)


def _run_for_pool(
    experiment_id: str, cache_dir: "str | None", attempt: int = 1
) -> ExperimentResult:
    """Pool task: one driver run (``attempt`` is engine bookkeeping)."""
    return run_experiment(experiment_id, cache_dir=cache_dir)


def run_all(
    *,
    parallel: bool = False,
    max_workers: int | None = None,
    cache: bool = True,
    cache_dir: "str | os.PathLike[str] | None" = None,
    retries: "RetryPolicy | int | None" = None,
    timeout: "float | None" = None,
    on_error: str = "raise",
) -> dict[str, ExperimentResult]:
    """Run the entire evaluation, in registry order.

    ``parallel=True`` distributes the drivers over a
    :class:`~concurrent.futures.ProcessPoolExecutor` (``max_workers``
    caps the pool; default: one per pending driver up to the CPU
    count); results come back in registry order regardless of
    completion order, and cached entries skip the pool entirely.
    ``cache_dir`` shares an on-disk cache across the pool's worker
    processes and across CLI invocations: warm entries skip the pool,
    and every freshly computed result is persisted by the worker that
    produced it.

    Fault tolerance mirrors :func:`repro.exec.run_sharded`:
    ``retries`` re-runs drivers that raise or whose worker dies, the
    per-driver ``timeout`` (parallel mode only — sequential drivers
    run on the calling thread and cannot be cancelled) bounds hangs,
    and ``on_error="skip"`` returns whatever completed — missing ids
    in the returned mapping name the drivers that exhausted their
    attempts.
    """
    disk = ResultCache(cache_dir) if cache_dir is not None else None
    results: dict[str, ExperimentResult] = {}
    pending: list[str] = []
    for experiment_id in EXPERIMENT_IDS:
        fingerprint = (
            _fingerprint(experiment_id) if cache or disk is not None else ""
        )
        if cache:
            entry = _RESULT_CACHE.get(experiment_id)
            if entry is not None and entry[0] == fingerprint:
                active_recorder().event("cache", scope="memory", op="hit")
                results[experiment_id] = _copy_result(entry[1])
                continue
        if disk is not None:
            value = disk.get(_disk_key(experiment_id, fingerprint))
            if isinstance(value, ExperimentResult):
                if cache:
                    _RESULT_CACHE[experiment_id] = (fingerprint, value)
                    value = _copy_result(value)
                results[experiment_id] = value
                continue
        pending.append(experiment_id)

    if max_workers is not None and max_workers <= 0:
        raise ExperimentError(
            f"max_workers must be positive, got {max_workers}"
        )
    if on_error not in ("raise", "skip"):
        raise ExperimentError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}"
        )
    if timeout is not None and not parallel:
        raise ExperimentError(
            "a per-driver timeout needs parallel=True: sequential drivers "
            "run on the calling thread and cannot be cancelled"
        )
    retry = RetryPolicy.coerce(retries)
    cache_dir_arg = os.fspath(cache_dir) if cache_dir is not None else None
    if pending:
        if parallel:
            workers = (
                max_workers
                if max_workers is not None
                else min(len(pending), os.cpu_count() or 1)
            )
            tasks = [
                _PoolTask(
                    key=experiment_id, stream=index, args=(experiment_id, cache_dir_arg)
                )
                for index, experiment_id in enumerate(pending)
            ]
            completed, failures = _run_pool_tasks(
                tasks,
                task_fn=_run_for_pool,
                workers=min(workers, len(tasks)),
                retry=retry,
                timeout=timeout,
                scope="experiment",
            )
            if failures and on_error == "raise":
                order = {
                    experiment_id: index
                    for index, experiment_id in enumerate(pending)
                }
                first = min(failures, key=lambda failure: order[failure.key])
                raise ExperimentError(
                    f"experiment {first.key!r} failed after {first.attempts} "
                    f"attempt(s) [{first.kind}]: {first.message}"
                ) from first.error
            failed = {failure.key for failure in failures}
            pending = [
                experiment_id
                for experiment_id in pending
                if experiment_id not in failed
            ]
            for experiment_id in pending:
                results[experiment_id] = completed[experiment_id]
        else:
            completed_ids = []
            for index, experiment_id in enumerate(pending):
                last_error: "Exception | None" = None
                for attempt in range(1, retry.max_attempts + 1):
                    try:
                        results[experiment_id] = run_experiment(
                            experiment_id, cache_dir=cache_dir
                        )
                        last_error = None
                        break
                    except Exception as error:
                        last_error = error
                        if attempt < retry.max_attempts:
                            time.sleep(retry.delay(index, attempt))
                if last_error is not None:
                    if on_error == "raise":
                        if retry.max_attempts == 1:
                            # No retry budget: surface the driver's own
                            # exception, as run_all always has.
                            raise last_error
                        raise ExperimentError(
                            f"experiment {experiment_id!r} failed after "
                            f"{retry.max_attempts} attempt(s): {last_error}"
                        ) from last_error
                    continue
                completed_ids.append(experiment_id)
            pending = completed_ids
        if cache:
            for experiment_id in pending:
                _RESULT_CACHE[experiment_id] = (
                    _fingerprint(experiment_id),
                    results[experiment_id],
                )
                # Hand the caller a copy so the cached entry stays clean.
                results[experiment_id] = _copy_result(results[experiment_id])

    return {
        experiment_id: results[experiment_id]
        for experiment_id in EXPERIMENT_IDS
        if experiment_id in results
    }
