"""Figure 10: manufacturing-vs-operational break-even on a Pixel 3.

Paper claims reproduced: with the Pixel 3's integrated-circuit
embodied carbon (half of production) and the US grid (380 g/kWh),
operational emissions reach parity with manufacturing after 200M
images (ResNet-50, CPU), 150M (Inception v3, CPU), 5B (MobileNet v3,
CPU), and 10B (MobileNet v3, DSP); in wall-clock terms 350 days of
continuous MobileNet v3 CPU inference and ~1,200 days on the DSP —
beyond the ~1,100-day (3-year) device lifetime.
"""

from __future__ import annotations

from ..mobile.device import pixel3
from ..report.charts import bar_chart
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Break-even between manufacturing and operational carbon (Pixel 3)"

_MODELS = ("resnet50", "inception_v3", "mobilenet_v2", "mobilenet_v3")
_PROCESSORS = ("cpu", "gpu", "dsp")

#: ImageNet's training-set size, the paper's yardstick.
IMAGENET_IMAGES = 14e6


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    phone = pixel3()
    records = []
    for model in _MODELS:
        for processor in _PROCESSORS:
            images = phone.break_even_images(model, processor)
            days = phone.break_even_days(model, processor)
            records.append(
                {
                    "model": model,
                    "processor": processor,
                    "break_even_images": images,
                    "break_even_days": days,
                    "imagenet_multiples": images / IMAGENET_IMAGES,
                    "within_lifetime": phone.amortizes_within_lifetime(
                        model, processor
                    ),
                }
            )
    table = Table.from_records(records)

    def images(model: str, proc: str) -> float:
        return phone.break_even_images(model, proc)

    def days(model: str, proc: str) -> float:
        return phone.break_even_days(model, proc)

    lifetime_days = phone.lca.lifetime_years * 365.0
    checks = [
        Check("ic_capex_kg", 22.4, phone.ic_capex.kilograms, rel_tolerance=0.0),
        Check("resnet50_cpu_images", 200e6, images("resnet50", "cpu"),
              rel_tolerance=0.02),
        Check("inception_v3_cpu_images", 150e6, images("inception_v3", "cpu"),
              rel_tolerance=0.02),
        Check("mobilenet_v3_cpu_images", 5e9, images("mobilenet_v3", "cpu"),
              rel_tolerance=0.02),
        Check("mobilenet_v3_dsp_images", 10e9, images("mobilenet_v3", "dsp"),
              rel_tolerance=0.02),
        Check("mobilenet_v3_cpu_days", 350.0, days("mobilenet_v3", "cpu"),
              rel_tolerance=0.02),
        Check("mobilenet_v3_dsp_days", 1200.0, days("mobilenet_v3", "dsp"),
              rel_tolerance=0.05),
        Check("mobilenet_v3_vs_resnet_images", 25.0,
              images("mobilenet_v3", "cpu") / images("resnet50", "cpu"),
              rel_tolerance=0.05),
        Check.boolean(
            "mobilenet_v3_dsp_beyond_lifetime",
            days("mobilenet_v3", "dsp") > lifetime_days,
        ),
        Check.boolean(
            "breakeven_exceeds_imagenet_everywhere",
            all(record["imagenet_multiples"] > 1.0 for record in records),
        ),
    ]
    chart = bar_chart(
        [f"{r['model']}/{r['processor']}" for r in records],
        [r["break_even_days"] for r in records],
        value_format="{:.0f} d",
    )
    return ExperimentResult(
        experiment_id="fig10",
        title=TITLE,
        tables={"break_even": table},
        checks=checks,
        charts={"break_even_days": chart},
        notes=[
            "Device lifetime is 3 years (~1,095 days); the DSP break-even of"
            " ~1,200 days lands beyond it, the paper's Takeaway 6.",
        ],
    )
