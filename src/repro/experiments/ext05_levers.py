"""Extension: ranking the paper's reduction levers on one baseline.

Section VI lists interventions across the computing stack. This
experiment applies four of them to the same data-center scenario —
renewable procurement, carbon-aware scheduling, hardware scale-down,
lifetime extension — and ranks them by annual carbon saved, twice:
once on a dirty grid and once on an already-renewable grid. The
reproduced structural claim: opex levers dominate on dirty grids and
collapse on clean ones, where only capex levers (scale-down, lifetime)
still move the total.
"""

from __future__ import annotations

from ..analysis.levers import (
    FootprintScenario,
    carbon_aware_scheduling_lever,
    compare_levers,
    lifetime_extension_lever,
    renewable_energy_lever,
    scale_down_lever,
)
from ..data.grids import US_GRID
from ..report.tables import render_table
from ..units import Carbon, CarbonIntensity, Energy
from .result import Check, ExperimentResult

__all__ = ["run", "baseline_scenario"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Reduction levers ranked on dirty vs clean grids"


def baseline_scenario(grid: CarbonIntensity) -> FootprintScenario:
    """A 50k-server cluster: ~420 GWh/yr and ~21 kt embodied."""
    return FootprintScenario(
        name="cluster",
        annual_energy=Energy.gwh(420.0),
        grid=grid,
        embodied_total=Carbon.kilotonnes(85.0),
        lifetime_years=4.0,
    )


def _levers():
    return [
        renewable_energy_lever(CarbonIntensity.g_per_kwh(11.0), coverage=1.0),
        carbon_aware_scheduling_lever(intensity_reduction=0.20),
        scale_down_lever(embodied_reduction=0.30, energy_penalty=0.05),
        lifetime_extension_lever(extra_years=2.0),
    ]


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    dirty = compare_levers(baseline_scenario(US_GRID.intensity), _levers())
    clean_grid = CarbonIntensity.g_per_kwh(11.0)
    clean = compare_levers(baseline_scenario(clean_grid), _levers())

    def top(table) -> str:
        return table.row(0)["lever"]

    def saved(table, lever: str) -> float:
        return table.where("lever", "==", lever).row(0)[
            "saved_t_per_year"
        ]

    checks = [
        Check.boolean(
            "renewables_win_on_dirty_grid", top(dirty) == "renewable_energy"
        ),
        Check.boolean(
            "capex_lever_wins_on_clean_grid",
            top(clean) in ("scale_down_hardware", "lifetime_extension"),
        ),
        Check.boolean(
            "scheduling_collapses_on_clean_grid",
            saved(clean, "carbon_aware_scheduling")
            < 0.05 * saved(dirty, "carbon_aware_scheduling"),
        ),
        Check.boolean(
            "lifetime_extension_grid_independent",
            abs(
                saved(clean, "lifetime_extension")
                - saved(dirty, "lifetime_extension")
            )
            < 1e-6,
        ),
        Check.boolean(
            # On a dirty grid the 5% energy penalty of leaner hardware
            # outweighs the embodied savings...
            "scale_down_backfires_on_dirty_grid",
            saved(dirty, "scale_down_hardware") < 0.0,
        ),
        Check.boolean(
            # ...but on a clean grid the embodied savings win outright.
            "scale_down_wins_on_clean_grid",
            saved(clean, "scale_down_hardware") > 0.0,
        ),
        Check.boolean(
            "opex_levers_save_on_dirty_grid",
            saved(dirty, "renewable_energy") > 0.0
            and saved(dirty, "carbon_aware_scheduling") > 0.0
            and saved(dirty, "lifetime_extension") > 0.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="ext05",
        title=TITLE,
        tables={"dirty_grid": dirty, "clean_grid": clean},
        checks=checks,
        notes=[
            "Opex levers (renewables, scheduling) dominate on the US grid"
            " but are worth little once the grid is wind-powered; only the"
            " capex levers keep paying — the paper's core argument.",
            "Scale-down carries a 5% energy penalty here: on the dirty grid"
            " it backfires (operational growth beats embodied savings);"
            " on the clean grid it wins. Embodied-vs-operational tradeoffs"
            " are grid-dependent.",
        ],
    )


if __name__ == "__main__":
    result = run()
    print(render_table(result.tables["dirty_grid"], title="dirty grid"))
    print(render_table(result.tables["clean_grid"], title="clean grid"))
