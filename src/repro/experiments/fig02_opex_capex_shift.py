"""Figure 2: energy vs carbon at Prineville; opex/capex pie shifts.

Paper claims reproduced: Prineville's energy grew monotonically through
2013-2019 while its purchased-energy carbon fell to near zero; the
iPhone capex share grew from 49% (iPhone 3) to 86% (iPhone 11); and
Facebook's 2018 footprint is 65% opex on location-based accounting but
82% capex once renewable purchases are counted (market-based).
"""

from __future__ import annotations

import numpy as np

from ..data.corporate import facebook_series
from ..data.devices import device_by_name
from ..data.prineville import PRINEVILLE_SERIES
from ..report.charts import line_chart
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Carbon footprint depends on more than energy consumption"


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    prineville = Table.from_records(
        [
            {
                "year": record.year,
                "energy_gwh": record.energy.gigawatt_hours,
                "carbon_kt": record.purchased_energy_carbon.kilotonnes_value,
                "renewable_coverage": record.renewable_coverage,
            }
            for record in PRINEVILLE_SERIES
        ]
    )

    iphone_3gs = device_by_name("iphone_3gs")
    iphone_11 = device_by_name("iphone_11")
    facebook_2018 = facebook_series().inventory(2018)
    pies = Table.from_records(
        [
            {
                "subject": "iphone_3gs",
                "capex": iphone_3gs.capex_fraction,
                "opex": iphone_3gs.opex_fraction,
            },
            {
                "subject": "iphone_11",
                "capex": iphone_11.capex_fraction,
                "opex": iphone_11.opex_fraction,
            },
            {
                "subject": "facebook_2018_without_renewables",
                "capex": facebook_2018.capex_fraction(market_based=False),
                "opex": facebook_2018.opex_fraction(market_based=False),
            },
            {
                "subject": "facebook_2018_with_renewables",
                "capex": facebook_2018.capex_fraction(market_based=True),
                "opex": facebook_2018.opex_fraction(market_based=True),
            },
        ]
    )

    energy = prineville.column("energy_gwh")
    carbon = prineville.column("carbon_kt")
    energy_rising = bool(np.all(np.diff(np.asarray(energy)) > 0.0))
    peak_year = prineville.row(int(np.argmax(np.asarray(carbon))))["year"]

    checks = [
        Check.boolean("prineville_energy_monotone_rising", energy_rising),
        Check.boolean("prineville_carbon_peak_by_2017", peak_year <= 2017),
        Check.boolean(
            "prineville_2019_carbon_near_zero", carbon[-1] <= 0.05 * max(carbon)
        ),
        Check("iphone_3gs_capex_share", 0.49,
              pies.row(0)["capex"], rel_tolerance=0.03),
        Check("iphone_11_capex_share", 0.86,
              pies.row(1)["capex"], rel_tolerance=0.03),
        Check("facebook_2018_opex_share_location", 0.65,
              pies.row(2)["opex"], rel_tolerance=0.03),
        Check("facebook_2018_capex_share_market", 0.82,
              pies.row(3)["capex"], rel_tolerance=0.03),
    ]
    chart = line_chart(
        [float(record.year) for record in PRINEVILLE_SERIES],
        {"energy_gwh": energy, "carbon_kt": carbon},
    )
    return ExperimentResult(
        experiment_id="fig02",
        title=TITLE,
        tables={"prineville": prineville, "opex_capex_pies": pies},
        checks=checks,
        charts={"prineville_series": chart},
        notes=[
            "Prineville absolute values are estimated from the figure; the"
            " reproduced claim is the divergence between energy and carbon.",
        ],
    )
