"""Table I: salient GHG-Protocol scopes per technology-company type."""

from __future__ import annotations

from ..core.ghg import ScopeTaxonomy
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run", "TAXONOMIES"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Scope taxonomy for chip makers, device vendors, DC operators"

TAXONOMIES: tuple[ScopeTaxonomy, ...] = (
    ScopeTaxonomy(
        company_type="chip_manufacturer",
        scope1=("burning PFCs", "chemicals", "gases"),
        scope2=("energy for fabrication",),
        scope3=("raw materials", "hardware use"),
    ),
    ScopeTaxonomy(
        company_type="mobile_device_vendor",
        scope1=("natural gas", "diesel"),
        scope2=("energy for offices",),
        scope3=("chip manufacturing", "hardware use"),
    ),
    ScopeTaxonomy(
        company_type="datacenter_operator",
        scope1=("natural gas", "diesel"),
        scope2=("energy for data centers",),
        scope3=("server-hardware manufacturing", "construction"),
    ),
)


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    table = Table.from_records([dict(t.as_record()) for t in TAXONOMIES])
    checks = [
        Check("company_types", 3.0, float(table.num_rows), rel_tolerance=0.0),
        Check.boolean(
            "chip_manufacturer_scope1_includes_pfcs",
            "PFC" in table.row(0)["scope1"],
        ),
        Check.boolean(
            "datacenter_scope3_includes_construction",
            "construction" in table.row(2)["scope3"],
        ),
    ]
    return ExperimentResult(
        experiment_id="tab01",
        title=TITLE,
        tables={"taxonomy": table},
        checks=checks,
    )
