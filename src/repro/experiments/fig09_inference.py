"""Figure 9: inference latency and energy across CNNs and processors.

Paper claims reproduced on the simulated Pixel 3: MobileNet v2 is 17x
faster than Inception v3 on the CPU and another 3.2x faster on the
DSP; algorithmic advances cut inference energy ~36x (Inception v3 ->
MobileNet v3 on CPU) and the DSP halves MobileNet v3's energy. The
Monsoon-simulator cross-check integrates a sampled power trace and
must agree with the analytic energy within noise.
"""

from __future__ import annotations

from ..data.measurements import PIXEL3_IDLE_POWER_W
from ..mobile.inference import InferenceSimulator
from ..mobile.power_monitor import MonsoonSimulator
from ..report.charts import bar_chart
from ..tabular import Table
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Inference latency and energy across CNN and hardware generations"

_MODELS = ("resnet50", "inception_v3", "mobilenet_v2", "mobilenet_v3")
_PROCESSORS = ("cpu", "gpu", "dsp")


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    simulator = InferenceSimulator()
    rows = simulator.comparison_table(_MODELS, _PROCESSORS)
    table = Table.from_records([dict(row) for row in rows])

    def latency(model: str, proc: str) -> float:
        return simulator.latency_s(model, proc)

    def energy(model: str, proc: str) -> float:
        return simulator.energy_per_inference(model, proc).joules

    # Monsoon cross-check: integrate a 200-inference burst trace and
    # compare against analytic energy (idle floor added on top).
    monsoon = MonsoonSimulator(noise_fraction=0.02, seed=7)
    estimate = simulator.estimate("mobilenet_v3", "cpu")
    burst = monsoon.inference_burst(estimate, 200, PIXEL3_IDLE_POWER_W)
    trace_energy = burst.energy().joules / 200.0
    analytic_energy = estimate.energy_per_inference.joules

    checks = [
        Check("cpu_latency_inception_over_mobilenet_v2", 17.0,
              latency("inception_v3", "cpu") / latency("mobilenet_v2", "cpu"),
              rel_tolerance=0.05),
        Check("mobilenet_v2_cpu_over_dsp_latency", 3.2,
              latency("mobilenet_v2", "cpu") / latency("mobilenet_v2", "dsp"),
              rel_tolerance=0.05),
        Check("cpu_energy_inception_over_mobilenet_v3", 36.0,
              energy("inception_v3", "cpu") / energy("mobilenet_v3", "cpu"),
              rel_tolerance=0.15),
        Check("mobilenet_v3_cpu_over_dsp_energy", 2.0,
              energy("mobilenet_v3", "cpu") / energy("mobilenet_v3", "dsp"),
              rel_tolerance=0.05),
        Check("monsoon_trace_matches_analytic_energy", 1.0,
              trace_energy / analytic_energy, rel_tolerance=0.05),
        Check.boolean(
            "mobilenets_faster_than_heavyweights_everywhere",
            all(
                latency(light, proc) < latency(heavy, proc)
                for proc in _PROCESSORS
                for light in ("mobilenet_v2", "mobilenet_v3")
                for heavy in ("resnet50", "inception_v3")
            ),
        ),
    ]
    chart = bar_chart(
        [f"{row['model']}/{row['processor']}" for row in rows],
        [row["energy_mj"] for row in rows],
        value_format="{:.1f} mJ",
    )
    return ExperimentResult(
        experiment_id="fig09",
        title=TITLE,
        tables={"measurements": table},
        checks=checks,
        charts={"energy_per_inference": chart},
        notes=[
            "The paper's 36x energy annotation and its 150M-image break-even"
            " anchor are mutually inconsistent by ~8%; we calibrate to the"
            " break-even anchor, leaving this ratio at ~33x.",
        ],
    )
