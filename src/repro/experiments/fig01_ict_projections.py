"""Figure 1: projected global ICT electricity use, 2010-2030.

Paper claims reproduced: ICT was ~5% of global electricity demand in
2015 (data centers alone ~1%); by 2030 ICT reaches ~7% of demand on
the optimistic trajectory and ~20% on the expected trajectory.
"""

from __future__ import annotations

from ..analysis.projections import ict_projection
from ..report.charts import line_chart
from .result import Check, ExperimentResult

__all__ = ["run"]

#: Cheap registry metadata: the experiment title without run().
TITLE = "Projected global ICT energy consumption (optimistic vs expected)"


def run() -> ExperimentResult:
    """Run this experiment and return its tables and checks."""
    optimistic = ict_projection("optimistic")
    expected = ict_projection("expected")

    def share(table, year: int) -> float:
        row = table.where("year", "==", year).row(0)
        return row["ict_share"]

    def datacenter_share(table, year: int) -> float:
        row = table.where("year", "==", year).row(0)
        return row["datacenter_twh"] / row["global_demand_twh"]

    years = [row["year"] for row in optimistic]
    chart = line_chart(
        [float(year) for year in years],
        {
            "optimistic_total": [row["ict_total_twh"] for row in optimistic],
            "expected_total": [row["ict_total_twh"] for row in expected],
        },
    )

    checks = [
        Check("ict_share_2015_optimistic", 0.05, share(optimistic, 2015),
              rel_tolerance=0.20),
        Check("ict_share_2030_optimistic", 0.07, share(optimistic, 2030),
              rel_tolerance=0.10),
        Check("ict_share_2030_expected", 0.20, share(expected, 2030),
              rel_tolerance=0.10),
        Check("datacenter_share_2015", 0.01, datacenter_share(optimistic, 2015),
              rel_tolerance=0.20),
        Check.boolean(
            "expected_exceeds_optimistic_2030",
            share(expected, 2030) > share(optimistic, 2030),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig01",
        title=TITLE,
        tables={"optimistic": optimistic, "expected": expected},
        checks=checks,
        charts={"ict_total_twh": chart},
        notes=[
            "Anchor values follow Andrae & Edler (2015) as cited by the paper;"
            " intermediate years are geometric interpolations.",
        ],
    )
