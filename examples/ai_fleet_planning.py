"""AI fleet planning: growth, specialization, and lever ranking.

Puts three Section VI tools together the way a capacity planner would:

1. project an AI fleet that grows 4x every two years (the paper's
   Facebook anchor) against per-generation efficiency gains;
2. serve the resulting demand with homogeneous vs heterogeneous
   fleets and price both in carbon;
3. rank the remaining reduction levers on the chosen fleet, on today's
   grid and on a future renewable grid.

Run:  python examples/ai_fleet_planning.py
"""

import math

from repro.analysis.growth import (
    FACEBOOK_TRAINING_GROWTH_2YR,
    GrowthScenario,
    growth_trajectory,
)
from repro.analysis.levers import (
    carbon_aware_scheduling_lever,
    compare_levers,
    lifetime_extension_lever,
    renewable_energy_lever,
    scale_down_lever,
    FootprintScenario,
)
from repro.data.grids import US_GRID
from repro.datacenter.heterogeneity import ServerType, WorkloadClass
from repro.datacenter.server import AI_TRAINING_SERVER, WEB_SERVER
from repro.scenarios import sweep_provisioning
from repro.report.tables import render_table
from repro.units import Carbon, CarbonIntensity, Energy


def main() -> None:
    # --- 1. The growth race --------------------------------------------
    scenario = GrowthScenario(
        name="ai_fleet",
        initial_units=5_000.0,
        embodied_per_unit=AI_TRAINING_SERVER.embodied_carbon(),
        unit_lifetime_years=AI_TRAINING_SERVER.lifetime_years,
        initial_energy_per_unit=AI_TRAINING_SERVER.annual_energy(0.7),
        fleet_growth_per_year=math.sqrt(FACEBOOK_TRAINING_GROWTH_2YR),
        efficiency_gain_per_year=1.35,
        grid=US_GRID.intensity,
    )
    trajectory = growth_trajectory(scenario, 5)
    print(render_table(trajectory, title="AI fleet, 4x growth per 2 years",
                       float_format="{:.0f}"))
    print(
        "\nCarbon per unit of work falls every year; the total never does."
        "\nEfficiency alone cannot outrun compounding demand.\n"
    )

    # --- 2. Serve the demand: homogeneous vs heterogeneous -------------
    # The batched provisioner prices every (utilization, demand-scale)
    # scenario in one ceil-divide/argmin kernel call.
    workloads = [
        WorkloadClass("ai_inference", demand_rps=500_000.0),
        WorkloadClass("web", demand_rps=800_000.0),
    ]
    general = ServerType(
        config=WEB_SERVER,
        throughput_rps={"web": 1_500.0, "ai_inference": 120.0},
    )
    accelerator = ServerType(
        config=AI_TRAINING_SERVER, throughput_rps={"ai_inference": 4_000.0}
    )
    comparison = sweep_provisioning(
        workloads,
        general,
        [general, accelerator],
        utilization_targets=0.6,
        demand_scales=[1.0, 2.0, 4.0],
        grid=US_GRID.intensity,
    )
    print(render_table(comparison, title="Provisioning the mix (demand 1-4x)",
                       float_format="{:.2f}"))
    print("\nSpecialized hardware serves the same demand with fewer machines"
          "\nat every demand scale — heterogeneity is a capex lever.\n")

    # --- 3. What's left: rank the levers --------------------------------
    baseline = FootprintScenario(
        name="ai_cluster",
        annual_energy=Energy.gwh(300.0),
        grid=US_GRID.intensity,
        embodied_total=Carbon.kilotonnes(60.0),
        lifetime_years=4.0,
    )
    levers = [
        renewable_energy_lever(CarbonIntensity.g_per_kwh(11.0)),
        carbon_aware_scheduling_lever(0.20),
        scale_down_lever(embodied_reduction=0.30, energy_penalty=0.05),
        lifetime_extension_lever(2.0),
    ]
    print(render_table(compare_levers(baseline, levers),
                       title="Levers on today's grid", float_format="{:.3f}"))
    clean_baseline = FootprintScenario(
        name="ai_cluster_renewable",
        annual_energy=baseline.annual_energy,
        grid=CarbonIntensity.g_per_kwh(11.0),
        embodied_total=baseline.embodied_total,
        lifetime_years=baseline.lifetime_years,
    )
    print()
    print(render_table(compare_levers(clean_baseline, levers),
                       title="Levers once the grid is renewable",
                       float_format="{:.3f}"))
    print(
        "\nOn today's grid, buy renewables first. Once the grid is clean,"
        "\nonly the embodied levers — leaner hardware, longer lifetimes —"
        "\nstill move the number. That is the paper's closing argument."
    )


if __name__ == "__main__":
    main()
