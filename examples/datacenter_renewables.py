"""Data-center renewables: grow a fleet, buy PPAs, watch capex dominate.

Simulates six years of a Facebook-like fleet: servers multiply, a
renewable-procurement book ramps until it covers all demand, and the
footprint's center of mass moves from purchased electricity (opex) to
server manufacturing and construction (capex) — the mechanism behind
the paper's Figures 2 and 11. Finishes by filing each simulated year
into a GHG-Protocol inventory.

Run:  python examples/datacenter_renewables.py
"""

from repro import GHGInventory, Scope
from repro.datacenter.fleet import simulate_fleet
from repro.experiments.ext04_fleet import facebook_like_parameters
from repro.report.charts import line_chart
from repro.report.tables import render_table
from repro.tabular import Table


def main() -> None:
    params = facebook_like_parameters()
    reports = simulate_fleet(params)

    table = Table.from_records(
        [
            {
                "year": report.year,
                "servers": report.servers,
                "energy_gwh": report.energy.gigawatt_hours,
                "coverage": report.renewable_coverage,
                "opex_location_kt": report.opex_location.kilotonnes_value,
                "opex_market_kt": report.opex_market.kilotonnes_value,
                "capex_kt": report.capex.kilotonnes_value,
            }
            for report in reports
        ]
    )
    print(render_table(table, title="Simulated fleet, 2014-2019",
                       float_format="{:.1f}"))

    print("\nCarbon by accounting view (kt CO2e):")
    print(
        line_chart(
            [float(report.year) for report in reports],
            {
                "location_opex": table.column("opex_location_kt"),
                "market_opex": table.column("opex_market_kt"),
                "capex": table.column("capex_kt"),
            },
        )
    )

    # --- File the final year as a GHG inventory ------------------------
    final = reports[-1]
    inventory = GHGInventory("simulated_operator", final.year)
    inventory.add(
        Scope.SCOPE2_LOCATION, "purchased_electricity", final.opex_location
    )
    inventory.add(Scope.SCOPE2_MARKET, "purchased_electricity", final.opex_market)
    inventory.add(Scope.SCOPE3_UPSTREAM, "capital_goods", final.capex)
    print(
        f"\n{final.year}: market-based capex share "
        f"{inventory.capex_fraction(market_based=True):.0%}, "
        f"location-based {inventory.capex_fraction(market_based=False):.0%}"
    )
    print(
        "Buying renewable energy rewrites the opex column; only leaner"
        "\nhardware and longer lifetimes touch the capex column."
    )


if __name__ == "__main__":
    main()
