"""Data-center renewables: grow a fleet, buy PPAs, watch capex dominate.

Simulates six years of a Facebook-like fleet: servers multiply, a
renewable-procurement book ramps until it covers all demand, and the
footprint's center of mass moves from purchased electricity (opex) to
server manufacturing and construction (capex) — the mechanism behind
the paper's Figures 2 and 11. The simulation runs on the batched
struct-of-arrays kernel, which also makes a growth × lifetime decision
sweep one call; the final year is then filed into a GHG-Protocol
inventory.

Run:  python examples/datacenter_renewables.py
"""

from repro import GHGInventory, Scope
from repro.datacenter.fleet import simulate_fleet_batch
from repro.report.charts import line_chart
from repro.report.tables import render_table
from repro.scenarios import ScenarioGrid, facebook_like_fleet, sweep_fleet


def main() -> None:
    params = facebook_like_fleet()
    batch = simulate_fleet_batch([params])

    table = batch.to_table().select(
        "year",
        "servers",
        "energy_gwh",
        "coverage",
        "opex_location_kt",
        "opex_market_kt",
        "capex_kt",
    )
    print(render_table(table, title="Simulated fleet, 2014-2019",
                       float_format="{:.1f}"))

    print("\nCarbon by accounting view (kt CO2e):")
    print(
        line_chart(
            [float(year) for year in table.column("year")],
            {
                "location_opex": table.column("opex_location_kt"),
                "market_opex": table.column("opex_market_kt"),
                "capex": table.column("capex_kt"),
            },
        )
    )

    # --- Sweep the decision space: growth vs server lifetime -----------
    grid = ScenarioGrid(
        **{
            "annual_growth": [0.0, 0.25, 0.5],
            "server.lifetime_years": [2.0, 4.0, 6.0],
        }
    )
    sweep = sweep_fleet(params, grid).select(
        "annual_growth",
        "server_lifetime_years",
        "servers",
        "opex_market_kt",
        "capex_kt",
        "capex_fraction_market",
    )
    print(render_table(sweep, title="Final-year footprint across "
                       f"{len(grid)} scenarios (one batched kernel call)",
                       float_format="{:.2f}"))
    print(
        "\nOnce the fleet grows, longer lifetimes cut the capex column;"
        "\ngrowth decides how much opex the renewable book must chase."
    )

    # --- File the final year as a GHG inventory ------------------------
    final = batch.reports(0)[-1]
    inventory = GHGInventory("simulated_operator", final.year)
    inventory.add(
        Scope.SCOPE2_LOCATION, "purchased_electricity", final.opex_location
    )
    inventory.add(Scope.SCOPE2_MARKET, "purchased_electricity", final.opex_market)
    inventory.add(Scope.SCOPE3_UPSTREAM, "capital_goods", final.capex)
    print(
        f"\n{final.year}: market-based capex share "
        f"{inventory.capex_fraction(market_based=True):.0%}, "
        f"location-based {inventory.capex_fraction(market_based=False):.0%}"
    )
    print(
        "Buying renewable energy rewrites the opex column; only leaner"
        "\nhardware and longer lifetimes touch the capex column."
    )


if __name__ == "__main__":
    main()
