"""SoC design-space exploration with embodied carbon as a metric.

Section VI asks architects to treat manufacturing carbon as a
first-class design constraint. This example sweeps a design space of
hypothetical phone SoCs (die area x process node x memory), estimates
each point's embodied carbon with the bottom-up model, extracts the
performance/carbon Pareto frontier, and runs a sensitivity analysis on
the model's coefficients.

Run:  python examples/soc_design_space.py
"""

from repro.analysis.sensitivity import one_at_a_time, tornado_order
from repro.core.embodied import BillOfMaterials, EmbodiedModel
from repro.core.pareto import ParetoPoint, pareto_frontier
from repro.fab.process import node_by_name
from repro.report.charts import scatter_chart
from repro.report.tables import render_table
from repro.tabular import Table
from repro.units import CarbonIntensity

#: (label, die area mm^2, node, DRAM GB) with a toy performance model:
#: newer nodes and larger dies buy throughput.
_DESIGNS = [
    ("budget_28nm", 60.0, "28nm", 3.0),
    ("mid_16nm", 75.0, "16nm", 4.0),
    ("mid_10nm", 85.0, "10nm", 6.0),
    ("flagship_7nm", 100.0, "7nm", 8.0),
    ("flagship_5nm", 110.0, "5nm", 8.0),
    ("ultra_5nm", 140.0, "5nm", 12.0),
    ("ultra_3nm", 130.0, "3nm", 12.0),
]

_NODE_PERF = {"28nm": 1.0, "16nm": 2.0, "10nm": 3.2, "7nm": 4.8, "5nm": 6.5, "3nm": 8.5}


def _performance(area_mm2: float, node_name: str) -> float:
    return _NODE_PERF[node_name] * (area_mm2 / 100.0)


def main() -> None:
    model = EmbodiedModel()
    records = []
    points = []
    for label, area, node_name, dram in _DESIGNS:
        bill = BillOfMaterials(
            name=label,
            logic_dies={"soc": (area, node_by_name(node_name))},
            dram_gb=dram,
            nand_gb=128.0,
        )
        carbon = model.total(bill)
        perf = _performance(area, node_name)
        records.append(
            {
                "design": label,
                "node": node_name,
                "die_mm2": area,
                "perf": perf,
                "embodied_kg": carbon.kilograms,
            }
        )
        points.append(ParetoPoint(label, perf, carbon.kilograms))

    table = Table.from_records(records).sort_by("embodied_kg")
    print(render_table(table, title="Design space", float_format="{:.2f}"))

    frontier = pareto_frontier(points)
    print("\nPareto-efficient designs (max perf, min embodied carbon):")
    for point in frontier:
        print(f"  {point.label}: perf {point.performance:.1f}, "
              f"{point.cost:.1f} kg CO2e")

    print("\nPerformance vs embodied carbon:")
    print(
        scatter_chart(
            [(p.cost, p.performance, p.label[0].upper()) for p in points]
        )
    )

    # --- Which coefficients drive the estimate? ------------------------
    def flagship_model(params) -> float:
        custom = EmbodiedModel(
            fab_intensity=CarbonIntensity.g_per_kwh(params["fab_g_per_kwh"]),
            packaging_kg_per_die=params["packaging_kg"],
        )
        bill = BillOfMaterials(
            name="flagship_5nm",
            logic_dies={"soc": (110.0, node_by_name("5nm"))},
            dram_gb=params["dram_gb"],
            nand_gb=128.0,
        )
        return custom.total(bill).kilograms

    sensitivity = tornado_order(
        one_at_a_time(
            flagship_model,
            baseline={
                "fab_g_per_kwh": 583.0,
                "packaging_kg": 0.15,
                "dram_gb": 8.0,
            },
            ranges={
                "fab_g_per_kwh": (11.0, 820.0),   # wind fab .. coal fab
                "packaging_kg": (0.05, 0.50),
                "dram_gb": (4.0, 16.0),
            },
        )
    )
    print()
    print(render_table(sensitivity, title="Sensitivity (flagship_5nm)",
                       float_format="{:.2f}"))
    print(
        "\nThe fab's grid dominates — which is exactly why Section V's"
        "\nrenewable-fab lever matters, and why the ~37% non-energy wedge"
        "\ncaps what it can deliver (Figure 14)."
    )


if __name__ == "__main__":
    main()
