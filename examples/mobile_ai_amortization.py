"""Mobile AI amortization: the paper's Pixel 3 case study, end to end.

Walks the full measurement pipeline the paper ran with real hardware:
simulate Monsoon power traces for CNN inference bursts, integrate them
to energy, convert to operational carbon on the US grid, and find how
long the phone must run inference before operational emissions amortize
its integrated-circuit manufacturing footprint (Figures 9 and 10).

Run:  python examples/mobile_ai_amortization.py
"""

from repro.data.measurements import PIXEL3_IDLE_POWER_W
from repro.mobile.device import pixel3
from repro.mobile.power_monitor import MonsoonSimulator
from repro.report.charts import bar_chart
from repro.report.tables import render_table
from repro.tabular import Table

MODELS = ("resnet50", "inception_v3", "mobilenet_v2", "mobilenet_v3")
PROCESSORS = ("cpu", "gpu", "dsp")


def main() -> None:
    phone = pixel3()
    monsoon = MonsoonSimulator(noise_fraction=0.02, seed=1)

    print(
        f"Pixel 3 integrated-circuit embodied carbon: "
        f"{phone.ic_capex.kilograms:.1f} kg CO2e "
        "(half of the production stage)\n"
    )

    # --- Measure: simulated Monsoon traces ----------------------------
    records = []
    for model in MODELS:
        for processor in PROCESSORS:
            estimate = phone.simulator.estimate(model, processor)
            trace = monsoon.inference_burst(
                estimate, num_inferences=50, idle_power_w=PIXEL3_IDLE_POWER_W
            )
            records.append(
                {
                    "model": model,
                    "processor": processor,
                    "latency_ms": estimate.latency_s * 1e3,
                    "trace_avg_w": trace.average_power.watts_value,
                    "energy_mj": estimate.energy_per_inference.joules * 1e3,
                    "break_even_images_m": phone.break_even_images(
                        model, processor
                    )
                    / 1e6,
                    "break_even_days": phone.break_even_days(model, processor),
                }
            )
    table = Table.from_records(records)
    print(render_table(table, title="Pixel 3 measurement grid",
                       float_format="{:.2f}"))

    # --- The paper's punchline -----------------------------------------
    lifetime_days = phone.lca.lifetime_years * 365
    print(f"\nDevice lifetime: {lifetime_days:.0f} days")
    for processor in ("cpu", "dsp"):
        be_days = phone.break_even_days("mobilenet_v3", processor)
        verdict = "within" if be_days <= lifetime_days else "BEYOND"
        print(
            f"MobileNet v3 on {processor.upper()}: break-even after "
            f"{be_days:,.0f} days of continuous inference ({verdict} lifetime)"
        )

    print("\nBreak-even days by configuration:")
    print(
        bar_chart(
            [f"{r['model']}/{r['processor']}" for r in records],
            [r["break_even_days"] for r in records],
            value_format="{:.0f} d",
        )
    )
    print(
        "\nEfficiency gains stretch amortization: the cleaner the inference,"
        "\nthe longer the hardware must live to pay off its manufacturing."
    )


if __name__ == "__main__":
    main()
