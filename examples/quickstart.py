"""Quickstart: the core carbon-accounting API in five minutes.

Covers the library's building blocks — typed quantities, device LCAs,
the opex/capex lens, GHG inventories — and ends by regenerating one of
the paper's figures.

Run:  python examples/quickstart.py
"""

from repro import (
    Carbon,
    CarbonIntensity,
    Power,
    days,
    run_experiment,
)
from repro.data.devices import device_by_name
from repro.data.grids import US_GRID, grid_by_name
from repro.report.tables import render_table


def main() -> None:
    # --- 1. Typed quantities -----------------------------------------
    # A phone SoC drawing 5 W for a day on the US grid:
    energy = Power.watts(5.0).energy_over(days(1))
    emitted = US_GRID.intensity.carbon_for(energy)
    print(f"5 W for a day on the US grid -> {emitted.grams:.1f} g CO2e")

    # The same day in Iceland (hydropower, Table III):
    iceland = grid_by_name("iceland").intensity.carbon_for(energy)
    print(f"...and in Iceland            -> {iceland.grams:.1f} g CO2e\n")

    # --- 2. Device life cycles ----------------------------------------
    for product in ("iphone_3gs", "iphone_11"):
        lca = device_by_name(product)
        print(
            f"{lca.product}: total {lca.total.kilograms:.0f} kg, "
            f"capex {lca.capex_fraction:.0%} / opex {lca.opex_fraction:.0%}"
        )
    print(
        "\nThe capex share grew from 49% to 86% in a decade — the paper's"
        "\nheadline shift from operational to embodied emissions.\n"
    )

    # --- 3. Carbon-intensity what-ifs ----------------------------------
    lca = device_by_name("iphone_11")
    use_kg = lca.use_carbon.kilograms
    wind = CarbonIntensity.g_per_kwh(11.0)
    wind_use_kg = use_kg * (wind.grams_per_kwh / US_GRID.intensity.grams_per_kwh)
    print(
        f"iphone_11 use-phase: {use_kg:.1f} kg on the US grid, "
        f"{wind_use_kg:.2f} kg if wind-powered"
    )
    remainder = Carbon.kg(lca.total.kilograms - use_kg + wind_use_kg)
    print(
        f"Even with free-and-clean electricity the life cycle keeps "
        f"{remainder.kilograms:.0f} kg of embodied carbon.\n"
    )

    # --- 4. Regenerate a paper artifact --------------------------------
    result = run_experiment("fig05")
    print(render_table(result.table("groups"), title="Apple 2019 breakdown"))
    print()
    print(render_table(result.checks_table(), title="paper vs measured"))


if __name__ == "__main__":
    main()
