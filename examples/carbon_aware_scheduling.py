"""Carbon-aware batch scheduling against a duck-curve grid.

Implements the run-time-systems direction from the paper's Section VI:
defer flexible batch work into the hours when solar floods the grid.
Compares a carbon-agnostic baseline with the greedy carbon-aware
scheduler on the same jobs, grid, and power cap.

Run:  python examples/carbon_aware_scheduling.py
"""

from repro.datacenter.grid_sim import DiurnalGridModel
from repro.datacenter.scheduler import (
    schedule_carbon_agnostic,
    schedule_carbon_aware,
)
from repro.experiments.ext01_scheduler import example_jobs
from repro.report.charts import line_chart
from repro.report.tables import render_table
from repro.tabular import Table

HORIZON_HOURS = 48
CAPACITY_KW = 900.0


def main() -> None:
    grid = DiurnalGridModel(noise_g_per_kwh=15.0, seed=3)
    intensity = grid.hourly_series(HORIZON_HOURS)
    jobs = example_jobs()

    print("Grid carbon intensity (g CO2e/kWh) over two days:")
    print(
        line_chart(
            [float(hour) for hour in range(HORIZON_HOURS)],
            {"intensity": list(intensity)},
        )
    )

    agnostic = schedule_carbon_agnostic(jobs, intensity, CAPACITY_KW)
    aware = schedule_carbon_aware(jobs, intensity, CAPACITY_KW)

    table = Table.from_records(
        [
            {
                "job": job.name,
                "energy_kwh": job.energy.kilowatt_hours,
                "agnostic_start_h": agnostic.placement_for(job.name).start_hour,
                "aware_start_h": aware.placement_for(job.name).start_hour,
                "agnostic_kg": agnostic.placement_for(job.name).carbon.kilograms,
                "aware_kg": aware.placement_for(job.name).carbon.kilograms,
            }
            for job in jobs
        ]
    )
    print()
    print(render_table(table, title="Placements", float_format="{:.1f}"))

    baseline = agnostic.total_carbon.kilograms
    improved = aware.total_carbon.kilograms
    print(
        f"\ncarbon-agnostic total: {baseline:,.1f} kg CO2e"
        f"\ncarbon-aware total:    {improved:,.1f} kg CO2e"
        f"\nsavings:               {1.0 - improved / baseline:.1%}"
        "\n\nSame jobs, same energy — the savings come purely from *when*"
        "\nthe energy is drawn. This attacks the opex column; embodied"
        "\ncarbon needs the paper's other levers."
    )


if __name__ == "__main__":
    main()
