"""Every shipped example must run end to end and say what it claims."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

_EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
_EXAMPLES = sorted(path.name for path in _EXAMPLES_DIR.glob("*.py"))

#: A phrase each example's output must contain — pinned so the examples
#: keep demonstrating what their docstrings promise.
_EXPECTED_PHRASES = {
    "quickstart.py": "paper vs measured",
    "mobile_ai_amortization.py": "BEYOND lifetime",
    "datacenter_renewables.py": "capex share",
    "soc_design_space.py": "Pareto-efficient designs",
    "carbon_aware_scheduling.py": "savings",
    "ai_fleet_planning.py": "closing argument",
}


def _run_example(name: str, capsys) -> str:
    path = _EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_directory_is_complete():
    assert set(_EXAMPLES) == set(_EXPECTED_PHRASES)


@pytest.mark.parametrize("name", sorted(_EXPECTED_PHRASES))
def test_example_runs_and_demonstrates_its_claim(name, capsys):
    output = _run_example(name, capsys)
    assert len(output) > 200, f"{name} produced almost no output"
    assert _EXPECTED_PHRASES[name] in output
