"""Batched provisioning is pinned element-identical to the scalar path.

provision_heterogeneous_batch / provision_homogeneous_batch must pick
the same SKUs, the same machine counts, and price the fleets to the
same gram across utilization targets and demand scalings — including
the (count, embodied carbon, declaration order) tie-break.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.embodied import EmbodiedModel
from repro.data.grids import US_GRID
from repro.datacenter.heterogeneity import (
    ServerType,
    WorkloadClass,
    compare_provisioning,
    provision_heterogeneous,
    provision_heterogeneous_batch,
    provision_homogeneous,
    provision_homogeneous_batch,
)
from repro.datacenter.server import AI_TRAINING_SERVER, STORAGE_SERVER, WEB_SERVER
from repro.errors import SimulationError
from repro.scenarios.presets import example_service_mix


def _scaled(workloads: list[WorkloadClass], scale: float) -> list[WorkloadClass]:
    return [
        WorkloadClass(workload.name, workload.demand_rps * scale)
        for workload in workloads
    ]


class TestHeterogeneousEquivalence:
    def test_plans_identical_across_targets_and_scales(self):
        workloads, _, server_types = example_service_mix()
        targets = [0.3, 0.45, 0.6, 0.75, 1.0]
        scales = [0.25, 1.0, 3.0, 10.0]
        target_axis = np.repeat(targets, len(scales))
        scale_axis = np.tile(scales, len(targets))
        batch = provision_heterogeneous_batch(
            workloads, server_types, target_axis, scale_axis
        )
        for index in range(batch.num_scenarios):
            reference = provision_heterogeneous(
                _scaled(workloads, float(scale_axis[index])),
                server_types,
                float(target_axis[index]),
            )
            candidate = batch.plan(index)
            assert candidate.assignments == reference.assignments
            assert candidate.utilization_target == reference.utilization_target

    def test_carbon_totals_identical_to_the_gram(self):
        workloads, _, server_types = example_service_mix()
        model = EmbodiedModel()
        grid = US_GRID.intensity
        targets = np.array([0.4, 0.6, 0.9])
        batch = provision_heterogeneous_batch(workloads, server_types, targets)
        embodied = batch.embodied_per_year_grams(model)
        operational = batch.operational_per_year_grams(grid)
        for index, target in enumerate(targets):
            reference = provision_heterogeneous(
                workloads, server_types, float(target)
            )
            assert embodied[index] == reference.embodied_per_year(model).grams
            assert (
                operational[index]
                == reference.operational_per_year(grid).grams
            )

    def test_tie_breaks_toward_lower_embodied_then_declaration_order(self):
        # Two SKUs with identical throughput: the scalar path ties on
        # count and picks the lower embodied carbon per machine.
        workload = WorkloadClass("web", demand_rps=10_000.0)
        model = EmbodiedModel()
        contenders = [
            ServerType(AI_TRAINING_SERVER, {"web": 100.0}),
            ServerType(STORAGE_SERVER, {"web": 100.0}),
        ]
        lightest = min(
            contenders, key=lambda t: t.config.embodied_carbon(model).grams
        )
        for order in (contenders, list(reversed(contenders))):
            reference = provision_heterogeneous([workload], order, 0.6)
            batch = provision_heterogeneous_batch([workload], order, 0.6)
            assert batch.plan(0).assignments == reference.assignments
            chosen = batch.server_types[int(batch.choice[0, 0])]
            assert chosen.config.name == lightest.config.name
        # Full tie (same SKU twice): first declared wins, as in min().
        light = contenders[1]
        twin = ServerType(STORAGE_SERVER, {"web": 100.0})
        batch = provision_heterogeneous_batch([workload], [light, twin], 0.6)
        assert int(batch.choice[0, 0]) == 0

    def test_summary_table_matches_compare_provisioning(self):
        workloads, general, server_types = example_service_mix()
        model = EmbodiedModel()
        grid = US_GRID.intensity
        homo_scalar = provision_homogeneous(workloads, general)
        hetero_scalar = provision_heterogeneous(workloads, server_types)
        reference = compare_provisioning(homo_scalar, hetero_scalar, grid, model)
        homo = provision_homogeneous_batch(workloads, general)
        hetero = provision_heterogeneous_batch(workloads, server_types)
        for plan_batch, row in zip((homo, hetero), reference):
            summary = plan_batch.summary_table(grid, model).row(0)
            assert summary["plan"] == row["plan"]
            assert summary["servers"] == row["servers"]
            assert summary["embodied_t_per_year"] == row["embodied_t_per_year"]
            assert (
                summary["operational_t_per_year"]
                == row["operational_t_per_year"]
            )
            assert summary["total_t_per_year"] == row["total_t_per_year"]


class TestHomogeneousEquivalence:
    def test_matches_scalar_for_each_target(self):
        workloads, general, _ = example_service_mix()
        targets = np.array([0.35, 0.6, 0.8])
        batch = provision_homogeneous_batch(workloads, general, targets)
        for index, target in enumerate(targets):
            reference = provision_homogeneous(workloads, general, float(target))
            assert batch.plan(index).assignments == reference.assignments

    def test_demand_matrix_axis(self):
        workloads, general, _ = example_service_mix()
        demands = np.array(
            [[1_000.0, 2_000.0, 500.0], [9_999.0, 123.0, 77.0]]
        )
        batch = provision_homogeneous_batch(workloads, general, 0.6, demands)
        for index in range(2):
            scaled = [
                WorkloadClass(workload.name, float(demands[index, position]))
                for position, workload in enumerate(workloads)
            ]
            reference = provision_homogeneous(scaled, general, 0.6)
            assert batch.plan(index).assignments == reference.assignments


class TestBatchValidation:
    def test_unservable_workload_rejected(self):
        workloads, _, _ = example_service_mix()
        accelerator_only = [ServerType(AI_TRAINING_SERVER, {"ai_inference": 1.0})]
        with pytest.raises(SimulationError):
            provision_heterogeneous_batch(workloads, accelerator_only, 0.6)

    def test_homogeneous_requires_general_coverage(self):
        workloads, _, server_types = example_service_mix()
        accelerator = next(
            t for t in server_types if t.config.name == "ai_training_server"
        )
        with pytest.raises(SimulationError):
            provision_homogeneous_batch(workloads, accelerator, 0.6)

    def test_bad_utilization_rejected(self):
        workloads, general, server_types = example_service_mix()
        for target in (0.0, 1.5, -0.25, float("nan")):
            with pytest.raises(SimulationError):
                provision_heterogeneous_batch(workloads, server_types, target)

    def test_nan_demand_rejected(self):
        workloads, _, server_types = example_service_mix()
        bad = np.full((1, len(workloads)), np.nan)
        with pytest.raises(SimulationError):
            provision_heterogeneous_batch(workloads, server_types, 0.6, bad)

    def test_mismatched_axes_rejected(self):
        workloads, _, server_types = example_service_mix()
        with pytest.raises(SimulationError):
            provision_heterogeneous_batch(
                workloads, server_types, [0.5, 0.6], np.array([1.0, 2.0, 3.0])
            )

    def test_empty_inputs_rejected(self):
        _, _, server_types = example_service_mix()
        with pytest.raises(SimulationError):
            provision_heterogeneous_batch([], server_types, 0.6)
        workloads, _, _ = example_service_mix()
        with pytest.raises(SimulationError):
            provision_heterogeneous_batch(workloads, [], 0.6)

    def test_scenario_index_bounds_checked(self):
        workloads, _, server_types = example_service_mix()
        batch = provision_heterogeneous_batch(workloads, server_types, 0.6)
        with pytest.raises(SimulationError):
            batch.plan(5)
