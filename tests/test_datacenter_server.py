"""Tests for server, facility, and renewable-portfolio models."""

from __future__ import annotations

import pytest

from repro.core.embodied import EmbodiedModel
from repro.data.energy_sources import source_by_name
from repro.data.grids import US_GRID
from repro.datacenter.facility import Facility
from repro.datacenter.renewable import PPAContract, RenewablePortfolio
from repro.datacenter.server import (
    AI_TRAINING_SERVER,
    STORAGE_SERVER,
    WEB_SERVER,
    ServerConfig,
)
from repro.errors import SimulationError
from repro.units import Carbon, Energy, Power


class TestServerPowerModel:
    def test_idle_at_zero_utilization(self):
        assert WEB_SERVER.power_at(0.0).watts_value == pytest.approx(
            WEB_SERVER.idle_power.watts_value
        )

    def test_peak_at_full_utilization(self):
        assert WEB_SERVER.power_at(1.0).watts_value == pytest.approx(
            WEB_SERVER.peak_power.watts_value
        )

    def test_linear_midpoint(self):
        midpoint = WEB_SERVER.power_at(0.5).watts_value
        expected = (
            WEB_SERVER.idle_power.watts_value + WEB_SERVER.peak_power.watts_value
        ) / 2.0
        assert midpoint == pytest.approx(expected)

    def test_utilization_bounds(self):
        with pytest.raises(SimulationError):
            WEB_SERVER.power_at(1.5)

    def test_annual_energy_magnitude(self):
        # ~255 W continuous is ~2.2 MWh/yr.
        energy = WEB_SERVER.annual_energy(0.45)
        assert 2.0e3 <= energy.kilowatt_hours <= 2.5e3

    def test_idle_cannot_exceed_peak(self):
        with pytest.raises(SimulationError):
            ServerConfig(
                name="x",
                bill=WEB_SERVER.bill,
                idle_power=Power.watts(500.0),
                peak_power=Power.watts(400.0),
            )


class TestServerEmbodied:
    def test_ai_server_carries_more_embodied_carbon(self):
        model = EmbodiedModel()
        assert (
            AI_TRAINING_SERVER.embodied_carbon(model).kilograms
            > WEB_SERVER.embodied_carbon(model).kilograms
        )

    def test_embodied_per_year_divides_by_lifetime(self):
        total = STORAGE_SERVER.embodied_carbon().kilograms
        per_year = STORAGE_SERVER.embodied_per_year().kilograms
        assert per_year == pytest.approx(total / STORAGE_SERVER.lifetime_years)

    def test_web_server_embodied_magnitude(self):
        # Hundreds of kg CO2e, not tens or tens of thousands.
        kg = WEB_SERVER.embodied_carbon().kilograms
        assert 100.0 <= kg <= 1500.0


class TestFacility:
    def test_pue_multiplies_it_energy(self):
        facility = Facility("dc", pue=1.5, construction_carbon=Carbon.tonnes(1.0))
        assert facility.facility_energy(Energy.kwh(100.0)).kilowatt_hours == 150.0

    def test_overhead_energy(self):
        facility = Facility("dc", pue=1.2, construction_carbon=Carbon.tonnes(1.0))
        assert facility.overhead_energy(
            Energy.kwh(100.0)
        ).kilowatt_hours == pytest.approx(20.0)

    def test_construction_amortization(self):
        facility = Facility(
            "dc", pue=1.1, construction_carbon=Carbon.kilotonnes(100.0),
            lifetime_years=20.0,
        )
        assert facility.construction_per_year().kilotonnes_value == pytest.approx(5.0)

    def test_pue_below_one_rejected(self):
        with pytest.raises(SimulationError):
            Facility("dc", pue=0.9, construction_carbon=Carbon.tonnes(1.0))


class TestRenewablePortfolio:
    def _portfolio(self) -> RenewablePortfolio:
        return RenewablePortfolio(
            (
                PPAContract("wind", source_by_name("wind"), Energy.gwh(100.0)),
                PPAContract("solar", source_by_name("solar"), Energy.gwh(50.0)),
            )
        )

    def test_annual_supply_sums_contracts(self):
        assert self._portfolio().annual_supply.gigawatt_hours == pytest.approx(150.0)

    def test_contracted_intensity_is_weighted(self):
        intensity = self._portfolio().contracted_intensity()
        expected = (100 * 11 + 50 * 41) / 150
        assert intensity.grams_per_kwh == pytest.approx(expected)

    def test_coverage_caps_at_one(self):
        portfolio = self._portfolio()
        assert portfolio.coverage(Energy.gwh(100.0)) == 1.0
        assert portfolio.coverage(Energy.gwh(300.0)) == pytest.approx(0.5)

    def test_market_carbon_below_location(self):
        portfolio = self._portfolio()
        demand = Energy.gwh(200.0)
        market = portfolio.market_carbon(demand, US_GRID.intensity)
        location = portfolio.location_carbon(demand, US_GRID.intensity)
        assert market.grams < location.grams

    def test_full_coverage_leaves_contract_intensity(self):
        portfolio = self._portfolio()
        demand = Energy.gwh(150.0)
        market = portfolio.market_intensity(demand, US_GRID.intensity)
        assert market.grams_per_kwh == pytest.approx(
            portfolio.contracted_intensity().grams_per_kwh
        )

    def test_empty_portfolio_has_zero_supply(self):
        assert RenewablePortfolio().annual_supply.joules == 0.0

    def test_non_renewable_contract_rejected(self):
        with pytest.raises(SimulationError):
            PPAContract("coal", source_by_name("coal"), Energy.gwh(10.0))

    def test_zero_energy_contract_rejected(self):
        with pytest.raises(SimulationError):
            PPAContract("wind", source_by_name("wind"), Energy.zero())
