"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.data.corporate import facebook_series, google_series
from repro.mobile.device import pixel3
from repro.mobile.inference import InferenceSimulator


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point the default on-disk result cache at a per-session tmp dir.

    ``repro run``/``repro sweep`` cache to ``~/.cache/repro`` by
    default; without this, CLI tests would litter the developer's real
    home directory and — worse — exercise only the cache-read path on
    every suite run after the first. Session-scoped (not per-test) so
    hypothesis tests never see a function-scoped fixture; tests that
    probe the env-var resolution order override it with their own
    function-scoped monkeypatching.
    """
    patcher = pytest.MonkeyPatch()
    patcher.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("repro-cache"))
    )
    yield
    patcher.undo()


@pytest.fixture(scope="session")
def simulator() -> InferenceSimulator:
    return InferenceSimulator()


@pytest.fixture(scope="session")
def phone():
    return pixel3()


@pytest.fixture(scope="session")
def facebook():
    return facebook_series()


@pytest.fixture(scope="session")
def google():
    return google_series()
