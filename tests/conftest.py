"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.data.corporate import facebook_series, google_series
from repro.mobile.device import pixel3
from repro.mobile.inference import InferenceSimulator


@pytest.fixture(scope="session")
def simulator() -> InferenceSimulator:
    return InferenceSimulator()


@pytest.fixture(scope="session")
def phone():
    return pixel3()


@pytest.fixture(scope="session")
def facebook():
    return facebook_series()


@pytest.fixture(scope="session")
def google():
    return google_series()
