"""Cross-module integration tests.

Each test wires several subsystems together the way a downstream user
would and asserts the combined behaviour, not just per-module contracts.
"""

from __future__ import annotations

import pytest

from repro import (
    BatchJob,
    Carbon,
    DiurnalGridModel,
    EmbodiedModel,
    Energy,
    GHGInventory,
    PPAContract,
    RenewablePortfolio,
    Scope,
    schedule_carbon_agnostic,
    schedule_carbon_aware,
)
from repro.data.energy_sources import source_by_name
from repro.data.grids import US_GRID
from repro.datacenter.facility import Facility
from repro.datacenter.fleet import FleetParameters, simulate_fleet
from repro.datacenter.server import WEB_SERVER
from repro.mobile.device import pixel3
from repro.mobile.power_monitor import MonsoonSimulator
from repro.units import SECONDS_PER_DAY


class TestPhoneMeasurementPipeline:
    """Monsoon trace -> energy -> grid carbon -> break-even."""

    def test_trace_driven_breakeven_matches_analytic(self):
        phone = pixel3()
        estimate = phone.simulator.estimate("mobilenet_v3", "cpu")
        monsoon = MonsoonSimulator(noise_fraction=0.0)
        trace = monsoon.inference_burst(estimate, 1000, idle_power_w=0.0)
        energy_per_inference = trace.energy() / 1000.0
        carbon_per_inference = phone.grid.carbon_for(energy_per_inference)
        trace_breakeven = phone.ic_capex.grams / carbon_per_inference.grams
        analytic = phone.break_even_images("mobilenet_v3", "cpu")
        assert trace_breakeven == pytest.approx(analytic, rel=0.02)

    def test_amortization_schedule_consistent_with_phone(self):
        phone = pixel3()
        schedule = phone.amortization("mobilenet_v3", "dsp")
        days = schedule.break_even_seconds() / SECONDS_PER_DAY
        assert days == pytest.approx(
            phone.break_even_days("mobilenet_v3", "dsp"), rel=1e-9
        )


class TestFleetToGHGInventory:
    """The fleet simulator's output can populate a GHG inventory whose
    opex/capex split matches the simulator's own accounting."""

    def test_inventory_roundtrip(self):
        portfolio = RenewablePortfolio(
            (PPAContract("wind", source_by_name("wind"), Energy.gwh(400.0)),)
        )
        params = FleetParameters(
            server=WEB_SERVER,
            facility=Facility(
                "dc", pue=1.1, construction_carbon=Carbon.kilotonnes(80.0)
            ),
            location_intensity=US_GRID.intensity,
            initial_servers=20_000,
            annual_growth=0.2,
            years=4,
            renewable_ramp={0: portfolio},
        )
        final = simulate_fleet(params)[-1]

        inventory = GHGInventory("sim_dc", 2017)
        inventory.add(
            Scope.SCOPE2_LOCATION, "purchased_electricity", final.opex_location
        )
        inventory.add(
            Scope.SCOPE2_MARKET, "purchased_electricity", final.opex_market
        )
        inventory.add(Scope.SCOPE3_UPSTREAM, "capital_goods", final.capex)
        assert inventory.capex_fraction(market_based=True) == pytest.approx(
            final.capex_fraction_market
        )

    def test_embodied_model_consistency(self):
        # The fleet's per-server capex equals the embodied model's total.
        model = EmbodiedModel()
        per_server = WEB_SERVER.embodied_carbon(model)
        reports = simulate_fleet(
            FleetParameters(
                server=WEB_SERVER,
                facility=Facility(
                    "dc", pue=1.1, construction_carbon=Carbon.zero()
                ),
                location_intensity=US_GRID.intensity,
                initial_servers=1_000,
                annual_growth=0.0,
                years=1,
            ),
            embodied=model,
        )
        assert reports[0].capex.kilograms == pytest.approx(
            per_server.kilograms * 1_000
        )


class TestSchedulerAgainstGridModel:
    def test_savings_disappear_on_flat_grid(self):
        jobs = [
            BatchJob("train", 6, 300.0, arrival_hour=0, deadline_hour=40),
            BatchJob("etl", 3, 120.0, arrival_hour=0, deadline_hour=24),
        ]
        duck = DiurnalGridModel().hourly_series(48)
        flat = DiurnalGridModel(
            base_g_per_kwh=420.0,
            solar_depth_g_per_kwh=0.0,
            evening_peak_g_per_kwh=0.0,
        ).hourly_series(48)
        duck_savings = (
            schedule_carbon_agnostic(jobs, duck, 800.0).total_carbon.grams
            - schedule_carbon_aware(jobs, duck, 800.0).total_carbon.grams
        )
        flat_savings = (
            schedule_carbon_agnostic(jobs, flat, 800.0).total_carbon.grams
            - schedule_carbon_aware(jobs, flat, 800.0).total_carbon.grams
        )
        assert duck_savings > 0.0
        assert flat_savings == pytest.approx(0.0, abs=1e-6)


class TestDeviceCorpusThroughAnalysis:
    def test_paper_narrative_end_to_end(self):
        """iPhone family: manufacturing share rose while the phone's
        operational break-even horizon stretched past its lifetime."""
        from repro.analysis.trends import trend_summary
        from repro.data.devices import family

        summary = trend_summary(family("iphone"))
        assert summary["manufacturing_fraction_rising"]
        phone = pixel3()
        assert not phone.amortizes_within_lifetime("mobilenet_v3", "dsp")

    def test_embodied_model_explains_macpro_scaling_direction(self):
        """Bottom-up: more memory and dies -> more embodied carbon, the
        Table IV direction."""
        from repro.core.embodied import BillOfMaterials
        from repro.fab.process import node_by_name

        model = EmbodiedModel()
        node = node_by_name("16nm")
        small = BillOfMaterials(name="small", logic_dies={"cpu": (350.0, node)},
                                dram_gb=32.0, nand_gb=256.0)
        big = BillOfMaterials(name="big", logic_dies={"cpu": (698.0, node)},
                              dram_gb=1536.0, nand_gb=4096.0)
        assert model.total(big).kilograms > 2.0 * model.total(small).kilograms
