"""Tests for the bottom-up embodied-carbon model."""

from __future__ import annotations

import pytest

from repro.core.embodied import (
    BillOfMaterials,
    EmbodiedModel,
    MemoryCoefficients,
)
from repro.errors import DataValidationError, SimulationError
from repro.fab.process import node_by_name
from repro.units import CarbonIntensity


@pytest.fixture
def model() -> EmbodiedModel:
    return EmbodiedModel()


class TestLogicCarbon:
    def test_scales_superlinearly_with_area(self, model):
        node = node_by_name("7nm")
        small = model.logic_carbon(50.0, node).kilograms
        large = model.logic_carbon(200.0, node).kilograms
        # Larger dies pay both area and yield penalties.
        assert large > 4.0 * (small - model.packaging_kg_per_die)

    def test_newer_node_costs_more_per_die(self, model):
        area = 100.0
        old = model.logic_carbon(area, node_by_name("28nm")).kilograms
        new = model.logic_carbon(area, node_by_name("5nm")).kilograms
        assert new > old

    def test_cleaner_fab_reduces_carbon(self):
        node = node_by_name("7nm")
        dirty = EmbodiedModel(fab_intensity=CarbonIntensity.g_per_kwh(583.0))
        clean = EmbodiedModel(fab_intensity=CarbonIntensity.g_per_kwh(50.0))
        assert (
            clean.logic_carbon(100.0, node).kilograms
            < dirty.logic_carbon(100.0, node).kilograms
        )

    def test_cleaner_fab_cannot_remove_gas_and_materials(self):
        node = node_by_name("7nm")
        zero_energy = EmbodiedModel(fab_intensity=CarbonIntensity.g_per_kwh(0.0))
        residual = zero_energy.logic_carbon(100.0, node).kilograms
        floor = (node.gas_kg_per_cm2 + node.material_kg_per_cm2) * 1.0
        assert residual > floor  # yield division only increases it

    def test_zero_area_rejected(self, model):
        with pytest.raises(SimulationError):
            model.logic_carbon(0.0, node_by_name("7nm"))

    def test_yield_model_choice_matters(self):
        node = node_by_name("5nm")
        murphy = EmbodiedModel(yield_model="murphy")
        poisson = EmbodiedModel(yield_model="poisson")
        # Poisson yield is lower, so per-good-die carbon is higher.
        assert (
            poisson.logic_carbon(400.0, node).kilograms
            > murphy.logic_carbon(400.0, node).kilograms
        )

    def test_unknown_yield_model_rejected(self):
        with pytest.raises(SimulationError):
            EmbodiedModel(yield_model="seeds")


class TestMemoryCarbon:
    def test_dram_dominates_nand_per_gb(self, model):
        assert (
            model.dram_carbon(1.0).kilograms > model.nand_carbon(1.0).kilograms
        )

    def test_linear_in_capacity(self, model):
        assert model.nand_carbon(128.0).kilograms == pytest.approx(
            2.0 * model.nand_carbon(64.0).kilograms
        )

    def test_zero_capacity_is_zero(self, model):
        assert model.dram_carbon(0.0).grams == 0.0

    def test_negative_capacity_rejected(self, model):
        with pytest.raises(SimulationError):
            model.hdd_carbon(-1.0)

    def test_coefficients_validated(self):
        with pytest.raises(DataValidationError):
            MemoryCoefficients(dram_kg_per_gb=-0.1)


class TestBillOfMaterials:
    def test_build_covers_all_components(self, model):
        bill = BillOfMaterials(
            name="phone",
            logic_dies={"soc": (94.0, node_by_name("10nm"))},
            dram_gb=4.0,
            nand_gb=64.0,
            fixed_kg={"display": 8.0},
        )
        breakdown = model.build(bill)
        assert set(breakdown) == {"soc", "dram", "nand", "display"}

    def test_total_equals_sum_of_breakdown(self, model):
        bill = BillOfMaterials(
            name="server",
            logic_dies={"cpu": (400.0, node_by_name("16nm"))},
            dram_gb=256.0,
            nand_gb=2000.0,
            hdd_tb=10.0,
            fixed_kg={"chassis": 45.0},
        )
        breakdown = model.build(bill)
        total = sum(carbon.kilograms for carbon in breakdown.values())
        assert model.total(bill).kilograms == pytest.approx(total)

    def test_zero_capacities_omit_components(self, model):
        bill = BillOfMaterials(
            name="minimal", logic_dies={"soc": (50.0, node_by_name("28nm"))}
        )
        assert set(model.build(bill)) == {"soc"}

    def test_negative_fixed_component_rejected(self):
        with pytest.raises(DataValidationError):
            BillOfMaterials(name="x", fixed_kg={"chassis": -1.0})

    def test_name_required(self):
        with pytest.raises(DataValidationError):
            BillOfMaterials(name="")

    def test_negative_capacity_rejected(self):
        with pytest.raises(DataValidationError):
            BillOfMaterials(name="x", dram_gb=-1.0)
