"""Tests for the fab-level model and the vendor model."""

from __future__ import annotations

import pytest

from repro.core.ghg import Scope
from repro.core.lca import LifeCycleStage
from repro.data.devices import device_by_name
from repro.data.grids import TAIWAN_GRID
from repro.errors import AccountingError, SimulationError
from repro.fab.fabs import FabModel
from repro.fab.process import node_by_name
from repro.units import Carbon
from repro.vendor import ProductLine, VendorModel


@pytest.fixture
def fab() -> FabModel:
    return FabModel(
        name="gigafab_3nm",
        node=node_by_name("3nm"),
        wafer_starts_per_year=1.0e6,
        grid=TAIWAN_GRID.intensity,
        renewable_share=0.20,
    )


class TestFabModel:
    def test_annual_energy_scales_with_capacity(self, fab):
        double = FabModel(
            name="x", node=fab.node, wafer_starts_per_year=2.0e6,
            grid=fab.grid, renewable_share=0.20,
        )
        assert double.annual_energy().joules == pytest.approx(
            2.0 * fab.annual_energy().joules
        )

    def test_3nm_gigafab_energy_magnitude(self, fab):
        """The paper's anchor: a 3nm fab may draw up to 7.7 B kWh/yr.

        At one million wafer starts a year our coefficients put the
        plant at the same order of magnitude (a few billion kWh)."""
        kwh = fab.annual_energy().kilowatt_hours
        assert 1e9 <= kwh <= 7.7e9

    def test_renewables_cut_market_scope2_only(self, fab):
        market = fab.scope2(market_based=True)
        location = fab.scope2(market_based=False)
        assert market.grams == pytest.approx(0.80 * location.grams)

    def test_scope1_independent_of_renewables(self, fab):
        cleaner = fab.with_renewable_share(1.0)
        assert cleaner.scope1().grams == pytest.approx(fab.scope1().grams)

    def test_full_renewables_zero_market_scope2(self, fab):
        assert fab.with_renewable_share(1.0).scope2().grams == pytest.approx(0.0)

    def test_inventory_has_all_scopes(self, fab):
        inventory = fab.inventory(2025)
        assert inventory.scope_total(Scope.SCOPE1).grams > 0.0
        assert inventory.scope_total(Scope.SCOPE2_LOCATION).grams > 0.0
        assert inventory.scope3_total().grams > 0.0

    def test_chip_maker_scope1_is_material(self, fab):
        """Table I: for chip makers Scope 1 (process gases) is a large
        share of operational emissions — here >25% of scope1+scope2."""
        scope1 = fab.scope1().grams
        scope2 = fab.scope2(market_based=False).grams
        assert scope1 / (scope1 + scope2) > 0.25

    def test_total_consistent_with_parts(self, fab):
        total = fab.total_emissions(market_based=False)
        parts = (
            fab.scope1()
            + fab.scope2(market_based=False)
            + fab.scope3_materials()
        )
        assert total.grams == pytest.approx(parts.grams)

    def test_validation(self, fab):
        with pytest.raises(SimulationError):
            FabModel("x", fab.node, 0.0, fab.grid)
        with pytest.raises(SimulationError):
            fab.with_renewable_share(1.5)


class TestVendorModel:
    def _vendor(self) -> VendorModel:
        return VendorModel(
            name="mini_vendor",
            lines=[
                ProductLine(device_by_name("iphone_11"), 10e6),
                ProductLine(device_by_name("ipad_gen7"), 3e6),
            ],
            corporate_facilities=Carbon.kilotonnes(50.0),
            business_travel=Carbon.kilotonnes(20.0),
        )

    def test_stage_totals_scale_with_volume(self):
        line = ProductLine(device_by_name("iphone_11"), 10e6)
        per_unit = device_by_name("iphone_11").production_carbon.grams
        assert line.stage_total(LifeCycleStage.PRODUCTION).grams == (
            pytest.approx(per_unit * 10e6)
        )

    def test_total_includes_overheads(self):
        vendor = self._vendor()
        lifecycle = Carbon.zero()
        for stage in LifeCycleStage:
            lifecycle = lifecycle + vendor.stage_total(stage)
        assert vendor.total().grams == pytest.approx(
            lifecycle.grams + 70.0e9  # 50 + 20 kt in grams
        )

    def test_breakdown_fractions_sum_to_one(self):
        table = self._vendor().breakdown_table()
        assert sum(table.column("fraction")) == pytest.approx(1.0)

    def test_manufacturing_dominates(self):
        table = self._vendor().breakdown_table()
        assert table.row(0)["group"] == "manufacturing"

    def test_inventory_books_use_as_downstream_opex(self):
        vendor = self._vendor()
        inventory = vendor.inventory(2019)
        downstream = inventory.scope_total(Scope.SCOPE3_DOWNSTREAM)
        use = vendor.stage_total(LifeCycleStage.USE)
        eol = vendor.stage_total(LifeCycleStage.END_OF_LIFE)
        assert downstream.grams == pytest.approx(use.grams + eol.grams)

    def test_inventory_total_matches_vendor_total(self):
        vendor = self._vendor()
        inventory = vendor.inventory(2019)
        assert inventory.total(market_based=True).grams == pytest.approx(
            vendor.total().grams
        )

    def test_validation(self):
        with pytest.raises(AccountingError):
            VendorModel(name="empty", lines=[])
        with pytest.raises(AccountingError):
            ProductLine(device_by_name("iphone_11"), 0.0)


class TestSoCCatalog:
    def test_catalog_lookup(self):
        from repro.data.socs import soc_by_product

        record = soc_by_product("iphone_11")
        assert record.node_name == "7nm"
        assert record.die_area_mm2 == pytest.approx(98.5)

    def test_unknown_product_raises(self):
        from repro.data.socs import soc_by_product

        with pytest.raises(KeyError):
            soc_by_product("galaxy_s10")

    def test_catalog_products_exist_in_device_corpus(self):
        from repro.data.socs import SOC_CATALOG

        for record in SOC_CATALOG:
            assert device_by_name(record.product) is not None
