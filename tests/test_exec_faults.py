"""The fault-tolerance layer: retries, timeouts, checkpoints, injection.

Every recovery path of :func:`repro.exec.run_sharded` is driven here
by the deterministic fault harness — no killing processes on timers,
no sleeping and hoping. Faults are declared per (chunk, attempt), so
each test replays the exact same failure schedule every run.
"""

from __future__ import annotations

import concurrent.futures
import json

import numpy as np
import pytest

from repro.errors import ChunkFailedError, CorruptChunkError, ExecutionError
from repro.exec import (
    CheckpointStore,
    ChunkFailure,
    FailureReport,
    FaultRule,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    ShardPlan,
    active_fault_spec,
    cache_key,
    install_faults,
    run_sharded,
)
from repro.exec.faults import corrupt_bytes, perform_fault
from repro.exec.runner import _open_envelope


def _square_chunk(payload, start, stop):
    """Module-level chunk kernel: squares of ``payload[start:stop]``."""
    return [value * value for value in payload[start:stop]]


_PAYLOAD = list(range(20))
_PLAN = ShardPlan(num_scenarios=20, chunk_size=5)
_EXPECTED = [value * value for value in _PAYLOAD]


def _flat(chunks):
    """Concatenate list chunks."""
    return [value for chunk in chunks for value in chunk]


class TestRetryPolicy:
    def test_coerce(self):
        assert RetryPolicy.coerce(None).max_attempts == 1
        assert RetryPolicy.coerce(0).max_attempts == 1
        assert RetryPolicy.coerce(3).max_attempts == 4
        policy = RetryPolicy(max_attempts=7)
        assert RetryPolicy.coerce(policy) is policy

    def test_coerce_rejects_junk(self):
        for value in (-1, 2.5, "3", True):
            with pytest.raises(ExecutionError):
                RetryPolicy.coerce(value)

    def test_validation(self):
        with pytest.raises(ExecutionError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExecutionError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ExecutionError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ExecutionError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ExecutionError):
            RetryPolicy(max_delay=-1.0)

    def test_delays_are_deterministic(self):
        policy = RetryPolicy(seed=11)
        for stream in (0, 5, 10):
            for attempt in (1, 2, 3):
                assert policy.delay(stream, attempt) == policy.delay(
                    stream, attempt
                )
        # Different streams and attempts jitter independently.
        assert policy.delay(0, 1) != policy.delay(5, 1)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, jitter=0.0, max_delay=0.3
        )
        assert policy.delay(0, 1) == pytest.approx(0.1)
        assert policy.delay(0, 2) == pytest.approx(0.2)
        assert policy.delay(0, 3) == pytest.approx(0.3)  # capped
        assert policy.delay(0, 6) == pytest.approx(0.3)

    def test_none_policy_never_sleeps(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert policy.delay(3, 1) == 0.0

    def test_delay_rejects_bad_attempt(self):
        with pytest.raises(ExecutionError):
            RetryPolicy().delay(0, 0)


class TestFaultSpec:
    def test_rule_matching(self):
        rule = FaultRule(kind="raise", starts=(0, 10), attempts=(1, 2))
        assert rule.matches(0, 1) and rule.matches(10, 2)
        assert not rule.matches(5, 1) and not rule.matches(0, 3)
        everywhere = FaultRule(kind="raise", starts=None, attempts=None)
        assert everywhere.matches(123, 9)

    def test_first_matching_rule_wins(self):
        spec = FaultSpec(
            rules=(
                FaultRule(kind="hang", starts=(0,), attempts=(1,)),
                FaultRule(kind="raise", starts=None, attempts=(1,)),
            )
        )
        assert spec.match(0, 1).kind == "hang"
        assert spec.match(5, 1).kind == "raise"
        assert spec.match(5, 2) is None

    def test_json_round_trip(self):
        spec = FaultSpec(
            rules=(
                FaultRule(kind="crash", starts=(4,), attempts=(1, 2)),
                FaultRule(kind="hang", starts=None, attempts=(1,), seconds=0.25),
            )
        )
        assert FaultSpec.from_json(spec.to_json()) == spec

    def test_from_json_rejects_junk(self):
        for text in ("not json", "[]", '{"rules": [{"starts": [1]}]}'):
            with pytest.raises(ExecutionError):
                FaultSpec.from_json(text)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecutionError):
            FaultRule(kind="meltdown")

    def test_env_resolution_order(self, monkeypatch):
        env_spec = FaultSpec(rules=(FaultRule(kind="raise"),))
        monkeypatch.setenv("REPRO_FAULTS", env_spec.to_json())
        assert active_fault_spec() == env_spec
        installed = FaultSpec(rules=(FaultRule(kind="hang"),))
        with install_faults(installed):
            assert active_fault_spec() is installed
            explicit = FaultSpec(rules=(FaultRule(kind="crash"),))
            assert active_fault_spec(explicit) is explicit
        assert active_fault_spec() == env_spec
        monkeypatch.delenv("REPRO_FAULTS")
        assert active_fault_spec() is None

    def test_chaos_is_seeded(self):
        starts = list(range(0, 100, 5))
        first = FaultSpec.chaos(starts, seed=42, rate=0.5)
        second = FaultSpec.chaos(starts, seed=42, rate=0.5)
        assert first == second
        assert first != FaultSpec.chaos(starts, seed=43, rate=0.5)
        # Chaos faults fire on attempt 1 only, so one retry recovers.
        assert all(rule.attempts == (1,) for rule in first.rules)

    def test_corrupt_bytes_always_differs(self):
        for payload in (b"", b"x", b"hello world"):
            assert corrupt_bytes(payload) != payload

    def test_inline_crash_degrades_to_raise(self):
        rule = FaultRule(kind="crash", starts=(0,))
        with pytest.raises(InjectedFault):
            perform_fault(rule, start=0, in_worker=False)


class TestInlineRecovery:
    def test_raise_fault_retried(self):
        spec = FaultSpec(rules=(FaultRule(kind="raise", starts=(5,), attempts=(1,)),))
        result = run_sharded(
            _square_chunk, _PAYLOAD, _PLAN, combine=_flat, retries=1, faults=spec
        )
        assert result == _EXPECTED

    def test_corrupt_fault_retried(self):
        spec = FaultSpec(
            rules=(FaultRule(kind="corrupt", starts=(0,), attempts=(1,)),)
        )
        result = run_sharded(
            _square_chunk, _PAYLOAD, _PLAN, combine=_flat, retries=1, faults=spec
        )
        assert result == _EXPECTED

    def test_no_retry_budget_propagates_kernel_exception(self):
        # The pre-fault-tolerance contract: at default settings the
        # chunk's own exception surfaces unchanged.
        spec = FaultSpec(rules=(FaultRule(kind="raise", starts=(5,), attempts=None),))
        with pytest.raises(InjectedFault):
            run_sharded(
                _square_chunk, _PAYLOAD, _PLAN, combine=_flat, faults=spec
            )

    def test_no_retry_budget_propagates_from_pool(self):
        spec = FaultSpec(rules=(FaultRule(kind="raise", starts=(5,), attempts=None),))
        with pytest.raises(InjectedFault):
            run_sharded(
                _square_chunk,
                _PAYLOAD,
                _PLAN,
                jobs=2,
                combine=_flat,
                faults=spec,
            )

    def test_exhaustion_raises_structured_error(self):
        spec = FaultSpec(rules=(FaultRule(kind="raise", starts=(5,), attempts=None),))
        with pytest.raises(ChunkFailedError) as excinfo:
            run_sharded(
                _square_chunk,
                _PAYLOAD,
                _PLAN,
                combine=_flat,
                retries=2,
                faults=spec,
            )
        error = excinfo.value
        assert (error.index, error.start, error.stop) == (1, 5, 10)
        assert error.attempts == 3
        assert error.kind == "error"
        assert isinstance(error.__cause__, InjectedFault)

    def test_skip_mode_returns_partial_and_report(self):
        spec = FaultSpec(rules=(FaultRule(kind="raise", starts=(5,), attempts=None),))
        result, report = run_sharded(
            _square_chunk,
            _PAYLOAD,
            _PLAN,
            combine=_flat,
            on_error="skip",
            faults=spec,
        )
        assert result == [v * v for v in _PAYLOAD[:5] + _PAYLOAD[10:]]
        assert report and report.num_failed == 1
        assert report.shard_ranges() == [(5, 10)]
        assert report.skipped_scenarios() == 5
        assert report.failures[0].kind == "error"
        # The report serializes for machine consumption.
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["failures"][0]["start"] == 5

    def test_skip_mode_with_no_failures_reports_clean(self):
        result, report = run_sharded(
            _square_chunk, _PAYLOAD, _PLAN, combine=_flat, on_error="skip"
        )
        assert result == _EXPECTED
        assert not report and report.num_completed == 4
        assert "all 4 chunks completed" in report.summary()

    def test_all_chunks_failed_raises_even_in_skip_mode(self):
        spec = FaultSpec(rules=(FaultRule(kind="raise", starts=None, attempts=None),))
        with pytest.raises(ChunkFailedError):
            run_sharded(
                _square_chunk,
                _PAYLOAD,
                _PLAN,
                combine=_flat,
                on_error="skip",
                faults=spec,
            )

    def test_invalid_options_rejected(self):
        with pytest.raises(ExecutionError):
            run_sharded(_square_chunk, _PAYLOAD, _PLAN, on_error="ignore")
        with pytest.raises(ExecutionError):
            run_sharded(_square_chunk, _PAYLOAD, _PLAN, timeout=-1.0, jobs=2)
        with pytest.raises(ExecutionError):
            # Inline chunks cannot be cancelled, so a timeout needs jobs > 1.
            run_sharded(_square_chunk, _PAYLOAD, _PLAN, timeout=5.0)


class TestPoolRecovery:
    def test_worker_crash_recovered(self):
        spec = FaultSpec(rules=(FaultRule(kind="crash", starts=(10,), attempts=(1,)),))
        result = run_sharded(
            _square_chunk,
            _PAYLOAD,
            _PLAN,
            jobs=2,
            combine=_flat,
            retries=2,
            faults=spec,
        )
        assert result == _EXPECTED

    def test_hang_recovered_via_timeout(self):
        spec = FaultSpec(
            rules=(
                FaultRule(kind="hang", starts=(0,), attempts=(1,), seconds=30.0),
            )
        )
        result = run_sharded(
            _square_chunk,
            _PAYLOAD,
            _PLAN,
            jobs=2,
            combine=_flat,
            retries=1,
            timeout=0.3,
            faults=spec,
        )
        assert result == _EXPECTED

    def test_corrupt_result_detected_and_retried(self):
        spec = FaultSpec(
            rules=(FaultRule(kind="corrupt", starts=(15,), attempts=(1,)),)
        )
        result = run_sharded(
            _square_chunk,
            _PAYLOAD,
            _PLAN,
            jobs=2,
            combine=_flat,
            retries=1,
            faults=spec,
        )
        assert result == _EXPECTED

    def test_crash_exhaustion_names_the_shard(self):
        spec = FaultSpec(rules=(FaultRule(kind="crash", starts=(0,), attempts=None),))
        with pytest.raises(ChunkFailedError) as excinfo:
            run_sharded(
                _square_chunk,
                _PAYLOAD,
                _PLAN,
                jobs=2,
                combine=_flat,
                retries=1,
                faults=spec,
            )
        assert excinfo.value.kind == "crash"
        assert (excinfo.value.start, excinfo.value.stop) == (0, 5)

    def test_timeout_exhaustion_skip_mode(self):
        spec = FaultSpec(
            rules=(FaultRule(kind="hang", starts=(5,), attempts=None, seconds=30.0),)
        )
        result, report = run_sharded(
            _square_chunk,
            _PAYLOAD,
            _PLAN,
            jobs=2,
            combine=_flat,
            timeout=0.3,
            on_error="skip",
            faults=spec,
        )
        assert result == [v * v for v in _PAYLOAD[:5] + _PAYLOAD[10:]]
        assert report.failures[0].kind == "timeout"
        assert report.shard_ranges() == [(5, 10)]


class TestEnvelope:
    def test_round_trip(self):
        import hashlib
        import pickle

        value = {"rows": list(range(10))}
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        assert _open_envelope((digest, blob), start=0, stop=5) == value

    def test_corruption_detected(self):
        import hashlib
        import pickle

        blob = pickle.dumps([1, 2, 3], protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        with pytest.raises(CorruptChunkError):
            _open_envelope((digest, corrupt_bytes(blob)), start=0, stop=5)

    def test_malformed_envelope_detected(self):
        with pytest.raises(CorruptChunkError):
            _open_envelope("not an envelope", start=0, stop=5)


class TestPoolShutdown:
    def test_keyboard_interrupt_cancels_queued_chunks(self, monkeypatch):
        """Ctrl-C must shut the pool down with cancel_futures=True."""
        from repro.exec import runner

        pools = []

        class RecordingPool:
            def __init__(self, max_workers=None, initializer=None, initargs=()):
                self.shutdown_calls = []
                self._processes = {}
                pools.append(self)

            def submit(self, fn, *args):
                return concurrent.futures.Future()

            def shutdown(self, wait=True, cancel_futures=False):
                self.shutdown_calls.append(
                    {"wait": wait, "cancel_futures": cancel_futures}
                )

        def interrupted_wait(futures, timeout=None, return_when=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner, "_pool_executor", RecordingPool)
        monkeypatch.setattr(runner, "_wait", interrupted_wait)
        with pytest.raises(KeyboardInterrupt):
            run_sharded(_square_chunk, _PAYLOAD, _PLAN, jobs=2, combine=_flat)
        assert len(pools) == 1
        assert pools[0].shutdown_calls == [
            {"wait": False, "cancel_futures": True}
        ]

    def test_driver_error_cancels_queued_chunks(self, monkeypatch):
        """Any driver-side crash tears the pool down the same way."""
        from repro.exec import runner

        pools = []

        class RecordingPool:
            def __init__(self, max_workers=None, initializer=None, initargs=()):
                self.shutdown_calls = []
                self._processes = {}
                pools.append(self)

            def submit(self, fn, *args):
                return concurrent.futures.Future()

            def shutdown(self, wait=True, cancel_futures=False):
                self.shutdown_calls.append(
                    {"wait": wait, "cancel_futures": cancel_futures}
                )

        def broken_wait(futures, timeout=None, return_when=None):
            raise RuntimeError("driver bug")

        monkeypatch.setattr(runner, "_pool_executor", RecordingPool)
        monkeypatch.setattr(runner, "_wait", broken_wait)
        with pytest.raises(RuntimeError):
            run_sharded(_square_chunk, _PAYLOAD, _PLAN, jobs=2, combine=_flat)
        assert pools[0].shutdown_calls == [
            {"wait": False, "cancel_futures": True}
        ]


class TestCheckpointStore:
    def test_put_get_round_trip(self, tmp_path):
        store = CheckpointStore(
            tmp_path, spec_parts=("sweep", "demo"), consume=True
        )
        assert store.get(0, 5) == (False, None)
        assert store.put(0, 5, [1, 2, 3])
        assert store.get(0, 5) == (True, [1, 2, 3])

    def test_consume_flag_gates_reads(self, tmp_path):
        writer = CheckpointStore(
            tmp_path, spec_parts=("sweep", "demo"), consume=False
        )
        writer.put(0, 5, "chunk")
        # A fresh (non-resume) run must not read leftovers...
        assert writer.get(0, 5) == (False, None)
        # ...but a resume run sees them.
        reader = CheckpointStore(
            tmp_path, spec_parts=("sweep", "demo"), consume=True
        )
        assert reader.get(0, 5) == (True, "chunk")

    def test_spec_parts_partition_the_store(self, tmp_path):
        first = CheckpointStore(tmp_path, spec_parts=("a",), consume=True)
        second = CheckpointStore(tmp_path, spec_parts=("b",), consume=True)
        first.put(0, 5, "first")
        assert second.get(0, 5) == (False, None)
        assert first.spec_key != second.spec_key

    def test_falsy_chunks_are_hits(self, tmp_path):
        store = CheckpointStore(tmp_path, spec_parts=("x",), consume=True)
        store.put(0, 1, [])
        hit, chunk = store.get(0, 1)
        assert hit and chunk == []

    def test_discard(self, tmp_path):
        store = CheckpointStore(tmp_path, spec_parts=("x",), consume=True)
        store.put(0, 5, "a")
        store.put(5, 10, "b")
        assert store.discard([(0, 5), (5, 10), (10, 15)]) == 2
        assert store.get(0, 5) == (False, None)


class TestCacheFormatVersion:
    def test_version_is_part_of_every_key(self, monkeypatch):
        from repro.exec import cache as cache_module

        before = cache_key("sweep", "demo")
        monkeypatch.setattr(
            cache_module,
            "CACHE_FORMAT_VERSION",
            cache_module.CACHE_FORMAT_VERSION + 1,
        )
        after = cache_key("sweep", "demo")
        assert before != after

    def test_keys_remain_stable_within_a_version(self):
        assert cache_key("a", "b") == cache_key("a", "b")
        assert cache_key("a", "bc") != cache_key("ab", "c")


class TestReportShapes:
    def test_chunk_failure_fields(self):
        failure = ChunkFailure(
            index=2, start=10, stop=15, attempts=3, kind="crash", error="boom"
        )
        assert failure.size == 5
        assert failure.to_dict()["kind"] == "crash"

    def test_report_accounting(self):
        failures = (
            ChunkFailure(
                index=0, start=0, stop=5, attempts=2, kind="error", error="x"
            ),
            ChunkFailure(
                index=3, start=15, stop=20, attempts=2, kind="timeout", error="y"
            ),
        )
        report = FailureReport(failures=failures, num_chunks=4)
        assert report.num_failed == 2 and report.num_completed == 2
        assert report.skipped_scenarios() == 10
        assert "2 of 4 chunks failed" in report.summary()
        assert report.to_dict()["num_chunks"] == 4
