"""Invariant tests over the curated datasets."""

from __future__ import annotations

import pytest

from repro.data import (
    AI_BENCHMARK_POINTS,
    CNN_MODELS,
    DEVICE_LCAS,
    ENERGY_SOURCES,
    GRID_REGIONS,
    MAC_PRO_CONFIGS,
    PIXEL3_IC_CAPEX,
    PIXEL3_MEASUREMENTS,
    PRINEVILLE_SERIES,
    TSMC_WAFER_SHARES,
    cnn_by_name,
    device_by_name,
    devices_by_vendor,
    family,
    grid_by_name,
    measurement,
    source_by_name,
)
from repro.data.corporate import (
    AMD_BREAKDOWN,
    APPLE_2019_BREAKDOWN,
    FACEBOOK_SCOPE3_2019,
    INTEL_BREAKDOWN,
)
from repro.data.devices import FAMILIES


class TestDeviceCorpus:
    def test_corpus_size_matches_paper_scale(self):
        # The paper's corpus is "more than 30 products".
        assert len(DEVICE_LCAS) >= 40

    def test_product_names_unique(self):
        names = [lca.product for lca in DEVICE_LCAS]
        assert len(names) == len(set(names))

    def test_all_four_vendors_present(self):
        vendors = {lca.vendor for lca in DEVICE_LCAS}
        assert vendors == {"apple", "google", "microsoft", "huawei"}

    def test_lookup_unknown_device_raises(self):
        with pytest.raises(KeyError):
            device_by_name("nokia_3310")

    def test_devices_by_vendor_filters(self):
        for lca in devices_by_vendor("google"):
            assert lca.vendor == "google"

    def test_families_ordered_by_year(self):
        for name in FAMILIES:
            years = [lca.year for lca in family(name)]
            assert years == sorted(years)

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            family("galaxy")

    def test_paper_anchor_fractions(self):
        assert device_by_name("iphone_3gs").manufacturing_fraction == 0.40
        assert device_by_name("iphone_xr").manufacturing_fraction == 0.75
        assert device_by_name("watch_series_1").manufacturing_fraction == 0.60
        assert device_by_name("watch_series_5").manufacturing_fraction == 0.75
        assert device_by_name("ipad_gen7").manufacturing_fraction == 0.75

    def test_iphone_11_capex_anchor(self):
        assert device_by_name("iphone_11").capex_fraction == pytest.approx(0.86)

    def test_mac_pro_production_anchor(self):
        assert device_by_name("mac_pro").production_carbon.kilograms == pytest.approx(
            700.0
        )

    def test_pixel3_ic_anchor(self):
        lca = device_by_name("pixel_3")
        assert lca.component_carbon("integrated_circuits").kilograms == (
            pytest.approx(PIXEL3_IC_CAPEX.kilograms)
        )


class TestEnergyAndGrids:
    def test_table2_complete(self):
        assert len(ENERGY_SOURCES) == 8

    def test_sources_sorted_dirtiest_first(self):
        values = [s.intensity.grams_per_kwh for s in ENERGY_SOURCES]
        assert values == sorted(values, reverse=True)

    def test_renewables_flagged(self):
        assert source_by_name("wind").renewable
        assert not source_by_name("coal").renewable
        assert not source_by_name("nuclear").renewable

    def test_table3_complete(self):
        assert len(GRID_REGIONS) == 9

    def test_lookup_errors(self):
        with pytest.raises(KeyError):
            source_by_name("fusion")
        with pytest.raises(KeyError):
            grid_by_name("atlantis")


class TestCorporateData:
    def test_apple_breakdown_sums_to_one(self):
        assert sum(s.fraction for s in APPLE_2019_BREAKDOWN) == pytest.approx(1.0)

    def test_facebook_scope3_split_sums_to_one(self):
        assert sum(FACEBOOK_SCOPE3_2019.values()) == pytest.approx(1.0)

    def test_vendor_breakdowns_sum_to_one(self):
        assert sum(INTEL_BREAKDOWN.categories.values()) == pytest.approx(1.0)
        assert sum(AMD_BREAKDOWN.categories.values()) == pytest.approx(1.0)

    def test_use_fractions_match_paper(self):
        assert INTEL_BREAKDOWN.use_fraction == pytest.approx(0.60)
        assert AMD_BREAKDOWN.use_fraction == pytest.approx(0.45)


class TestMeasurements:
    def test_twelve_cells(self):
        assert len(PIXEL3_MEASUREMENTS) == 12

    def test_all_models_on_all_processors(self):
        models = {record.model for record in PIXEL3_MEASUREMENTS}
        processors = {record.processor for record in PIXEL3_MEASUREMENTS}
        assert len(models) * len(processors) == len(PIXEL3_MEASUREMENTS)

    def test_lookup_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            measurement("vgg16", "cpu")

    def test_energy_per_inference_positive(self):
        for record in PIXEL3_MEASUREMENTS:
            assert record.energy_per_inference.joules > 0.0

    def test_mobilenets_use_less_energy_than_heavyweights(self):
        for processor in ("cpu", "gpu", "dsp"):
            light = measurement("mobilenet_v3", processor)
            heavy = measurement("resnet50", processor)
            assert (
                light.energy_per_inference.joules
                < heavy.energy_per_inference.joules
            )


class TestWorkloadsAndBenchmarks:
    def test_cnn_models_present(self):
        assert {m.name for m in CNN_MODELS} >= {
            "resnet50", "inception_v3", "mobilenet_v2", "mobilenet_v3",
        }

    def test_mobilenets_lighter_than_heavyweights(self):
        assert cnn_by_name("mobilenet_v3").gflops < cnn_by_name("resnet50").gflops

    def test_ai_points_reference_known_devices(self):
        for point in AI_BENCHMARK_POINTS:
            assert device_by_name(point.product) is not None

    def test_ai_point_manufacturing_consistent_with_lca(self):
        for point in AI_BENCHMARK_POINTS:
            lca = device_by_name(point.product)
            assert point.manufacturing_kg == pytest.approx(
                lca.production_carbon.kilograms, rel=0.12
            )


class TestMiscSeries:
    def test_tsmc_shares_sum_to_one(self):
        assert sum(TSMC_WAFER_SHARES.values()) == pytest.approx(1.0)

    def test_prineville_years_consecutive(self):
        years = [record.year for record in PRINEVILLE_SERIES]
        assert years == list(range(2013, 2020))

    def test_prineville_coverage_rises(self):
        coverage = [record.renewable_coverage for record in PRINEVILLE_SERIES]
        assert all(a <= b for a, b in zip(coverage, coverage[1:]))

    def test_mac_pro_table(self):
        base, maxed = MAC_PRO_CONFIGS
        assert maxed.manufacturing.kilograms / base.manufacturing.kilograms == (
            pytest.approx(1900 / 700)
        )
        assert maxed.dram_gb / base.dram_gb == pytest.approx(48.0)
