"""Unit tests for repro.units quantities."""

from __future__ import annotations

import pytest

from repro.errors import UnitError
from repro.units import (
    Carbon,
    CarbonIntensity,
    Energy,
    Power,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_YEAR,
    days,
    hours,
    years,
)


class TestDurations:
    def test_hours_converts_to_seconds(self):
        assert hours(2) == 2 * SECONDS_PER_HOUR

    def test_days_converts_to_seconds(self):
        assert days(1.5) == 1.5 * SECONDS_PER_DAY

    def test_years_converts_to_seconds(self):
        assert years(1) == SECONDS_PER_YEAR

    def test_year_is_365_days(self):
        assert years(1) == days(365)

    def test_nan_rejected(self):
        with pytest.raises(UnitError):
            hours(float("nan"))

    def test_infinity_rejected(self):
        with pytest.raises(UnitError):
            days(float("inf"))


class TestEnergy:
    def test_kwh_roundtrip(self):
        assert Energy.kwh(1.0).kilowatt_hours == pytest.approx(1.0)

    def test_kwh_is_3_6_megajoules(self):
        assert Energy.kwh(1.0).joules == pytest.approx(3.6e6)

    def test_watt_hours(self):
        assert Energy.watt_hours(1000.0).kilowatt_hours == pytest.approx(1.0)

    def test_gwh_and_twh(self):
        assert Energy.gwh(1.0).kilowatt_hours == pytest.approx(1e6)
        assert Energy.twh(1.0).gigawatt_hours == pytest.approx(1e3)

    def test_addition(self):
        assert (Energy.kwh(1.0) + Energy.kwh(2.0)).kilowatt_hours == pytest.approx(3.0)

    def test_subtraction(self):
        assert (Energy.kwh(3.0) - Energy.kwh(1.0)).kilowatt_hours == pytest.approx(2.0)

    def test_scalar_multiplication_both_sides(self):
        assert (Energy.kwh(2.0) * 3).kilowatt_hours == pytest.approx(6.0)
        assert (3 * Energy.kwh(2.0)).kilowatt_hours == pytest.approx(6.0)

    def test_division_by_energy_gives_ratio(self):
        assert Energy.kwh(6.0) / Energy.kwh(2.0) == pytest.approx(3.0)

    def test_division_by_scalar(self):
        assert (Energy.kwh(6.0) / 2.0).kilowatt_hours == pytest.approx(3.0)

    def test_division_by_zero_energy_raises(self):
        with pytest.raises(UnitError):
            Energy.kwh(1.0) / Energy.zero()

    def test_division_by_zero_scalar_raises(self):
        with pytest.raises(UnitError):
            Energy.kwh(1.0) / 0.0

    def test_ordering(self):
        assert Energy.kwh(1.0) < Energy.kwh(2.0)
        assert Energy.kwh(2.0) <= Energy.kwh(2.0)

    def test_negation(self):
        assert (-Energy.kwh(1.0)).kilowatt_hours == pytest.approx(-1.0)

    def test_nan_rejected(self):
        with pytest.raises(UnitError):
            Energy(float("nan"))

    def test_repr_mentions_kwh(self):
        assert "kWh" in repr(Energy.kwh(1.0))


class TestPower:
    def test_constructors(self):
        assert Power.kilowatts(1.0).watts_value == pytest.approx(1000.0)
        assert Power.megawatts(1.0).kilowatts_value == pytest.approx(1000.0)
        assert Power.milliwatts(500.0).watts_value == pytest.approx(0.5)

    def test_energy_over_one_hour(self):
        energy = Power.watts(1000.0).energy_over(hours(1))
        assert energy.kilowatt_hours == pytest.approx(1.0)

    def test_energy_over_zero_time_is_zero(self):
        assert Power.watts(50.0).energy_over(0.0).joules == 0.0

    def test_addition_and_subtraction(self):
        assert (Power.watts(3.0) + Power.watts(4.0)).watts_value == pytest.approx(7.0)
        assert (Power.watts(4.0) - Power.watts(3.0)).watts_value == pytest.approx(1.0)

    def test_scalar_multiplication(self):
        assert (Power.watts(2.0) * 4).watts_value == pytest.approx(8.0)

    def test_ratio(self):
        assert Power.watts(8.0) / Power.watts(2.0) == pytest.approx(4.0)

    def test_zero_division_raises(self):
        with pytest.raises(UnitError):
            Power.watts(1.0) / Power.watts(0.0)

    def test_ordering(self):
        assert Power.watts(1.0) < Power.watts(2.0)


class TestCarbon:
    def test_unit_ladder(self):
        assert Carbon.kg(1.0).grams == pytest.approx(1000.0)
        assert Carbon.tonnes(1.0).kilograms == pytest.approx(1000.0)
        assert Carbon.kilotonnes(1.0).tonnes_value == pytest.approx(1000.0)
        assert Carbon.megatonnes(1.0).kilotonnes_value == pytest.approx(1000.0)

    def test_addition(self):
        assert (Carbon.kg(1.0) + Carbon.kg(2.0)).kilograms == pytest.approx(3.0)

    def test_subtraction_can_go_negative(self):
        assert (Carbon.kg(1.0) - Carbon.kg(2.0)).kilograms == pytest.approx(-1.0)

    def test_scalar_multiplication(self):
        assert (Carbon.kg(2.0) * 0.5).kilograms == pytest.approx(1.0)

    def test_ratio(self):
        assert Carbon.kg(10.0) / Carbon.kg(4.0) == pytest.approx(2.5)

    def test_zero_division_raises(self):
        with pytest.raises(UnitError):
            Carbon.kg(1.0) / Carbon.zero()

    def test_repr_scales_with_magnitude(self):
        assert "g CO2e" in repr(Carbon.from_grams(5.0))
        assert "kg CO2e" in repr(Carbon.kg(5.0))
        assert "t CO2e" in repr(Carbon.tonnes(5.0))


class TestCarbonIntensity:
    def test_carbon_for_energy(self):
        grid = CarbonIntensity.g_per_kwh(380.0)
        assert grid.carbon_for(Energy.kwh(2.0)).grams == pytest.approx(760.0)

    def test_multiplication_with_energy_both_orders(self):
        grid = CarbonIntensity.g_per_kwh(100.0)
        energy = Energy.kwh(3.0)
        assert (grid * energy).grams == pytest.approx(300.0)
        assert (energy * grid).grams == pytest.approx(300.0)

    def test_kg_per_mwh_equals_g_per_kwh(self):
        assert CarbonIntensity.kg_per_mwh(380.0).grams_per_kwh == pytest.approx(380.0)

    def test_scaling(self):
        assert (CarbonIntensity.g_per_kwh(100.0) * 0.5).grams_per_kwh == 50.0
        assert (CarbonIntensity.g_per_kwh(100.0) / 4.0).grams_per_kwh == 25.0

    def test_ratio(self):
        ratio = CarbonIntensity.g_per_kwh(820.0) / CarbonIntensity.g_per_kwh(11.0)
        assert ratio == pytest.approx(820.0 / 11.0)

    def test_negative_rejected(self):
        with pytest.raises(UnitError):
            CarbonIntensity.g_per_kwh(-1.0)

    def test_ordering(self):
        assert CarbonIntensity.g_per_kwh(11.0) < CarbonIntensity.g_per_kwh(820.0)

    def test_full_chain_power_to_carbon(self):
        # 5 W for a day at 380 g/kWh: 0.12 kWh -> 45.6 g.
        energy = Power.watts(5.0).energy_over(days(1))
        carbon = CarbonIntensity.g_per_kwh(380.0).carbon_for(energy)
        assert carbon.grams == pytest.approx(45.6)

    def test_quantities_are_hashable_and_frozen(self):
        grid = CarbonIntensity.g_per_kwh(380.0)
        assert hash(grid) == hash(CarbonIntensity.g_per_kwh(380.0))
        with pytest.raises(Exception):
            grid.grams_per_kwh = 1.0  # type: ignore[misc]


class TestArrayValuedRepr:
    """Array-valued quantities (draw/scenario vectors) must repr cleanly."""

    def test_each_quantity_summarizes_arrays(self):
        import numpy as np

        samples = np.array([1.0, 2.0, 3.0])
        assert "3 x" in repr(Energy(samples * 3.6e6))
        assert "3 x" in repr(Power(samples))
        assert "3 x" in repr(Carbon(samples))
        assert "3 x" in repr(CarbonIntensity(samples))
        # Scalar reprs are unchanged.
        assert repr(Carbon.tonnes(2.0)) == "Carbon(2 t CO2e)"
