"""Tests for the diurnal grid and carbon-aware scheduler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datacenter.grid_sim import DiurnalGridModel
from repro.datacenter.scheduler import (
    BatchJob,
    schedule_carbon_agnostic,
    schedule_carbon_aware,
)
from repro.errors import SimulationError


class TestDiurnalGrid:
    def test_midday_cleaner_than_evening(self):
        grid = DiurnalGridModel()
        assert (
            grid.intensity_at(13.0).grams_per_kwh
            < grid.intensity_at(20.0).grams_per_kwh
        )

    def test_cleanest_hour_is_around_solar_noon(self):
        assert 11 <= DiurnalGridModel().cleanest_hour() <= 15

    def test_profile_is_24h_periodic(self):
        grid = DiurnalGridModel()
        assert grid.intensity_at(5.0).grams_per_kwh == pytest.approx(
            grid.intensity_at(29.0).grams_per_kwh
        )

    def test_series_positive_and_long_enough(self):
        series = DiurnalGridModel().hourly_series(72)
        assert series.shape == (72,)
        assert np.all(series >= 1.0)

    def test_noise_is_seeded(self):
        a = DiurnalGridModel(noise_g_per_kwh=20.0, seed=5).hourly_series(24)
        b = DiurnalGridModel(noise_g_per_kwh=20.0, seed=5).hourly_series(24)
        assert np.array_equal(a, b)

    def test_solar_depth_cannot_exceed_base(self):
        with pytest.raises(SimulationError):
            DiurnalGridModel(base_g_per_kwh=100.0, solar_depth_g_per_kwh=150.0)

    def test_series_needs_positive_length(self):
        with pytest.raises(SimulationError):
            DiurnalGridModel().hourly_series(0)


class TestBatchJobValidation:
    def test_infeasible_deadline_rejected(self):
        with pytest.raises(SimulationError):
            BatchJob("x", duration_hours=5, power_kw=10.0, arrival_hour=0,
                     deadline_hour=4)

    def test_energy(self):
        job = BatchJob("x", duration_hours=4, power_kw=100.0)
        assert job.energy.kilowatt_hours == pytest.approx(400.0)

    def test_positive_duration_and_power(self):
        with pytest.raises(SimulationError):
            BatchJob("x", duration_hours=0, power_kw=10.0)
        with pytest.raises(SimulationError):
            BatchJob("x", duration_hours=1, power_kw=0.0)


def _flat_grid(hours: int, value: float = 100.0) -> np.ndarray:
    return np.full(hours, value)


def _valley_grid(hours: int = 24) -> np.ndarray:
    # Dirty everywhere except hours 10-14.
    grid = np.full(hours, 500.0)
    grid[10:15] = 50.0
    return grid


class TestAgnosticScheduler:
    def test_starts_at_arrival_when_capacity_allows(self):
        jobs = [BatchJob("a", 2, 100.0, arrival_hour=3)]
        result = schedule_carbon_agnostic(jobs, _flat_grid(24), capacity_kw=200.0)
        assert result.placement_for("a").start_hour == 3

    def test_queues_when_capacity_exhausted(self):
        jobs = [
            BatchJob("a", 4, 150.0, arrival_hour=0),
            BatchJob("b", 4, 150.0, arrival_hour=0),
        ]
        result = schedule_carbon_agnostic(jobs, _flat_grid(24), capacity_kw=200.0)
        starts = sorted(p.start_hour for p in result.placements)
        assert starts == [0, 4]

    def test_carbon_matches_manual_integral(self):
        grid = _valley_grid()
        jobs = [BatchJob("a", 2, 100.0, arrival_hour=0)]
        result = schedule_carbon_agnostic(jobs, grid, capacity_kw=200.0)
        expected = (grid[0] + grid[1]) * 100.0
        assert result.total_carbon.grams == pytest.approx(expected)

    def test_over_capacity_job_rejected(self):
        jobs = [BatchJob("a", 1, 300.0)]
        with pytest.raises(SimulationError):
            schedule_carbon_agnostic(jobs, _flat_grid(24), capacity_kw=200.0)

    def test_job_beyond_horizon_rejected(self):
        jobs = [BatchJob("a", 30, 100.0)]
        with pytest.raises(SimulationError):
            schedule_carbon_agnostic(jobs, _flat_grid(24), capacity_kw=200.0)


class TestAwareScheduler:
    def test_moves_job_into_clean_valley(self):
        jobs = [BatchJob("a", 2, 100.0, arrival_hour=0)]
        result = schedule_carbon_aware(jobs, _valley_grid(), capacity_kw=200.0)
        assert 10 <= result.placement_for("a").start_hour <= 13

    def test_respects_deadline_even_if_dirty(self):
        jobs = [BatchJob("a", 2, 100.0, arrival_hour=0, deadline_hour=6)]
        result = schedule_carbon_aware(jobs, _valley_grid(), capacity_kw=200.0)
        placement = result.placement_for("a")
        assert placement.start_hour + 2 <= 6

    def test_respects_capacity_in_valley(self):
        jobs = [
            BatchJob("a", 5, 150.0, arrival_hour=0),
            BatchJob("b", 5, 150.0, arrival_hour=0),
        ]
        result = schedule_carbon_aware(jobs, _valley_grid(), capacity_kw=200.0)
        starts = {p.job.name: p.start_hour for p in result.placements}
        assert starts["a"] != starts["b"]

    def test_never_worse_than_agnostic_on_single_job(self):
        jobs = [BatchJob("a", 3, 120.0, arrival_hour=0)]
        grid = _valley_grid()
        aware = schedule_carbon_aware(jobs, grid, capacity_kw=200.0)
        agnostic = schedule_carbon_agnostic(jobs, grid, capacity_kw=200.0)
        assert aware.total_carbon.grams <= agnostic.total_carbon.grams

    def test_flat_grid_gives_no_advantage(self):
        jobs = [
            BatchJob("a", 3, 100.0, arrival_hour=0),
            BatchJob("b", 2, 80.0, arrival_hour=1),
        ]
        grid = _flat_grid(24)
        aware = schedule_carbon_aware(jobs, grid, capacity_kw=500.0)
        agnostic = schedule_carbon_agnostic(jobs, grid, capacity_kw=500.0)
        assert aware.total_carbon.grams == pytest.approx(
            agnostic.total_carbon.grams
        )

    def test_missing_placement_lookup_raises(self):
        jobs = [BatchJob("a", 1, 50.0)]
        result = schedule_carbon_aware(jobs, _flat_grid(24), capacity_kw=100.0)
        with pytest.raises(SimulationError):
            result.placement_for("zz")


class TestScheduleResult:
    def _result(self):
        jobs = [
            BatchJob("a", 3, 100.0, arrival_hour=0),
            BatchJob("b", 2, 150.0, arrival_hour=1),
        ]
        return schedule_carbon_agnostic(jobs, _flat_grid(24), capacity_kw=400.0)

    def test_total_carbon_matches_placement_sum(self):
        result = self._result()
        manual = sum(p.carbon.grams for p in result.placements)
        assert result.total_carbon.grams == pytest.approx(manual)

    def test_total_carbon_is_cached(self):
        result = self._result()
        assert result.total_carbon is result.total_carbon

    def test_load_profile_accumulates_overlaps(self):
        result = self._result()
        load = result.load_profile(24)
        assert load.shape == (24,)
        # a runs hours 0-2 at 100 kW; b runs hours 1-2 at 150 kW.
        assert load[0] == pytest.approx(100.0)
        assert load[1] == pytest.approx(250.0)
        assert load[2] == pytest.approx(250.0)
        assert load[3] == pytest.approx(0.0)
        # Energy conservation: the profile integrates to the jobs' energy.
        assert load.sum() == pytest.approx(
            sum(p.job.power_kw * p.job.duration_hours for p in result.placements)
        )

    def test_load_profile_rejects_short_horizon(self):
        result = self._result()
        with pytest.raises(SimulationError):
            result.load_profile(2)
        with pytest.raises(SimulationError):
            result.load_profile(0)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.builds(
            BatchJob,
            name=st.uuids().map(str),
            duration_hours=st.integers(min_value=1, max_value=6),
            power_kw=st.floats(min_value=10.0, max_value=150.0),
            arrival_hour=st.integers(min_value=0, max_value=12),
        ),
        min_size=1,
        max_size=6,
    ),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_aware_beats_or_ties_agnostic_under_loose_capacity(jobs, seed):
    grid = DiurnalGridModel(noise_g_per_kwh=30.0, seed=seed).hourly_series(48)
    capacity = sum(job.power_kw for job in jobs) + 1.0
    aware = schedule_carbon_aware(jobs, grid, capacity)
    agnostic = schedule_carbon_agnostic(jobs, grid, capacity)
    # With capacity no constraint, greedy per-job optimum can only win.
    assert aware.total_carbon.grams <= agnostic.total_carbon.grams + 1e-6
    # Both deliver every job exactly once.
    assert len(aware.placements) == len(jobs)
    # Deadlines and arrivals respected.
    for placement in aware.placements:
        assert placement.start_hour >= placement.job.arrival_hour
